//! Shared-stream batch evaluation: per-query cost vs batch size.
//!
//! The point of `gcx-multi` is that one scan (tokenize + merged-NFA match)
//! serves the whole batch, so the *per-query* wall-clock cost falls as the
//! batch grows — the scan amortizes while only the per-query fan-out and
//! evaluation remain. Two sweeps over a ~1MB XMark document:
//!
//! * `multi_scaling` — N copies of Q1 for N in 1..=64. Reported times are
//!   whole-batch; divide by N (printed as `per-query` lines) to see the
//!   amortization. Duplicates keep the workload per query constant, so
//!   the curve isolates the shared-scan effect.
//! * `multi_mixed` — the ten distinct XMark-adapted queries (paper's five
//!   + extension set) as one batch vs the sum of standalone runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_xmark::queries;
use std::time::Instant;

fn mixed_texts() -> Vec<&'static str> {
    queries::FIGURE5_QUERIES
        .iter()
        .filter(|(n, _)| *n != "Q8") // quadratic join would drown the sweep
        .map(|(_, t)| *t)
        .chain(queries::extra::ALL.iter().map(|(_, t)| *t))
        .collect()
}

fn bench_scaling(c: &mut Criterion) {
    let doc = gcx_bench::xmark_string(1);
    let q1 = CompiledQuery::compile(queries::Q1).unwrap();

    let mut g = c.benchmark_group("multi_scaling");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(doc.len() as u64));
    println!(
        "\nper-query cost, batch of N x Q1 over {} bytes:",
        doc.len()
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let batch: Vec<CompiledQuery> = (0..n).map(|_| q1.clone()).collect();
        // Headline per-query number (outside criterion's whole-batch time).
        let start = Instant::now();
        let report = gcx_multi::run_batch(&batch, doc.as_bytes()).unwrap();
        let per_query = start.elapsed() / n as u32;
        println!(
            "  N={n:>2}  per-query {:>8.2?}  share-factor {:>5.2}x",
            per_query,
            report.share_factor()
        );
        g.bench_function(BenchmarkId::new("batch", n), |b| {
            b.iter(|| gcx_multi::run_batch(&batch, doc.as_bytes()).unwrap().tokens)
        });
    }
    g.finish();
}

fn bench_mixed(c: &mut Criterion) {
    let doc = gcx_bench::xmark_string(1);
    let batch: Vec<CompiledQuery> = mixed_texts()
        .iter()
        .map(|t| CompiledQuery::compile(t).unwrap())
        .collect();

    let mut g = c.benchmark_group("multi_mixed");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function(BenchmarkId::new("shared", batch.len()), |b| {
        b.iter(|| gcx_multi::run_batch(&batch, doc.as_bytes()).unwrap().tokens)
    });
    g.bench_function(BenchmarkId::new("standalone", batch.len()), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for q in &batch {
                total += gcx_core::run(q, &EngineOptions::gcx(), doc.as_bytes(), std::io::sink())
                    .unwrap()
                    .tokens;
            }
            total
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling, bench_mixed
}
criterion_main!(benches);
