//! End-to-end query benchmarks: the five Figure 5 queries under the GCX
//! configuration on a ~1MB document (Q8, the quadratic join, on a smaller
//! one so `cargo bench` stays fast).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_xmark::queries;

fn bench_queries(c: &mut Criterion) {
    let doc = gcx_bench::xmark_string(1);
    let mut g = c.benchmark_group("queries_gcx");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    for (name, text) in [
        ("Q1", queries::Q1),
        ("Q6", queries::Q6),
        ("Q13", queries::Q13),
        ("Q20", queries::Q20),
    ] {
        let q = CompiledQuery::compile(text).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                gcx_core::run(&q, &EngineOptions::gcx(), doc.as_bytes(), std::io::sink())
                    .unwrap()
                    .tokens
            })
        });
    }
    g.finish();

    // Q8 is O(persons × auctions): bench on a quarter-size document.
    let small: String = {
        let cfg = gcx_xmark::XmarkConfig::sized(256 * 1024);
        gcx_xmark::generate_string(&cfg)
    };
    let mut g = c.benchmark_group("queries_join");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(small.len() as u64));
    let q8 = CompiledQuery::compile(queries::Q8).unwrap();
    g.bench_function("Q8_256KB", |b| {
        b.iter(|| {
            gcx_core::run(
                &q8,
                &EngineOptions::gcx(),
                small.as_bytes(),
                std::io::sink(),
            )
            .unwrap()
            .tokens
        })
    });
    g.finish();

    // Compilation cost (parse + normalize + static analysis).
    let mut g = c.benchmark_group("compile");
    g.bench_function("Q8", |b| {
        b.iter(|| CompiledQuery::compile(queries::Q8).unwrap())
    });
    g.bench_function("running_example", |b| {
        b.iter(|| CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queries
}
criterion_main!(benches);
