//! Microbenchmark: raw XML tokenizer throughput — the floor every engine
//! configuration pays (the paper's engines all "read the complete input
//! document for each query evaluation").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcx_xml::Tokenizer;

fn bench_tokenizer(c: &mut Criterion) {
    let doc = gcx_bench::xmark_string(1);
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function(BenchmarkId::new("xmark", "1MB"), |b| {
        b.iter(|| {
            let mut t = Tokenizer::from_str(&doc);
            let mut n = 0u64;
            while t.next_token().unwrap().is_some() {
                n += 1;
            }
            n
        })
    });

    // Attribute-heavy and text-heavy extremes.
    let attr_heavy: String = {
        let mut s = String::from("<r>");
        for i in 0..5000 {
            s.push_str(&format!("<e a=\"{i}\" b=\"x{i}\" c=\"yy\" d=\"zzz\"/>"));
        }
        s.push_str("</r>");
        s
    };
    g.throughput(Throughput::Bytes(attr_heavy.len() as u64));
    g.bench_function("attr_heavy", |b| {
        b.iter(|| {
            let mut t = Tokenizer::from_str(&attr_heavy);
            t.validate_to_end().unwrap()
        })
    });

    let text_heavy: String = {
        let mut s = String::from("<r>");
        for _ in 0..500 {
            s.push_str("<t>");
            s.push_str(&"lorem ipsum dolor sit amet ".repeat(40));
            s.push_str("</t>");
        }
        s.push_str("</r>");
        s
    };
    g.throughput(Throughput::Bytes(text_heavy.len() as u64));
    g.bench_function("text_heavy", |b| {
        b.iter(|| {
            let mut t = Tokenizer::from_str(&text_heavy);
            t.validate_to_end().unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tokenizer
}
criterion_main!(benches);
