//! Microbenchmark: the stream preprojector (projection NFA + buffering),
//! isolated from query evaluation — the per-token cost of static
//! projection, including subtree skipping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcx_core::buffer::BufferTree;
use gcx_core::stream::Preprojector;
use gcx_projection::{analyze, CompiledPaths, StreamMatcher};
use gcx_xmark::queries;
use gcx_xml::{SymbolTable, Tokenizer};

fn project_document(query: &str, doc: &str, project: bool) -> u64 {
    let q = gcx_query::compile(query).unwrap();
    let a = analyze(&q);
    let mut symbols = SymbolTable::new();
    let compiled = CompiledPaths::compile(&a.roles, &mut symbols);
    let (matcher, _) = StreamMatcher::new(&compiled);
    let mut buf = BufferTree::new(project);
    let mut pre = Preprojector::new(Tokenizer::from_str(doc), matcher, project, None);
    while pre.advance(&mut buf, &mut symbols).unwrap() {}
    buf.stats().allocated
}

fn bench_matcher(c: &mut Criterion) {
    let doc = gcx_bench::xmark_string(1);
    let mut g = c.benchmark_group("preprojector");
    g.throughput(Throughput::Bytes(doc.len() as u64));

    // Q1 touches only the people section: most of the document is skipped.
    g.bench_function("q1_sparse", |b| {
        b.iter(|| project_document(queries::Q1, &doc, true))
    });
    // Q8's paths touch two sections.
    g.bench_function("q8_join_paths", |b| {
        b.iter(|| project_document(queries::Q8, &doc, true))
    });
    // Descendant-axis paths keep the NFA active deeper in the tree.
    g.bench_function("q6_descendant", |b| {
        b.iter(|| project_document(queries::Q6, &doc, true))
    });
    // No projection: every node is buffered (upper bound on matcher work).
    g.bench_function("q1_full_buffering", |b| {
        b.iter(|| project_document(queries::Q1, &doc, false))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matcher
}
criterion_main!(benches);
