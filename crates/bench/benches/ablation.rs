//! Ablation benchmark: one query (Q6) across the four buffer-management
//! configurations plus the DOM baseline — the timing side of the
//! `ablation` binary's memory table.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_xmark::queries;

fn bench_ablation(c: &mut Criterion) {
    let doc = gcx_bench::xmark_string(1);
    let q6 = CompiledQuery::compile(queries::Q6).unwrap();
    let mut g = c.benchmark_group("ablation_q6");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    for (name, opts) in [
        ("gcx", EngineOptions::gcx()),
        ("projection_only", EngineOptions::projection_only()),
        (
            "gc_only",
            EngineOptions {
                project: false,
                ..EngineOptions::gcx()
            },
        ),
        ("full_buffering", EngineOptions::full_buffering()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                gcx_core::run(&q6, &opts, doc.as_bytes(), std::io::sink())
                    .unwrap()
                    .tokens
            })
        });
    }
    g.bench_function("dom_baseline", |b| {
        let q = gcx_query::compile(queries::Q6).unwrap();
        b.iter(|| {
            gcx_dom::run(&q, doc.as_bytes(), std::io::sink())
                .unwrap()
                .nodes
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_ablation
}
criterion_main!(benches);
