//! Microbenchmark: buffer-tree primitives — append/close, role decrement
//! with cascade purging, and pin/unpin. These are the per-node costs of
//! active garbage collection.

use criterion::{criterion_group, criterion_main, Criterion};
use gcx_core::buffer::{BufferTree, NodeId, Ordinals};
use gcx_query::ast::RoleId;
use gcx_xml::Symbol;

const N: u32 = 10_000;

fn ords(k: u32) -> Ordinals {
    Ordinals {
        same_kind: k,
        elem: k,
        any: k,
    }
}

fn bench_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer");

    g.bench_function("append_close_purge_flat", |b| {
        // The streaming steady state: node arrives, closes, gets purged.
        b.iter(|| {
            let mut buf = BufferTree::new(true);
            let parent = buf.append_element(NodeId::ROOT, Symbol(0), &[(RoleId(0), 1)], ords(1));
            for i in 0..N {
                let n = buf.append_element(parent, Symbol(1), &[], ords(i + 1));
                buf.close(n);
            }
            buf.stats().purged
        })
    });

    g.bench_function("role_decrement_with_purge", |b| {
        b.iter(|| {
            let mut buf = BufferTree::new(true);
            let parent = buf.append_element(NodeId::ROOT, Symbol(0), &[(RoleId(0), 1)], ords(1));
            let mut nodes = Vec::with_capacity(N as usize);
            for i in 0..N {
                let n = buf.append_element(parent, Symbol(1), &[(RoleId(1), 1)], ords(i + 1));
                buf.close(n);
                nodes.push(n);
            }
            for n in nodes {
                buf.decrement_role(n, RoleId(1), 1);
            }
            buf.stats().purged
        })
    });

    g.bench_function("deep_chain_cascade", |b| {
        // A purge that cascades through a deep ancestor chain.
        b.iter(|| {
            let mut buf = BufferTree::new(true);
            let mut cur = NodeId::ROOT;
            let mut chain = Vec::new();
            for _ in 0..200 {
                cur = buf.append_element(cur, Symbol(0), &[], ords(1));
                chain.push(cur);
            }
            let leaf = buf.append_element(cur, Symbol(1), &[(RoleId(0), 1)], ords(1));
            buf.close(leaf);
            for &n in chain.iter().rev() {
                buf.close(n);
            }
            buf.decrement_role(leaf, RoleId(0), 1);
            buf.stats().purged
        })
    });

    g.bench_function("pin_unpin", |b| {
        let mut buf = BufferTree::new(true);
        let mut cur = NodeId::ROOT;
        for _ in 0..20 {
            cur = buf.append_element(cur, Symbol(0), &[(RoleId(0), 1)], ords(1));
        }
        b.iter(|| {
            for _ in 0..1000 {
                buf.pin(cur);
                buf.unpin(cur);
            }
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_buffer
}
criterion_main!(benches);
