//! Service-layer overhead: loopback HTTP eval vs a direct engine run.
//!
//! The service's promise is that the HTTP layer adds framing, not
//! buffering — the engine streams straight off the socket. This bench
//! quantifies the per-request overhead (connection setup, head parsing,
//! chunked framing) by running the same query over the same ~1MB XMark
//! document both ways:
//!
//! * `engine_direct` — `gcx_core::run` over an in-memory cursor;
//! * `http_sized` / `http_chunked` — a full loopback request against an
//!   in-process `gcx-server` (sized vs chunked upload framing).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_server::client::{self, BodyMode};
use gcx_server::{serve, ServerConfig};
use gcx_xmark::queries;

fn bench_service_overhead(c: &mut Criterion) {
    let doc = gcx_bench::xmark_string(1).into_bytes();
    let q1 = CompiledQuery::compile(queries::Q1).unwrap();
    let opts = EngineOptions::gcx();

    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr();
    let r = client::put_query(addr, "q1", queries::Q1).expect("register");
    assert_eq!(r.status, 201);

    let mut g = c.benchmark_group("server_eval");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("engine_direct", |b| {
        b.iter(|| {
            gcx_core::run(&q1, &opts, std::io::Cursor::new(&doc[..]), std::io::sink())
                .unwrap()
                .tokens
        })
    });
    g.bench_function("http_sized", |b| {
        b.iter(|| {
            let r = client::eval(addr, "q1", &doc, &[], BodyMode::Sized).unwrap();
            assert_eq!(r.status, 200);
            r.body.len()
        })
    });
    g.bench_function("http_chunked", |b| {
        b.iter(|| {
            let r = client::eval(
                addr,
                "q1",
                &doc,
                &[],
                BodyMode::Chunked {
                    chunk_size: 256 * 1024,
                },
            )
            .unwrap();
            assert_eq!(r.status, 200);
            r.body.len()
        })
    });
    g.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_service_overhead);
criterion_main!(benches);
