//! Regenerates **Figure 4**: buffer plots for XMark Q6 and Q8 on a ~10MB
//! generated document.
//!
//! Expected shapes (paper §3 "Dynamic buffer management"):
//!
//! * **Q6** — items live at the *start* of the document (regions section);
//!   they are processed one at a time, so the buffer stays below ~100 nodes
//!   and is nearly empty once the regions section has passed.
//! * **Q8** — the people section loads a first "diagonal" of join partners,
//!   a plateau follows while irrelevant sections stream by, then the closed
//!   auctions accumulate: memory linear in the input.
//!
//! ```sh
//! cargo run --release -p gcx-bench --bin fig4            # ~10MB document
//! cargo run --release -p gcx-bench --bin fig4 -- 2       # ~2MB document
//! ```

use gcx_bench::{ascii_plot, run_streaming, write_series_csv, xmark_file};
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_xmark::queries;

fn main() {
    let mb: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let path = xmark_file(mb);

    for (name, query, label) in [
        (
            "fig4a",
            queries::Q6,
            "Figure 4(a): Query Q6 — streaming, low memory",
        ),
        (
            "fig4b",
            queries::Q8,
            "Figure 4(b): Query Q8 — blocking join, linear memory",
        ),
    ] {
        let q = CompiledQuery::compile(query).expect("query compiles");
        // Sample roughly 2000 points across the document.
        let (elapsed, report) = {
            let input = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
            let start = std::time::Instant::now();
            let report = gcx_core::run(
                &q,
                &EngineOptions::gcx().with_timeline(1).without_drain(),
                input,
                std::io::sink(),
            )
            .expect("run");
            (start.elapsed(), report)
        };
        let full = report.timeline.expect("timeline enabled").points;
        // Thin the series for CSV/plot (keep every k-th + the peak points).
        let stride = (full.len() / 2000).max(1);
        let series: Vec<(u64, u64)> = full.iter().copied().step_by(stride).collect();

        println!("\n{label}");
        print!("{}", ascii_plot(&series, 100, 14));
        println!(
            "tokens: {}   peak buffered nodes: {}   purged: {}   time: {:?}",
            report.tokens, report.buffer.peak_live, report.buffer.purged, elapsed
        );
        let csv = write_series_csv(name, &series);
        println!("series written to {}", csv.display());
    }

    // Shape check mirroring the paper's reading of the two plots.
    let q6 = CompiledQuery::compile(queries::Q6).unwrap();
    let q8 = CompiledQuery::compile(queries::Q8).unwrap();
    let (_, r6) = run_streaming(&q6, &EngineOptions::gcx(), &path);
    let (_, r8) = run_streaming(&q8, &EngineOptions::gcx(), &path);
    println!(
        "\nQ6 peak ({}) << Q8 peak ({}): streaming vs blocking — factor {:.0}x",
        r6.buffer.peak_live,
        r8.buffer.peak_live,
        r8.buffer.peak_live as f64 / r6.buffer.peak_live.max(1) as f64
    );
}
