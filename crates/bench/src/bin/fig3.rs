//! Regenerates **Figure 3(b) and 3(c)**: buffer occupancy per token on the
//! two micro documents (9×article+1×book and 9×book+1×article), running the
//! paper's example query with full GCX buffer management.
//!
//! Prints ASCII plots and writes `target/figures/fig3{b,c}.csv`.
//!
//! ```sh
//! cargo run --release -p gcx-bench --bin fig3
//! ```

use gcx_bench::{ascii_plot, write_series_csv};
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_xmark::{microdoc_article_heavy, microdoc_book_heavy, queries};

fn series_for(doc: &str) -> Vec<(u64, u64)> {
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).expect("query compiles");
    let report = gcx_core::run(
        &q,
        &EngineOptions::gcx().with_timeline(1),
        doc.as_bytes(),
        std::io::sink(),
    )
    .expect("run");
    report.timeline.expect("timeline enabled").points
}

fn main() {
    println!("Figure 3(b): 9 x article + 1 x book");
    println!("(articles are processed one at a time; memory stays bounded)\n");
    let b = series_for(&microdoc_article_heavy());
    print!("{}", ascii_plot(&b, 82, 12));
    let peak_b = b.iter().map(|&(_, y)| y).max().unwrap();
    println!("peak buffered nodes: {peak_b}   (paper plot peaks well under 10)\n");
    let path = write_series_csv("fig3b", &b);
    println!("series written to {}\n", path.display());

    println!("Figure 3(c): 9 x book + 1 x article");
    println!("(each book's title must be kept for the second loop: staircase)\n");
    let c = series_for(&microdoc_book_heavy());
    print!("{}", ascii_plot(&c, 82, 12));
    let peak_c = c.iter().map(|&(_, y)| y).max().unwrap();
    println!("peak buffered nodes: {peak_c}   (paper: 23 nodes buffered at </bib>)\n");
    let path = write_series_csv("fig3c", &c);
    println!("series written to {}", path.display());
}
