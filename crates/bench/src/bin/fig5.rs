//! Regenerates **Figure 5**: the time / memory-high-watermark table over
//! XMark queries Q1, Q6, Q8, Q13, Q20 at several document sizes.
//!
//! Engines compared (see DESIGN.md for the substitution rationale):
//!
//! * `gcx`        — this system: projection + active garbage collection;
//! * `proj-only` — static projection without dynamic purging (the
//!   FluXQuery / projection-systems class);
//! * `full-buf` — the streaming evaluator over an unprojected buffer;
//! * `dom` — the independent DOM baseline (the Galax/Saxon/QizX in-memory
//!   class).
//!
//! Memory is reported two ways: the engine's peak buffered-node count and
//! the process heap high watermark from `gcx-memtrack` (the paper reports
//! the high watermark of non-swapped memory).
//!
//! ```sh
//! cargo run --release -p gcx-bench --bin fig5             # 1,5,10,20 MB
//! cargo run --release -p gcx-bench --bin fig5 -- --full   # 10,50,100,200 MB
//! cargo run --release -p gcx-bench --bin fig5 -- 5        # single size (MB)
//! ```
//!
//! Q8 is quadratic (a nested-loop value join, as in the paper, where it
//! times out at 200MB); at the `--full` sizes expect it to dominate the
//! runtime.

use gcx_bench::{fmt_duration, run_dom, run_streaming, xmark_file};
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_memtrack as memtrack;
use gcx_xmark::queries;

#[global_allocator]
static ALLOC: memtrack::TrackingAllocator = memtrack::TrackingAllocator::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes: Vec<u64> = if args.iter().any(|a| a == "--full") {
        vec![10, 50, 100, 200]
    } else if let Some(mb) = args.first().and_then(|a| a.parse().ok()) {
        vec![mb]
    } else {
        vec![1, 5, 10, 20]
    };

    println!(
        "{:<6} {:>6} | {:<10} {:>9} {:>12} {:>10} {:>10}",
        "query", "sizeMB", "engine", "time", "peak nodes", "peak heap", "out bytes"
    );
    println!("{}", "-".repeat(76));

    for (qname, qtext) in queries::FIGURE5_QUERIES {
        for &mb in &sizes {
            let path = xmark_file(mb);
            let q = CompiledQuery::compile(qtext).expect("query compiles");
            for (ename, opts) in [
                ("gcx", EngineOptions::gcx()),
                ("proj-only", EngineOptions::projection_only()),
                ("full-buf", EngineOptions::full_buffering()),
            ] {
                memtrack::reset_peak();
                let base = memtrack::live_bytes();
                let (elapsed, report) = run_streaming(&q, &opts, &path);
                let heap = memtrack::peak_bytes().saturating_sub(base);
                println!(
                    "{:<6} {:>6} | {:<10} {:>9} {:>12} {:>10} {:>10}",
                    qname,
                    mb,
                    ename,
                    fmt_duration(elapsed),
                    report.buffer.peak_live,
                    memtrack::fmt_bytes(heap),
                    report.output_bytes
                );
            }
            {
                memtrack::reset_peak();
                let base = memtrack::live_bytes();
                let (elapsed, nodes, out_bytes) = run_dom(qtext, &path);
                let heap = memtrack::peak_bytes().saturating_sub(base);
                println!(
                    "{:<6} {:>6} | {:<10} {:>9} {:>12} {:>10} {:>10}",
                    qname,
                    mb,
                    "dom",
                    fmt_duration(elapsed),
                    nodes,
                    memtrack::fmt_bytes(heap),
                    out_bytes
                );
            }
            println!("{}", "-".repeat(76));
        }
    }

    println!(
        "\nreading guide (paper Figure 5): gcx holds peak memory constant across\n\
         sizes for Q1/Q6/Q13/Q20 and grows linearly only for the join Q8;\n\
         proj-only grows with the projected document; full-buf and dom grow\n\
         with the whole document. gcx must also be the fastest engine on the\n\
         streaming queries."
    );
}
