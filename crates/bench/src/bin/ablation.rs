//! Ablation study (beyond the paper): isolates the contribution of each
//! buffer-management ingredient on one query and one document.
//!
//! * the 2×2 grid {static projection} × {active GC} — the paper's central
//!   claim is that the combination beats projection alone;
//! * the aggregation extension: `count()` via buffered witnesses
//!   (Q6 adapted) vs the native `count()` aggregate (Q6_COUNT), showing
//!   that count-style queries need no subtree retention;
//! * timeline-sampling overhead (the instrumentation used by fig3/fig4).
//!
//! ```sh
//! cargo run --release -p gcx-bench --bin ablation          # ~5MB document
//! cargo run --release -p gcx-bench --bin ablation -- 20
//! ```

use gcx_bench::{fmt_duration, run_streaming, xmark_file};
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_memtrack as memtrack;
use gcx_xmark::queries;

#[global_allocator]
static ALLOC: memtrack::TrackingAllocator = memtrack::TrackingAllocator::new();

fn measure(label: &str, q: &CompiledQuery, opts: &EngineOptions, path: &std::path::Path) {
    memtrack::reset_peak();
    let base = memtrack::live_bytes();
    let (elapsed, report) = run_streaming(q, opts, path);
    let heap = memtrack::peak_bytes().saturating_sub(base);
    println!(
        "{:<26} {:>9} {:>12} {:>11} {:>12}",
        label,
        fmt_duration(elapsed),
        report.buffer.peak_live,
        memtrack::fmt_bytes(heap),
        report.buffer.purged
    );
}

fn main() {
    let mb: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let path = xmark_file(mb);

    println!("== 2x2 grid: projection x active GC (query Q6, {mb}MB) ==\n");
    println!(
        "{:<26} {:>9} {:>12} {:>11} {:>12}",
        "configuration", "time", "peak nodes", "peak heap", "purged"
    );
    let q6 = CompiledQuery::compile(queries::Q6).unwrap();
    measure("projection + GC (gcx)", &q6, &EngineOptions::gcx(), &path);
    measure(
        "projection only",
        &q6,
        &EngineOptions::projection_only(),
        &path,
    );
    // GC without projection: everything is buffered but signOffs still purge.
    let gc_only = EngineOptions {
        project: false,
        ..EngineOptions::gcx()
    };
    measure("GC only (no projection)", &q6, &gc_only, &path);
    measure(
        "neither (full buffering)",
        &q6,
        &EngineOptions::full_buffering(),
        &path,
    );

    println!("\n== aggregation extension: witness emission vs native count ==\n");
    println!(
        "{:<26} {:>9} {:>12} {:>11} {:>12}",
        "query", "time", "peak nodes", "peak heap", "purged"
    );
    let q6_count = CompiledQuery::compile(queries::Q6_COUNT).unwrap();
    measure("Q6 (emit witnesses)", &q6, &EngineOptions::gcx(), &path);
    measure(
        "Q6_COUNT (count() ext.)",
        &q6_count,
        &EngineOptions::gcx(),
        &path,
    );

    println!("\n== instrumentation overhead (query Q1, {mb}MB) ==\n");
    println!(
        "{:<26} {:>9} {:>12} {:>11} {:>12}",
        "configuration", "time", "peak nodes", "peak heap", "purged"
    );
    let q1 = CompiledQuery::compile(queries::Q1).unwrap();
    measure("no timeline", &q1, &EngineOptions::gcx(), &path);
    measure(
        "timeline every token",
        &q1,
        &EngineOptions::gcx().with_timeline(1),
        &path,
    );
    measure(
        "timeline every 1000",
        &q1,
        &EngineOptions::gcx().with_timeline(1000),
        &path,
    );
}
