#![deny(unsafe_code)]
//! Shared harness utilities for the GCX experiment regenerators.
//!
//! The binaries in `src/bin/` regenerate the paper's figures and tables:
//!
//! * `fig3` — buffer plots on the micro documents (Figure 3(b)/(c));
//! * `fig4` — buffer plots for XMark Q6/Q8 on a ~10MB document (Figure 4);
//! * `fig5` — the time/memory comparison table (Figure 5);
//! * `ablation` — the 2×2 {projection}×{GC} grid plus the aggregation
//!   extension (not in the paper; documents our design choices).
//!
//! Criterion micro-benchmarks live in `benches/`.

use gcx_core::{CompiledQuery, EngineOptions, RunReport};
use gcx_xmark::XmarkConfig;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Generate (or reuse a cached copy of) an XMark-like document of roughly
/// `mb` megabytes; returns its path. Cached under `target/xmark-cache/`.
pub fn xmark_file(mb: u64) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/xmark-cache");
    std::fs::create_dir_all(&dir).expect("create cache dir");
    let path = dir.join(format!("xmark-{mb}mb.xml"));
    if !path.exists() {
        eprintln!("generating {} ...", path.display());
        let tmp = path.with_extension("tmp");
        let f = BufWriter::new(File::create(&tmp).expect("create doc"));
        gcx_xmark::generate(&XmarkConfig::sized(mb * 1024 * 1024), f).expect("generate doc");
        std::fs::rename(&tmp, &path).expect("publish doc");
    }
    path
}

/// Read a cached document fully into memory (criterion benches).
pub fn xmark_string(mb: u64) -> String {
    let mut s = String::new();
    BufReader::new(File::open(xmark_file(mb)).unwrap())
        .read_to_string(&mut s)
        .unwrap();
    s
}

/// One measured engine run over a file: wall time + engine report.
pub fn run_streaming(
    q: &CompiledQuery,
    opts: &EngineOptions,
    path: &std::path::Path,
) -> (Duration, RunReport) {
    let input = BufReader::new(File::open(path).expect("open input"));
    let start = Instant::now();
    let report = gcx_core::run(q, opts, input, std::io::sink()).expect("engine run failed");
    (start.elapsed(), report)
}

/// One measured DOM-baseline run over a file: wall time + node count +
/// output bytes.
pub fn run_dom(query_text: &str, path: &std::path::Path) -> (Duration, usize, u64) {
    let q = gcx_query::compile(query_text).expect("query compiles");
    let input = BufReader::new(File::open(path).expect("open input"));
    let start = Instant::now();
    let report = gcx_dom::run(&q, input, std::io::sink()).expect("dom run failed");
    (start.elapsed(), report.nodes, report.output_bytes)
}

/// Format a duration the way the paper's table does: `0.18s` or `2:07`.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 100.0 {
        format!("{secs:.2}s")
    } else {
        format!("{}:{:02}", d.as_secs() / 60, d.as_secs() % 60)
    }
}

/// Write a `(token, buffered nodes)` series as CSV next to the figures.
pub fn write_series_csv(name: &str, series: &[(u64, u64)]) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create figures dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = BufWriter::new(File::create(&path).expect("create csv"));
    writeln!(f, "tokens,buffered_nodes").unwrap();
    for (t, n) in series {
        writeln!(f, "{t},{n}").unwrap();
    }
    f.flush().unwrap();
    path
}

/// Compact ASCII rendering of a buffer timeline (for terminal output).
pub fn ascii_plot(series: &[(u64, u64)], width: usize, height: usize) -> String {
    if series.is_empty() {
        return String::from("(empty series)\n");
    }
    let max_y = series.iter().map(|&(_, y)| y).max().unwrap_or(0).max(1);
    let max_x = series.last().unwrap().0.max(1);
    // Downsample to `width` columns, keeping the max per column.
    let mut cols = vec![0u64; width];
    for &(x, y) in series {
        let c = ((x.saturating_mul(width as u64 - 1)) / max_x).min(width as u64 - 1) as usize;
        cols[c] = cols[c].max(y);
    }
    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = (row as u64 * max_y).div_ceil(height as u64);
        let y_label = if row == height {
            format!("{max_y:>8}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&y_label);
        out.push('|');
        for &v in &cols {
            out.push(if v >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>8}+{}\n", 0, "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}{}{}\n",
        "0",
        " ".repeat(width.saturating_sub(12)),
        max_x
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_matches_paper_style() {
        assert_eq!(fmt_duration(Duration::from_millis(180)), "0.18s");
        assert_eq!(fmt_duration(Duration::from_secs(127)), "2:07");
    }

    #[test]
    fn ascii_plot_has_requested_dimensions() {
        let series: Vec<(u64, u64)> = (0..100).map(|i| (i, i % 17)).collect();
        let plot = ascii_plot(&series, 40, 8);
        assert_eq!(plot.lines().count(), 10);
    }

    #[test]
    fn xmark_file_is_cached() {
        let p1 = xmark_file(1);
        let modified = p1.metadata().unwrap().modified().unwrap();
        let p2 = xmark_file(1);
        assert_eq!(p1, p2);
        assert_eq!(p2.metadata().unwrap().modified().unwrap(), modified);
    }
}
