//! Normalization: scoping, alpha-renaming, `where` desugaring, fragment checks.
//!
//! After normalization the AST satisfies the invariants listed in
//! [`crate::ast`], which the static analyzer and all evaluators rely on.

use crate::ast::*;

/// Normalize a parsed expression into a validated [`Query`].
pub fn normalize(root: Expr) -> Result<Query, QueryError> {
    let mut cx = Ctx {
        var_names: Vec::new(),
        scope: Vec::new(),
        uses_aggregates: false,
    };
    let root = cx.expr(root)?;
    Ok(Query {
        root,
        var_names: cx.var_names,
        uses_aggregates: cx.uses_aggregates,
    })
}

struct Ctx {
    /// Unique name per VarId.
    var_names: Vec<String>,
    /// Innermost-last scope stack: (surface name, id).
    scope: Vec<(String, VarId)>,
    uses_aggregates: bool,
}

impl Ctx {
    fn bind(&mut self, surface: &str) -> Var {
        // Alpha-rename shadowed binders so names are globally unique: the
        // pretty-printed rewritten query stays unambiguous.
        let mut unique = surface.to_string();
        let mut n = 1;
        while self.var_names.contains(&unique) {
            n += 1;
            unique = format!("{surface}_{n}");
        }
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(unique.clone());
        self.scope.push((surface.to_string(), id));
        Var { name: unique, id }
    }

    fn unbind(&mut self) {
        self.scope.pop();
    }

    fn lookup(&self, surface: &str, span: Span) -> Result<Var, QueryError> {
        for (name, id) in self.scope.iter().rev() {
            if name == surface {
                return Ok(Var {
                    name: self.var_names[id.index()].clone(),
                    id: *id,
                });
            }
        }
        Err(QueryError::new(
            QueryErrorKind::UnboundVariable(surface.to_string()),
            span,
        ))
    }

    fn path(&self, p: PathExpr) -> Result<PathExpr, QueryError> {
        let root = match p.root {
            PathRoot::Root => PathRoot::Root,
            PathRoot::Var(v) => PathRoot::Var(self.lookup(&v.name, p.span)?),
        };
        // Attribute steps must be terminal: nothing navigates out of an
        // attribute. Positional predicates are only meaningful (and
        // supported) on the child axis.
        for (i, step) in p.steps.iter().enumerate() {
            if step.axis == Axis::Attribute && i + 1 != p.steps.len() {
                return Err(QueryError::new(
                    QueryErrorKind::OutsideFragment(
                        "attribute steps must be the last step of a path".into(),
                    ),
                    p.span,
                ));
            }
            if step.pred.is_some() && step.axis != Axis::Child {
                return Err(QueryError::new(
                    QueryErrorKind::OutsideFragment(
                        "positional predicates are only supported on child steps".into(),
                    ),
                    p.span,
                ));
            }
        }
        Ok(PathExpr {
            root,
            steps: p.steps,
            span: p.span,
        })
    }

    fn cond(&mut self, c: Cond) -> Result<Cond, QueryError> {
        Ok(match c {
            Cond::True => Cond::True,
            Cond::False => Cond::False,
            Cond::Exists(p) => Cond::Exists(self.path(p)?),
            Cond::Not(inner) => Cond::Not(Box::new(self.cond(*inner)?)),
            Cond::And(a, b) => Cond::And(Box::new(self.cond(*a)?), Box::new(self.cond(*b)?)),
            Cond::Or(a, b) => Cond::Or(Box::new(self.cond(*a)?), Box::new(self.cond(*b)?)),
            Cond::Compare { op, lhs, rhs } => Cond::Compare {
                op,
                lhs: self.operand(lhs)?,
                rhs: self.operand(rhs)?,
            },
            Cond::StringFn {
                func,
                haystack,
                needle,
            } => Cond::StringFn {
                func,
                haystack: self.operand(haystack)?,
                needle: self.operand(needle)?,
            },
        })
    }

    fn operand(&mut self, o: Operand) -> Result<Operand, QueryError> {
        Ok(match o {
            Operand::Path(p) => Operand::Path(self.path(p)?),
            other => other,
        })
    }

    fn expr(&mut self, e: Expr) -> Result<Expr, QueryError> {
        Ok(match e {
            Expr::Empty => Expr::Empty,
            Expr::Sequence(items) => {
                let items = items
                    .into_iter()
                    .map(|i| self.expr(i))
                    .collect::<Result<Vec<_>, _>>()?;
                Expr::seq(items)
            }
            Expr::Element {
                name,
                attrs,
                content,
            } => {
                validate_constructor_name(&name)?;
                for (attr_name, _) in &attrs {
                    validate_constructor_name(attr_name)?;
                }
                Expr::Element {
                    name,
                    attrs,
                    content: Box::new(self.expr(*content)?),
                }
            }
            Expr::For {
                var,
                source,
                where_clause,
                body,
            } => {
                // The source path is resolved in the *outer* scope.
                let source = self.path(source)?;
                if source.ends_in_attribute() {
                    return Err(QueryError::new(
                        QueryErrorKind::OutsideFragment(
                            "for-loops cannot iterate over attributes".into(),
                        ),
                        source.span,
                    ));
                }
                let bound = self.bind(&var.name);
                let mut body = self.expr(*body)?;
                // Desugar `where c` into `if (c) then body`.
                if let Some(c) = where_clause {
                    let c = self.cond(c)?;
                    body = Expr::If {
                        cond: c,
                        then_branch: Box::new(body),
                        else_branch: Box::new(Expr::Empty),
                    };
                }
                self.unbind();
                Expr::For {
                    var: bound,
                    source,
                    where_clause: None,
                    body: Box::new(body),
                }
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => Expr::If {
                cond: self.cond(cond)?,
                then_branch: Box::new(self.expr(*then_branch)?),
                else_branch: Box::new(self.expr(*else_branch)?),
            },
            Expr::Path(p) => Expr::Path(self.path(p)?),
            Expr::StringLit(s) => Expr::StringLit(s),
            Expr::NumberLit(v) => Expr::NumberLit(v),
            Expr::Aggregate { func, arg } => {
                self.uses_aggregates = true;
                Expr::Aggregate {
                    func,
                    arg: self.path(arg)?,
                }
            }
            Expr::SignOff { target, .. } => {
                return Err(QueryError::new(
                    QueryErrorKind::OutsideFragment(
                        "signOff is inserted by the compiler and cannot appear in user queries"
                            .into(),
                    ),
                    target.span,
                ))
            }
        })
    }
}

fn validate_constructor_name(name: &str) -> Result<(), QueryError> {
    let mut chars = name.chars();
    let ok_first = |c: char| c.is_alphabetic() || c == '_';
    let ok_rest = |c: char| c.is_alphanumeric() || matches!(c, '_' | '-' | '.');
    let valid = match chars.next() {
        None => false,
        Some(c) => ok_first(c) && chars.all(ok_rest),
    };
    if valid {
        Ok(())
    } else {
        Err(QueryError::new(
            QueryErrorKind::OutsideFragment(format!("invalid constructor name `{name}`")),
            Span::default(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn norm(input: &str) -> Query {
        normalize(parse(input).unwrap()).unwrap_or_else(|e| panic!("normalize failed: {e}"))
    }

    fn norm_err(input: &str) -> QueryError {
        normalize(parse(input).unwrap()).unwrap_err()
    }

    #[test]
    fn assigns_dense_var_ids() {
        let q = norm("for $a in /x return for $b in $a/y return $b");
        assert_eq!(q.var_names, vec!["a".to_string(), "b".to_string()]);
        let Expr::For { var, body, .. } = &q.root else {
            panic!()
        };
        assert_eq!(var.id, VarId(0));
        let Expr::For { var: inner, .. } = body.as_ref() else {
            panic!()
        };
        assert_eq!(inner.id, VarId(1));
    }

    #[test]
    fn resolves_uses_to_binders() {
        let q = norm("for $a in /x return $a/y");
        let Expr::For { body, .. } = &q.root else {
            panic!()
        };
        let Expr::Path(p) = body.as_ref() else {
            panic!()
        };
        let PathRoot::Var(v) = &p.root else { panic!() };
        assert_eq!(v.id, VarId(0));
    }

    #[test]
    fn unbound_variable_rejected() {
        let e = norm_err("for $a in /x return $b");
        assert!(matches!(e.kind, QueryErrorKind::UnboundVariable(ref v) if v == "b"));
    }

    #[test]
    fn source_resolved_in_outer_scope() {
        // `$a` in the source of the second loop must refer to the first `$a`,
        // not to the variable being bound.
        let e = norm_err("for $a in $a/x return $a");
        assert!(matches!(e.kind, QueryErrorKind::UnboundVariable(_)));
    }

    #[test]
    fn shadowing_is_alpha_renamed() {
        let q = norm("for $a in /x return for $a in $a/y return $a");
        assert_eq!(q.var_names.len(), 2);
        assert_ne!(q.var_names[0], q.var_names[1]);
        // The inner use refers to the inner (renamed) binder.
        let Expr::For { body, .. } = &q.root else {
            panic!()
        };
        let Expr::For {
            var: inner,
            body: inner_body,
            ..
        } = body.as_ref()
        else {
            panic!()
        };
        let Expr::Path(p) = inner_body.as_ref() else {
            panic!()
        };
        let PathRoot::Var(used) = &p.root else {
            panic!()
        };
        assert_eq!(used.id, inner.id);
    }

    #[test]
    fn where_desugars_to_if() {
        let q = norm("for $x in /a where exists($x/b) return $x");
        let Expr::For {
            where_clause, body, ..
        } = &q.root
        else {
            panic!()
        };
        assert!(where_clause.is_none());
        assert!(matches!(body.as_ref(), Expr::If { .. }));
    }

    #[test]
    fn for_over_attributes_rejected() {
        let e = norm_err("for $a in /x/@id return $a");
        assert!(matches!(e.kind, QueryErrorKind::OutsideFragment(_)));
    }

    #[test]
    fn attribute_mid_path_rejected() {
        let e = norm_err("for $a in /x return $a/@id/y");
        assert!(matches!(e.kind, QueryErrorKind::OutsideFragment(_)));
    }

    #[test]
    fn signoff_in_user_query_rejected() {
        let e = norm_err("for $a in /x return signOff($a, r1)");
        assert!(matches!(e.kind, QueryErrorKind::OutsideFragment(_)));
    }

    #[test]
    fn aggregates_flagged() {
        let q = norm("count(/site/people/person)");
        assert!(q.uses_aggregates);
        let q = norm("for $a in /x return $a");
        assert!(!q.uses_aggregates);
    }

    #[test]
    fn bad_constructor_name_rejected() {
        // Not reachable through the parser (the lexer only produces valid
        // names), but the AST is a public type.
        let bad = Expr::Element {
            name: "1bad".into(),
            attrs: vec![],
            content: Box::new(Expr::Empty),
        };
        let e = normalize(bad).unwrap_err();
        assert!(matches!(e.kind, QueryErrorKind::OutsideFragment(_)));
    }

    #[test]
    fn sequences_renormalize() {
        let q = norm("(), (), 'a'");
        assert_eq!(q.root, Expr::StringLit("a".into()));
    }

    #[test]
    fn paper_example_normalizes() {
        let q = norm(
            r#"<r> {
              for $bib in /bib return
                (for $x in $bib/* return
                   if (not(exists($x/price))) then $x else (),
                 for $b in $bib/book return $b/title)
            } </r>"#,
        );
        assert_eq!(
            q.var_names,
            vec!["bib".to_string(), "x".to_string(), "b".to_string()]
        );
    }
}
