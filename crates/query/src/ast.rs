//! Abstract syntax for the GCX XQuery fragment.
//!
//! The same AST is shared by all three evaluators (streaming GCX, the
//! projection-only configuration and the DOM baseline) and by the static
//! analyzer. After [`crate::normalize`] it is guaranteed that
//!
//! * every variable use is bound, and every binder has a unique dense
//!   [`VarId`] (shadowing is resolved by alpha-renaming);
//! * `where` clauses have been desugared into `if` expressions;
//! * paths carry the variable (or document root) they are rooted at.
//!
//! `signOff` statements ([`Expr::SignOff`]) never come from the parser — the
//! static analyzer (`gcx-projection`) inserts them when rewriting the query,
//! exactly as the paper's compile-time rewriting does.

use std::fmt;

/// Position (1-based line/column) in query text, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Dense index of a for-variable, assigned by normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Placeholder used by the parser before normalization assigns real ids.
    pub const UNASSIGNED: VarId = VarId(u32::MAX);

    /// Index into a bindings vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A variable: its (possibly alpha-renamed) name plus its dense id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Var {
    /// Name without the `$` sigil.
    pub name: String,
    /// Dense binder index ([`VarId::UNASSIGNED`] before normalization).
    pub id: VarId,
}

/// Role identifier assigned by static analysis (the paper's r1, r2, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoleId(pub u32);

impl RoleId {
    /// Index into the role table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0 + 1)
    }
}

/// XPath axes supported by the fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::` (the default axis).
    Child,
    /// `descendant::` (`//` abbreviation).
    Descendant,
    /// `descendant-or-self::`.
    DescendantOrSelf,
    /// `self::`.
    SelfAxis,
    /// `attribute::` (`@` abbreviation). Attribute steps are terminal.
    Attribute,
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A name test (element name, or attribute name on the attribute axis).
    Name(String),
    /// `*` — any element (any attribute on the attribute axis).
    Star,
    /// `text()` — text nodes.
    Text,
    /// `node()` — any node (element or text).
    AnyNode,
}

/// Step predicate. The fragment supports positional selection, which the
/// paper uses for first-witness roles (`price[1]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// `[k]`, 1-based position among the nodes selected by the step within
    /// one context node.
    Position(u32),
}

/// One path step: axis, node test, optional predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    /// The axis to navigate.
    pub axis: Axis,
    /// The node test to apply.
    pub test: NodeTest,
    /// Optional positional predicate.
    pub pred: Option<Pred>,
}

impl Step {
    /// Convenience constructor for a child::name step.
    pub fn child(name: &str) -> Step {
        Step {
            axis: Axis::Child,
            test: NodeTest::Name(name.into()),
            pred: None,
        }
    }

    /// The `descendant-or-self::node()` step used pervasively in roles.
    pub fn descendant_or_self_node() -> Step {
        Step {
            axis: Axis::DescendantOrSelf,
            test: NodeTest::AnyNode,
            pred: None,
        }
    }
}

/// What a path is rooted at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathRoot {
    /// The document root (`/...`).
    Root,
    /// A variable (`$x/...`).
    Var(Var),
}

/// A (possibly empty) sequence of steps from a root.
#[derive(Debug, Clone, Eq)]
pub struct PathExpr {
    /// `$x` or `/`.
    pub root: PathRoot,
    /// Steps; empty means the root itself (`$x` alone).
    pub steps: Vec<Step>,
    /// Source position of the path, for diagnostics.
    pub span: Span,
}

/// Equality ignores the span: two paths are the same path wherever they were
/// written. Static analysis depends on this when deduplicating role paths.
impl PartialEq for PathExpr {
    fn eq(&self, other: &Self) -> bool {
        self.root == other.root && self.steps == other.steps
    }
}

impl PathExpr {
    /// A bare variable reference `$x`.
    pub fn var(name: &str) -> PathExpr {
        PathExpr {
            root: PathRoot::Var(Var {
                name: name.into(),
                id: VarId::UNASSIGNED,
            }),
            steps: Vec::new(),
            span: Span::default(),
        }
    }

    /// True when the last step navigates the attribute axis.
    pub fn ends_in_attribute(&self) -> bool {
        matches!(
            self.steps.last(),
            Some(Step {
                axis: Axis::Attribute,
                ..
            })
        )
    }
}

/// Comparison operators (XPath general comparisons, existential semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A comparison operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Node sequence selected by a path; atomized to string values.
    Path(PathExpr),
    /// String literal.
    StringLit(String),
    /// Numeric literal.
    NumberLit(f64),
}

/// String predicate functions (extension beyond the paper's fragment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrFunc {
    /// `contains(haystack, needle)`.
    Contains,
    /// `starts-with(haystack, prefix)`.
    StartsWith,
    /// `ends-with(haystack, suffix)`.
    EndsWith,
}

impl StrFunc {
    /// Function name as written in queries.
    pub fn name(self) -> &'static str {
        match self {
            StrFunc::Contains => "contains",
            StrFunc::StartsWith => "starts-with",
            StrFunc::EndsWith => "ends-with",
        }
    }

    /// Apply to two strings.
    pub fn apply(self, haystack: &str, needle: &str) -> bool {
        match self {
            StrFunc::Contains => haystack.contains(needle),
            StrFunc::StartsWith => haystack.starts_with(needle),
            StrFunc::EndsWith => haystack.ends_with(needle),
        }
    }
}

/// Conditions (the `if`/`where` language).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `true()`
    True,
    /// `false()`
    False,
    /// `exists($x/p)` — at least one node matches.
    Exists(PathExpr),
    /// `not(c)`
    Not(Box<Cond>),
    /// `c1 and c2`
    And(Box<Cond>, Box<Cond>),
    /// `c1 or c2`
    Or(Box<Cond>, Box<Cond>),
    /// General comparison with existential sequence semantics.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// String predicate with existential sequence semantics (extension).
    StringFn {
        /// Which predicate.
        func: StrFunc,
        /// The string searched in.
        haystack: Operand,
        /// The string searched for.
        needle: Operand,
    },
}

/// Aggregation functions — an extension beyond the paper's fragment
/// ("GCX ... does not yet cover aggregation"). Disabled unless the caller
/// opts in; see `normalize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count($x/p)` — number of matching nodes.
    Count,
    /// `sum($x/p)` — sum of numeric values.
    Sum,
    /// `min($x/p)`.
    Min,
    /// `max($x/p)`.
    Max,
    /// `avg($x/p)`.
    Avg,
}

impl AggFunc {
    /// Function name as written in queries.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// Expressions of the fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `()`
    Empty,
    /// `e1, e2, ...` (flattened during parsing).
    Sequence(Vec<Expr>),
    /// `<name a="v">{ content }</name>`. Constructor attributes are literal
    /// strings (the fragment does not allow computed attributes).
    Element {
        /// Element name.
        name: String,
        /// Literal attributes.
        attrs: Vec<(String, String)>,
        /// Content expression.
        content: Box<Expr>,
    },
    /// `for $v in path (where c)? return body`; `where` is desugared by
    /// normalization, so a normalized AST never has `Some` here.
    For {
        /// The bound variable.
        var: Var,
        /// The binding path.
        source: PathExpr,
        /// Optional `where` clause (pre-normalization only).
        where_clause: Option<Cond>,
        /// Loop body.
        body: Box<Expr>,
    },
    /// `if (c) then e1 else e2` (missing `else` is `()`).
    If {
        /// Condition.
        cond: Cond,
        /// Then branch.
        then_branch: Box<Expr>,
        /// Else branch.
        else_branch: Box<Expr>,
    },
    /// Path in output position: emits the matching nodes (deep copies).
    Path(PathExpr),
    /// String literal in output position: emits a text node.
    StringLit(String),
    /// Number literal in output position: emits its canonical text form.
    NumberLit(f64),
    /// Extension: aggregate over a path, emitting a single text value.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Path argument.
        arg: PathExpr,
    },
    /// `signOff(path, r)` — inserted by static analysis; removes one
    /// instance of role `r` from every buffered node matching `path`.
    /// Evaluates to the empty sequence.
    SignOff {
        /// Nodes losing the role.
        target: PathExpr,
        /// The role being signed off.
        role: RoleId,
    },
}

impl Expr {
    /// Wrap a list of expressions as a sequence, collapsing trivial cases.
    pub fn seq(mut exprs: Vec<Expr>) -> Expr {
        exprs.retain(|e| !matches!(e, Expr::Empty));
        match exprs.len() {
            0 => Expr::Empty,
            1 => exprs.pop().unwrap(),
            _ => Expr::Sequence(exprs),
        }
    }
}

/// A fully parsed and normalized query.
#[derive(Debug, Clone)]
pub struct Query {
    /// The root expression.
    pub root: Expr,
    /// Variable names by [`VarId`] (after alpha-renaming).
    pub var_names: Vec<String>,
    /// True when the query uses the aggregation extension.
    pub uses_aggregates: bool,
}

/// Error category for query compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryErrorKind {
    /// Lexical error (bad character, unterminated literal, ...).
    Lex(String),
    /// Parse error: unexpected token etc.
    Parse(String),
    /// A variable was used without being bound.
    UnboundVariable(String),
    /// Something outside the supported fragment.
    OutsideFragment(String),
}

/// A query compilation error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// What went wrong.
    pub kind: QueryErrorKind,
    /// Where (line:column), when known.
    pub span: Span,
}

impl QueryError {
    /// Construct an error at `span`.
    pub fn new(kind: QueryErrorKind, span: Span) -> Self {
        QueryError { kind, span }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            QueryErrorKind::Lex(m) => write!(f, "{}: lexical error: {m}", self.span),
            QueryErrorKind::Parse(m) => write!(f, "{}: parse error: {m}", self.span),
            QueryErrorKind::UnboundVariable(v) => {
                write!(f, "{}: unbound variable ${v}", self.span)
            }
            QueryErrorKind::OutsideFragment(m) => {
                write!(
                    f,
                    "{}: outside the supported XQuery fragment: {m}",
                    self.span
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_collapses() {
        assert_eq!(Expr::seq(vec![]), Expr::Empty);
        assert_eq!(Expr::seq(vec![Expr::Empty, Expr::Empty]), Expr::Empty);
        assert_eq!(
            Expr::seq(vec![Expr::StringLit("a".into())]),
            Expr::StringLit("a".into())
        );
        assert!(matches!(
            Expr::seq(vec![
                Expr::StringLit("a".into()),
                Expr::StringLit("b".into())
            ]),
            Expr::Sequence(_)
        ));
    }

    #[test]
    fn role_ids_display_one_based() {
        assert_eq!(RoleId(0).to_string(), "r1");
        assert_eq!(RoleId(6).to_string(), "r7");
    }

    #[test]
    fn path_ends_in_attribute() {
        let mut p = PathExpr::var("x");
        assert!(!p.ends_in_attribute());
        p.steps.push(Step {
            axis: Axis::Attribute,
            test: NodeTest::Name("id".into()),
            pred: None,
        });
        assert!(p.ends_in_attribute());
    }

    #[test]
    fn error_display_contains_position() {
        let e = QueryError::new(
            QueryErrorKind::UnboundVariable("x".into()),
            Span { line: 3, column: 7 },
        );
        assert_eq!(e.to_string(), "3:7: unbound variable $x");
    }
}
