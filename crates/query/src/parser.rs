//! Recursive-descent parser for the GCX XQuery fragment.
//!
//! The grammar is given in DESIGN.md §2. Keywords (`for`, `in`, `where`,
//! `return`, `if`, `then`, `else`, `and`, `or`, `not`, `exists`, aggregate
//! names, `signOff`) are matched contextually — they are valid element and
//! step names elsewhere, as in real XQuery.
//!
//! `signOff(path, rN)` is parsed so that pretty-printed rewritten queries
//! round-trip; user queries normally never contain it.

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};

/// Parse query text into an (un-normalized) expression.
pub fn parse(input: &str) -> Result<Expr, QueryError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let expr = p.parse_seq()?;
    p.expect_eof()?;
    Ok(expr)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.toks.len() - 1);
        &self.toks[i].kind
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.toks[self.pos].kind.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError::new(QueryErrorKind::Parse(msg.into()), self.span())
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), QueryError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {}", self.peek().describe())))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        match self.peek() {
            TokenKind::Name(n) if n == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Name(n) if n == kw)
    }

    fn expect_eof(&self) -> Result<(), QueryError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected {} after query", self.peek().describe())))
        }
    }

    // ---- expressions -------------------------------------------------------

    fn parse_seq(&mut self) -> Result<Expr, QueryError> {
        let mut items = vec![self.parse_single()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            items.push(self.parse_single()?);
        }
        // Preserve explicit sequences even of length 1; Expr::seq collapses.
        Ok(Expr::seq(items))
    }

    fn parse_single(&mut self) -> Result<Expr, QueryError> {
        match self.peek().clone() {
            TokenKind::Name(n) if n == "for" => self.parse_for(),
            TokenKind::Name(n) if n == "if" => self.parse_if(),
            TokenKind::Name(n) if n == "signOff" => self.parse_signoff(),
            TokenKind::Name(n) if AGG_NAMES.contains(&n.as_str()) => self.parse_aggregate(&n),
            TokenKind::TagOpen(name) => self.parse_constructor(&name),
            TokenKind::LParen => {
                self.bump();
                if matches!(self.peek(), TokenKind::RParen) {
                    self.bump();
                    return Ok(Expr::Empty);
                }
                let inner = self.parse_seq()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::Var(_) | TokenKind::Slash | TokenKind::DoubleSlash => {
                Ok(Expr::Path(self.parse_path()?))
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::StringLit(s))
            }
            TokenKind::NumberLit(v) => {
                self.bump();
                Ok(Expr::NumberLit(v))
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }

    fn parse_for(&mut self) -> Result<Expr, QueryError> {
        self.expect_keyword("for")?;
        let TokenKind::Var(name) = self.peek().clone() else {
            return Err(self.err("expected a variable after `for`"));
        };
        self.bump();
        self.expect_keyword("in")?;
        let source = self.parse_path()?;
        let where_clause = if self.at_keyword("where") {
            self.bump();
            Some(self.parse_cond()?)
        } else {
            None
        };
        self.expect_keyword("return")?;
        let body = self.parse_single()?;
        Ok(Expr::For {
            var: Var {
                name,
                id: VarId::UNASSIGNED,
            },
            source,
            where_clause,
            body: Box::new(body),
        })
    }

    fn parse_if(&mut self) -> Result<Expr, QueryError> {
        self.expect_keyword("if")?;
        self.expect(&TokenKind::LParen, "`(` after `if`")?;
        let cond = self.parse_cond()?;
        self.expect(&TokenKind::RParen, "`)` after condition")?;
        self.expect_keyword("then")?;
        let then_branch = self.parse_single()?;
        let else_branch = if self.at_keyword("else") {
            self.bump();
            self.parse_single()?
        } else {
            Expr::Empty
        };
        Ok(Expr::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        })
    }

    fn parse_signoff(&mut self) -> Result<Expr, QueryError> {
        self.expect_keyword("signOff")?;
        self.expect(&TokenKind::LParen, "`(` after `signOff`")?;
        let target = self.parse_path()?;
        self.expect(&TokenKind::Comma, "`,` in signOff")?;
        let role = match self.bump() {
            TokenKind::Name(n) => parse_role_name(&n)
                .ok_or_else(|| self.err(format!("expected a role (rN), found `{n}`")))?,
            other => {
                return Err(self.err(format!("expected a role (rN), found {}", other.describe())))
            }
        };
        self.expect(&TokenKind::RParen, "`)` after signOff")?;
        Ok(Expr::SignOff { target, role })
    }

    fn parse_aggregate(&mut self, name: &str) -> Result<Expr, QueryError> {
        // Aggregates look like `count($x/p)`; a bare name NOT followed by `(`
        // is not valid expression syntax in this fragment anyway.
        let func = match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => unreachable!("checked by caller"),
        };
        self.bump();
        self.expect(&TokenKind::LParen, "`(` after aggregate function")?;
        let arg = self.parse_path()?;
        self.expect(&TokenKind::RParen, "`)` after aggregate argument")?;
        Ok(Expr::Aggregate { func, arg })
    }

    fn parse_constructor(&mut self, name: &str) -> Result<Expr, QueryError> {
        let name = name.to_string();
        self.bump();
        // Literal attributes.
        let mut attrs = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Name(attr_name) => {
                    self.bump();
                    self.expect(&TokenKind::Eq, "`=` after attribute name")?;
                    match self.bump() {
                        TokenKind::StringLit(v) => attrs.push((attr_name, v)),
                        other => {
                            return Err(self.err(format!(
                                "constructor attributes must be string literals, found {}",
                                other.describe()
                            )))
                        }
                    }
                }
                TokenKind::SlashGt => {
                    self.bump();
                    return Ok(Expr::Element {
                        name,
                        attrs,
                        content: Box::new(Expr::Empty),
                    });
                }
                TokenKind::Gt => {
                    self.bump();
                    break;
                }
                other => {
                    return Err(self.err(format!(
                        "expected attribute, `>` or `/>` in constructor, found {}",
                        other.describe()
                    )))
                }
            }
        }
        // Content: `{ expr }` blocks and nested constructors, until `</name>`.
        let mut items = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::TagClose(n) => {
                    if n != name {
                        return Err(self.err(format!("constructor `<{name}>` closed by `</{n}>`")));
                    }
                    self.bump();
                    break;
                }
                TokenKind::LBrace => {
                    self.bump();
                    items.push(self.parse_seq()?);
                    self.expect(&TokenKind::RBrace, "`}`")?;
                }
                TokenKind::TagOpen(n) => {
                    items.push(self.parse_constructor(&n)?);
                }
                TokenKind::Eof => {
                    return Err(self.err(format!("unclosed constructor `<{name}>`")));
                }
                other => {
                    return Err(self.err(format!(
                        "raw text is not allowed in constructor content \
                         (use a string literal in braces), found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(Expr::Element {
            name,
            attrs,
            content: Box::new(Expr::seq(items)),
        })
    }

    // ---- conditions --------------------------------------------------------

    fn parse_cond(&mut self) -> Result<Cond, QueryError> {
        let mut lhs = self.parse_cond_and()?;
        while self.at_keyword("or") {
            self.bump();
            let rhs = self.parse_cond_and()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cond_and(&mut self) -> Result<Cond, QueryError> {
        let mut lhs = self.parse_cond_prim()?;
        while self.at_keyword("and") {
            self.bump();
            let rhs = self.parse_cond_prim()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cond_prim(&mut self) -> Result<Cond, QueryError> {
        match self.peek().clone() {
            TokenKind::Name(n) if n == "not" => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(` after `not`")?;
                let inner = self.parse_cond()?;
                self.expect(&TokenKind::RParen, "`)` after `not(...)`")?;
                Ok(Cond::Not(Box::new(inner)))
            }
            TokenKind::Name(n) if n == "exists" => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(` after `exists`")?;
                let path = self.parse_path()?;
                self.expect(&TokenKind::RParen, "`)` after `exists(...)`")?;
                Ok(Cond::Exists(path))
            }
            TokenKind::Name(n) if n == "true" => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(` after `true`")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(Cond::True)
            }
            TokenKind::Name(n) if n == "false" => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(` after `false`")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(Cond::False)
            }
            TokenKind::Name(n) if STRFN_NAMES.contains(&n.as_str()) => {
                let func = match n.as_str() {
                    "contains" => StrFunc::Contains,
                    "starts-with" => StrFunc::StartsWith,
                    "ends-with" => StrFunc::EndsWith,
                    _ => unreachable!("checked above"),
                };
                self.bump();
                self.expect(&TokenKind::LParen, "`(` after string function")?;
                let haystack = self.parse_operand()?;
                self.expect(&TokenKind::Comma, "`,` between string-function arguments")?;
                let needle = self.parse_operand()?;
                self.expect(&TokenKind::RParen, "`)` after string function")?;
                Ok(Cond::StringFn {
                    func,
                    haystack,
                    needle,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.parse_cond()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            _ => {
                let lhs = self.parse_operand()?;
                let op = match self.bump() {
                    TokenKind::Eq => CmpOp::Eq,
                    TokenKind::Ne => CmpOp::Ne,
                    TokenKind::Lt => CmpOp::Lt,
                    TokenKind::Le => CmpOp::Le,
                    TokenKind::Gt => CmpOp::Gt,
                    TokenKind::Ge => CmpOp::Ge,
                    other => {
                        return Err(self.err(format!(
                            "expected a comparison operator, found {}",
                            other.describe()
                        )))
                    }
                };
                let rhs = self.parse_operand()?;
                Ok(Cond::Compare { op, lhs, rhs })
            }
        }
    }

    fn parse_operand(&mut self) -> Result<Operand, QueryError> {
        match self.peek().clone() {
            TokenKind::Var(_) | TokenKind::Slash | TokenKind::DoubleSlash => {
                Ok(Operand::Path(self.parse_path()?))
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Operand::StringLit(s))
            }
            TokenKind::NumberLit(v) => {
                self.bump();
                Ok(Operand::NumberLit(v))
            }
            other => Err(self.err(format!(
                "expected a path, string or number operand, found {}",
                other.describe()
            ))),
        }
    }

    // ---- paths -------------------------------------------------------------

    fn parse_path(&mut self) -> Result<PathExpr, QueryError> {
        let span = self.span();
        let (root, mut steps) = match self.peek().clone() {
            TokenKind::Var(name) => {
                self.bump();
                (
                    PathRoot::Var(Var {
                        name,
                        id: VarId::UNASSIGNED,
                    }),
                    Vec::new(),
                )
            }
            TokenKind::Slash => {
                self.bump();
                // `/` alone (document node) or `/step...`. A lone `/`
                // directly followed by a context keyword is ambiguous
                // (`for $x in / return ...`, `if (1 <= / and ...)`); like
                // XQuery's leading-lone-slash rule we resolve in favour of
                // the keyword. Paths to elements *named* like keywords must
                // use the explicit axis: `/child::return`.
                let keyword_follows = ["return", "where", "and", "or", "then", "else"]
                    .iter()
                    .any(|kw| self.at_keyword(kw));
                if self.at_step_start() && !keyword_follows {
                    let step = self.parse_step_body(Axis::Child)?;
                    (PathRoot::Root, vec![step])
                } else {
                    (PathRoot::Root, Vec::new())
                }
            }
            TokenKind::DoubleSlash => {
                self.bump();
                if !self.at_step_start() {
                    return Err(self.err("expected a step after `//`"));
                }
                let step = self.parse_step_body(Axis::Descendant)?;
                (PathRoot::Root, vec![step])
            }
            other => return Err(self.err(format!("expected a path, found {}", other.describe()))),
        };
        loop {
            match self.peek() {
                TokenKind::Slash => {
                    self.bump();
                    steps.push(self.parse_step_body(Axis::Child)?);
                }
                TokenKind::DoubleSlash => {
                    self.bump();
                    steps.push(self.parse_step_body(Axis::Descendant)?);
                }
                _ => break,
            }
        }
        Ok(PathExpr { root, steps, span })
    }

    fn at_step_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Name(_) | TokenKind::Star | TokenKind::At
        )
    }

    /// Parse a step body; `default_axis` is Child for `/`, Descendant for `//`.
    fn parse_step_body(&mut self, default_axis: Axis) -> Result<Step, QueryError> {
        let mut axis = default_axis;
        // Explicit axis? `name::`.
        if let TokenKind::Name(n) = self.peek() {
            if matches!(self.peek2(), TokenKind::ColonColon) {
                let explicit = match n.as_str() {
                    "child" => Axis::Child,
                    "descendant" => Axis::Descendant,
                    "descendant-or-self" => Axis::DescendantOrSelf,
                    "self" => Axis::SelfAxis,
                    "attribute" => Axis::Attribute,
                    other => {
                        return Err(self.err(format!("unsupported axis `{other}`")));
                    }
                };
                if default_axis == Axis::Descendant {
                    // `$x//child::a` means descendant-or-self step then child.
                    // We do not support combining the `//` abbreviation with
                    // explicit axes; keep the fragment unambiguous.
                    return Err(self.err("explicit axis not allowed after `//`"));
                }
                axis = explicit;
                self.bump(); // axis name
                self.bump(); // ::
            }
        }
        if matches!(self.peek(), TokenKind::At) {
            if axis != default_axis {
                return Err(self.err("`@` cannot follow an explicit axis"));
            }
            self.bump();
            axis = Axis::Attribute;
        }
        // Node test.
        let test = match self.peek().clone() {
            TokenKind::Star => {
                self.bump();
                NodeTest::Star
            }
            TokenKind::Name(n) if n == "text" && matches!(self.peek2(), TokenKind::LParen) => {
                self.bump();
                self.bump();
                self.expect(&TokenKind::RParen, "`)` after `text(`")?;
                NodeTest::Text
            }
            TokenKind::Name(n) if n == "node" && matches!(self.peek2(), TokenKind::LParen) => {
                self.bump();
                self.bump();
                self.expect(&TokenKind::RParen, "`)` after `node(`")?;
                NodeTest::AnyNode
            }
            TokenKind::Name(n) => {
                self.bump();
                NodeTest::Name(n)
            }
            other => {
                return Err(self.err(format!("expected a node test, found {}", other.describe())))
            }
        };
        // Optional positional predicate.
        let pred = if matches!(self.peek(), TokenKind::LBracket) {
            self.bump();
            let k = match self.bump() {
                TokenKind::NumberLit(v) if v.fract() == 0.0 && v >= 1.0 && v <= u32::MAX as f64 => {
                    v as u32
                }
                other => {
                    return Err(self.err(format!(
                        "expected a positive integer position, found {}",
                        other.describe()
                    )))
                }
            };
            self.expect(&TokenKind::RBracket, "`]`")?;
            Some(Pred::Position(k))
        } else {
            None
        };
        // Attribute steps: no predicates, element-only tests.
        if axis == Axis::Attribute {
            if pred.is_some() {
                return Err(self.err("predicates are not allowed on attribute steps"));
            }
            if matches!(test, NodeTest::Text | NodeTest::AnyNode) {
                return Err(self.err("attribute steps take a name or `*` test"));
            }
        }
        Ok(Step { axis, test, pred })
    }
}

const AGG_NAMES: [&str; 5] = ["count", "sum", "min", "max", "avg"];
const STRFN_NAMES: [&str; 3] = ["contains", "starts-with", "ends-with"];

/// Parse a role name of the form `rN` (1-based in surface syntax).
fn parse_role_name(name: &str) -> Option<RoleId> {
    let digits = name.strip_prefix('r')?;
    let n: u32 = digits.parse().ok()?;
    if n == 0 {
        return None;
    }
    Some(RoleId(n - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(input: &str) -> Expr {
        parse(input).unwrap_or_else(|e| panic!("parse failed: {e}\n{input}"))
    }

    #[test]
    fn parses_paper_running_example() {
        let q = p(r#"
            <r> {
              for $bib in /bib return
                (for $x in $bib/* return
                   if (not(exists($x/price))) then $x else (),
                 for $b in $bib/book return $b/title)
            } </r>
        "#);
        let Expr::Element { name, content, .. } = q else {
            panic!("expected element")
        };
        assert_eq!(name, "r");
        let Expr::For {
            var, source, body, ..
        } = *content
        else {
            panic!("expected for")
        };
        assert_eq!(var.name, "bib");
        assert_eq!(source.root, PathRoot::Root);
        assert_eq!(source.steps, vec![Step::child("bib")]);
        assert!(matches!(*body, Expr::Sequence(_)));
    }

    #[test]
    fn empty_sequence() {
        assert_eq!(p("()"), Expr::Empty);
    }

    #[test]
    fn sequence_flattening_via_seq() {
        let q = p("'a', 'b', 'c'");
        let Expr::Sequence(items) = q else { panic!() };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn where_clause_kept_by_parser() {
        let q = p("for $x in /a where exists($x/b) return $x");
        let Expr::For { where_clause, .. } = q else {
            panic!()
        };
        assert!(where_clause.is_some());
    }

    #[test]
    fn if_without_else_defaults_empty() {
        let q = p("if (true()) then 'x'");
        let Expr::If { else_branch, .. } = q else {
            panic!()
        };
        assert_eq!(*else_branch, Expr::Empty);
    }

    #[test]
    fn nested_constructors_without_braces() {
        let q = p("<a><b/></a>");
        let Expr::Element { content, .. } = q else {
            panic!()
        };
        assert!(matches!(*content, Expr::Element { .. }));
    }

    #[test]
    fn constructor_attributes_literal() {
        let q = p(r#"<a k="v" l="w"/>"#);
        let Expr::Element { attrs, .. } = q else {
            panic!()
        };
        assert_eq!(
            attrs,
            vec![("k".into(), "v".into()), ("l".into(), "w".into())]
        );
    }

    #[test]
    fn computed_attribute_rejected() {
        assert!(parse("<a k={$x}/>").is_err());
    }

    #[test]
    fn raw_text_in_constructor_rejected() {
        let err = parse("<a>hello</a>").unwrap_err();
        assert!(err.to_string().contains("raw text"), "{err}");
    }

    #[test]
    fn mismatched_constructor_close_rejected() {
        assert!(parse("<a>{ 'x' }</b>").is_err());
    }

    #[test]
    fn descendant_shortcut() {
        let q = p("//item");
        let Expr::Path(pe) = q else { panic!() };
        assert_eq!(pe.steps[0].axis, Axis::Descendant);
        assert_eq!(pe.steps[0].test, NodeTest::Name("item".into()));
    }

    #[test]
    fn explicit_axes() {
        let q = p("$x/descendant-or-self::node()");
        let Expr::Path(pe) = q else { panic!() };
        assert_eq!(pe.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(pe.steps[0].test, NodeTest::AnyNode);
    }

    #[test]
    fn attribute_step() {
        let q = p("$p/@id");
        let Expr::Path(pe) = q else { panic!() };
        assert_eq!(pe.steps[0].axis, Axis::Attribute);
        assert_eq!(pe.steps[0].test, NodeTest::Name("id".into()));
        assert!(pe.ends_in_attribute());
    }

    #[test]
    fn positional_predicate() {
        let q = p("$x/price[1]");
        let Expr::Path(pe) = q else { panic!() };
        assert_eq!(pe.steps[0].pred, Some(Pred::Position(1)));
    }

    #[test]
    fn zero_position_rejected() {
        assert!(parse("$x/price[0]").is_err());
    }

    #[test]
    fn conditions_parse_with_precedence() {
        let q = p("if (exists($x/a) and not(exists($x/b)) or true()) then 'y'");
        let Expr::If { cond, .. } = q else { panic!() };
        // `or` at top, `and` below.
        assert!(matches!(cond, Cond::Or(_, _)));
    }

    #[test]
    fn comparisons_all_ops() {
        for (src, op) in [
            ("$a/x = 1", CmpOp::Eq),
            ("$a/x != 1", CmpOp::Ne),
            ("$a/x < 1", CmpOp::Lt),
            ("$a/x <= 1", CmpOp::Le),
            ("$a/x > 1", CmpOp::Gt),
            ("$a/x >= 1", CmpOp::Ge),
        ] {
            let q = p(&format!("if ({src}) then 'y'"));
            let Expr::If {
                cond: Cond::Compare { op: parsed, .. },
                ..
            } = q
            else {
                panic!("{src}")
            };
            assert_eq!(parsed, op, "{src}");
        }
    }

    #[test]
    fn join_comparison_between_paths() {
        let q = p("if ($t/buyer/@person = $p/@id) then $t");
        let Expr::If {
            cond: Cond::Compare { lhs, rhs, .. },
            ..
        } = q
        else {
            panic!()
        };
        assert!(matches!(lhs, Operand::Path(_)));
        assert!(matches!(rhs, Operand::Path(_)));
    }

    #[test]
    fn aggregates_parse() {
        let q = p("count($x/item)");
        assert!(matches!(
            q,
            Expr::Aggregate {
                func: AggFunc::Count,
                ..
            }
        ));
        let q = p("sum(/site/open_auctions/open_auction/initial)");
        assert!(matches!(
            q,
            Expr::Aggregate {
                func: AggFunc::Sum,
                ..
            }
        ));
    }

    #[test]
    fn signoff_round_trip_tokens() {
        let q = p("signOff($x/price[1], r4)");
        let Expr::SignOff { target, role } = q else {
            panic!()
        };
        assert_eq!(role, RoleId(3));
        assert_eq!(target.steps.len(), 1);
    }

    #[test]
    fn root_only_path() {
        let q = p("/");
        let Expr::Path(pe) = q else { panic!() };
        assert_eq!(pe.root, PathRoot::Root);
        assert!(pe.steps.is_empty());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("$x $y").is_err());
    }

    #[test]
    fn unclosed_constructor_rejected() {
        assert!(parse("<a>{ 'x' }").is_err());
    }

    #[test]
    fn keywords_usable_as_step_names() {
        let q = p("$x/return/item");
        let Expr::Path(pe) = q else { panic!() };
        assert_eq!(pe.steps[0].test, NodeTest::Name("return".into()));
    }

    #[test]
    fn error_positions_are_meaningful() {
        let err = parse("for $x in\n  !").unwrap_err();
        assert_eq!(err.span.line, 2);
    }
}
