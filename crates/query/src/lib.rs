#![deny(unsafe_code)]
//! # gcx-query — frontend for the GCX XQuery fragment
//!
//! GCX evaluates the *composition-free* fragment of XQuery (Koch, TODS 2006)
//! with single-step-decomposable for-loops, conditions and joins — the
//! fragment of the VLDB'07 GCX demo paper. This crate turns query text into
//! a validated AST:
//!
//! * [`lex`]: hand-written lexer with source positions and XQuery comments;
//! * [`parse`]: recursive-descent parser producing [`ast::Expr`];
//! * [`normalize`]: desugars `where` into `if`, checks variable scoping and
//!   the fragment restrictions, and resolves each path to the variable it is
//!   rooted at;
//! * [`ast`]: the expression/condition/path types shared by the static
//!   analyzer (`gcx-projection`), the streaming engine (`gcx-core`) and the
//!   DOM baseline (`gcx-dom`);
//! * a pretty-printer (`Display` impls) able to print rewritten queries with
//!   `signOff` statements exactly in the style of the paper.
//!
//! ```
//! let q = gcx_query::compile(r#"
//!     <r> { for $bib in /bib return
//!             for $b in $bib/book return $b/title } </r>
//! "#).unwrap();
//! assert!(matches!(q.root, gcx_query::ast::Expr::Element { .. }));
//! ```

pub mod ast;
mod lexer;
mod normalize;
mod parser;
mod pretty;

pub use ast::{Query, QueryError, QueryErrorKind};
pub use lexer::{lex, Token as QueryToken, TokenKind};
pub use normalize::normalize;
pub use parser::parse;

/// Parse and normalize a query in one step: text in, validated [`Query`] out.
pub fn compile(input: &str) -> Result<Query, QueryError> {
    let expr = parse(input)?;
    normalize(expr)
}
