//! Hand-written lexer for the GCX XQuery fragment.
//!
//! Element constructors make XQuery lexing context-sensitive. The fragment
//! sidesteps the worst of it: constructor content must be brace-enclosed
//! expressions (`<r> { ... } </r>`), never raw text, so a single lexical
//! mode suffices. The lexer resolves `<` adjacency instead: `<name` becomes
//! [`TokenKind::TagOpen`], `</name>` becomes [`TokenKind::TagClose`], and a
//! free-standing `<` is the comparison operator.

use crate::ast::{QueryError, QueryErrorKind, Span};

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// Token kinds. Keywords are delivered as [`TokenKind::Name`] and matched
/// contextually by the parser (XQuery keywords are not reserved).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare name (identifier, keyword, axis name, element name).
    Name(String),
    /// `$name`.
    Var(String),
    /// String literal (both quote styles), escapes resolved.
    StringLit(String),
    /// Numeric literal.
    NumberLit(f64),
    /// `<name` — element constructor start.
    TagOpen(String),
    /// `</name>` — element constructor end (the `>` is consumed).
    TagClose(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `@`
    At,
    /// `*`
    Star,
    /// `::`
    ColonColon,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<` (comparison)
    Lt,
    /// `<=`
    Le,
    /// `>` (comparison or constructor close; parser decides)
    Gt,
    /// `>=`
    Ge,
    /// `/>` — self-closing constructor
    SlashGt,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Name(n) => format!("`{n}`"),
            TokenKind::Var(v) => format!("`${v}`"),
            TokenKind::StringLit(_) => "string literal".into(),
            TokenKind::NumberLit(n) => format!("number `{n}`"),
            TokenKind::TagOpen(n) => format!("`<{n}`"),
            TokenKind::TagClose(n) => format!("`</{n}>`"),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::DoubleSlash => "`//`".into(),
            TokenKind::At => "`@`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::ColonColon => "`::`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::SlashGt => "`/>`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.') || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn span(&self) -> Span {
        Span {
            line: self.line,
            column: self.col,
        }
    }

    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError::new(QueryErrorKind::Lex(msg.into()), self.span())
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Skip whitespace and (nested) `(: ... :)` comments.
    fn skip_trivia(&mut self) -> Result<(), QueryError> {
        loop {
            while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
                self.bump();
            }
            if self.peek() == Some(b'(') && self.peek2() == Some(b':') {
                let start = self.span();
                self.bump();
                self.bump();
                let mut depth = 1;
                while depth > 0 {
                    match (self.peek(), self.peek2()) {
                        (Some(b'('), Some(b':')) => {
                            self.bump();
                            self.bump();
                            depth += 1;
                        }
                        (Some(b':'), Some(b')')) => {
                            self.bump();
                            self.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            self.bump();
                        }
                        (None, _) => {
                            return Err(QueryError::new(
                                QueryErrorKind::Lex("unterminated comment".into()),
                                start,
                            ))
                        }
                    }
                }
                continue;
            }
            return Ok(());
        }
    }

    fn lex_name(&mut self) -> String {
        let start = self.i;
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.i]).into_owned()
    }

    fn lex_string(&mut self, quote: u8) -> Result<String, QueryError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b) if b == quote => {
                    // XQuery escapes quotes by doubling them.
                    if self.peek() == Some(quote) {
                        self.bump();
                        out.push(quote as char);
                    } else {
                        return Ok(out);
                    }
                }
                Some(b) => out.push(b as char),
            }
        }
    }

    fn lex_number(&mut self) -> Result<f64, QueryError> {
        let start = self.i;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b) if b.is_ascii_digit()) {
            self.bump();
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).unwrap();
        text.parse::<f64>()
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn next_token(&mut self) -> Result<Token, QueryError> {
        self.skip_trivia()?;
        let span = self.span();
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span,
            });
        };
        let kind = match b {
            b'$' => {
                self.bump();
                if !matches!(self.peek(), Some(c) if is_name_start(c)) {
                    return Err(self.err("expected variable name after `$`"));
                }
                TokenKind::Var(self.lex_name())
            }
            b'"' | b'\'' => {
                self.bump();
                TokenKind::StringLit(self.lex_string(b)?)
            }
            b'0'..=b'9' => TokenKind::NumberLit(self.lex_number()?),
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'@' => {
                self.bump();
                TokenKind::At
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b':') {
                    self.bump();
                    TokenKind::ColonColon
                } else {
                    return Err(self.err("stray `:` (expected `::`)"));
                }
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ne
                } else {
                    return Err(self.err("stray `!` (expected `!=`)"));
                }
            }
            b'/' => {
                self.bump();
                match self.peek() {
                    Some(b'/') => {
                        self.bump();
                        TokenKind::DoubleSlash
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::SlashGt
                    }
                    _ => TokenKind::Slash,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some(b'/') => {
                        self.bump();
                        if !matches!(self.peek(), Some(c) if is_name_start(c)) {
                            return Err(self.err("expected element name after `</`"));
                        }
                        let name = self.lex_name();
                        self.skip_trivia()?;
                        if self.peek() != Some(b'>') {
                            return Err(self.err(format!("expected `>` to close `</{name}`")));
                        }
                        self.bump();
                        TokenKind::TagClose(name)
                    }
                    Some(c) if is_name_start(c) => TokenKind::TagOpen(self.lex_name()),
                    _ => TokenKind::Lt,
                }
            }
            c if is_name_start(c) => TokenKind::Name(self.lex_name()),
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        };
        Ok(Token { kind, span })
    }
}

/// Tokenize a whole query. The final token is always [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let mut lx = Lexer {
        src: input.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let tok = lx.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        out.push(tok);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_for_loop() {
        use TokenKind::*;
        assert_eq!(
            kinds("for $x in /bib return $x"),
            vec![
                Name("for".into()),
                Var("x".into()),
                Name("in".into()),
                Slash,
                Name("bib".into()),
                Name("return".into()),
                Var("x".into()),
                Eof
            ]
        );
    }

    #[test]
    fn tag_tokens_vs_comparison() {
        use TokenKind::*;
        assert_eq!(
            kinds("<r> { $x } </r>"),
            vec![
                TagOpen("r".into()),
                Gt,
                LBrace,
                Var("x".into()),
                RBrace,
                TagClose("r".into()),
                Eof
            ]
        );
        assert_eq!(
            kinds("$a < 5"),
            vec![Var("a".into()), Lt, NumberLit(5.0), Eof]
        );
    }

    #[test]
    fn self_closing_constructor() {
        use TokenKind::*;
        assert_eq!(kinds("<a/>"), vec![TagOpen("a".into()), SlashGt, Eof]);
    }

    #[test]
    fn double_slash_and_axes() {
        use TokenKind::*;
        assert_eq!(
            kinds("$x//title/descendant-or-self::node()"),
            vec![
                Var("x".into()),
                DoubleSlash,
                Name("title".into()),
                Slash,
                Name("descendant-or-self".into()),
                ColonColon,
                Name("node".into()),
                LParen,
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn string_literals_both_quotes() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#""ab" 'cd'"#),
            vec![StringLit("ab".into()), StringLit("cd".into()), Eof]
        );
    }

    #[test]
    fn doubled_quote_escape() {
        use TokenKind::*;
        assert_eq!(kinds(r#""a""b""#), vec![StringLit("a\"b".into()), Eof]);
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("42 3.25"),
            vec![NumberLit(42.0), NumberLit(3.25), Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(kinds("= != <= >= > "), vec![Eq, Ne, Le, Ge, Gt, Eof]);
    }

    #[test]
    fn nested_comments_skipped() {
        use TokenKind::*;
        assert_eq!(kinds("(: a (: b :) c :) $x"), vec![Var("x".into()), Eof]);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(: oops").is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn predicate_brackets() {
        use TokenKind::*;
        assert_eq!(
            kinds("$x/price[1]"),
            vec![
                Var("x".into()),
                Slash,
                Name("price".into()),
                LBracket,
                NumberLit(1.0),
                RBracket,
                Eof
            ]
        );
    }

    #[test]
    fn attribute_axis() {
        use TokenKind::*;
        assert_eq!(
            kinds("$p/@id"),
            vec![Var("p".into()), Slash, At, Name("id".into()), Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("for\n  $x").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, column: 1 });
        assert_eq!(toks[1].span, Span { line: 2, column: 3 });
    }

    #[test]
    fn stray_chars_rejected() {
        assert!(lex("#").is_err());
        assert!(lex("$x ! y").is_err());
        assert!(lex("a : b").is_err());
    }
}
