//! Pretty-printing (`Display`) for the AST.
//!
//! The printer produces text in the style of the paper's rewritten running
//! example: indented `for`/`return` chains, parenthesized sequences, and
//! `signOff($x/path, rN)` statements. Output of the *parser-level* constructs
//! round-trips through [`crate::parse`] (checked by tests); `signOff` prints
//! in the exact surface form the parser accepts, so even rewritten queries
//! reparse.

use crate::ast::*;
use std::fmt;

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "child"),
            Axis::Descendant => write!(f, "descendant"),
            Axis::DescendantOrSelf => write!(f, "descendant-or-self"),
            Axis::SelfAxis => write!(f, "self"),
            Axis::Attribute => write!(f, "attribute"),
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Star => write!(f, "*"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::AnyNode => write!(f, "node()"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Child => write!(f, "{}", self.test)?,
            Axis::Attribute => write!(f, "@{}", self.test)?,
            axis => write!(f, "{axis}::{}", self.test)?,
        }
        if let Some(Pred::Position(k)) = self.pred {
            write!(f, "[{k}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.root {
            PathRoot::Root => {
                if self.steps.is_empty() {
                    return write!(f, "/");
                }
            }
            PathRoot::Var(v) => write!(f, "${}", v.name)?,
        }
        for step in &self.steps {
            write!(f, "/{step}")?;
        }
        Ok(())
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Path(p) => write!(f, "{p}"),
            Operand::StringLit(s) => write!(f, "\"{}\"", s.replace('"', "\"\"")),
            Operand::NumberLit(v) => write!(f, "{}", fmt_number(*v)),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true()"),
            Cond::False => write!(f, "false()"),
            Cond::Exists(p) => write!(f, "exists({p})"),
            Cond::Not(c) => write!(f, "not({c})"),
            Cond::And(a, b) => {
                fmt_cond_operand(a, f)?;
                write!(f, " and ")?;
                fmt_cond_operand(b, f)
            }
            Cond::Or(a, b) => {
                fmt_cond_operand(a, f)?;
                write!(f, " or ")?;
                fmt_cond_operand(b, f)
            }
            Cond::Compare { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Cond::StringFn {
                func,
                haystack,
                needle,
            } => {
                write!(f, "{}({haystack}, {needle})", func.name())
            }
        }
    }
}

/// Parenthesize nested and/or so precedence survives reparsing.
fn fmt_cond_operand(c: &Cond, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if matches!(c, Cond::And(_, _) | Cond::Or(_, _)) {
        write!(f, "({c})")
    } else {
        write!(f, "{c}")
    }
}

/// Print a number the way XQuery canonicalizes integers (no trailing `.0`).
pub fn fmt_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut p = Printer {
            out: String::new(),
            indent: 0,
        };
        p.expr(self);
        write!(f, "{}", p.out)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Empty => self.out.push_str("()"),
            Expr::Sequence(items) => {
                self.out.push('(');
                self.indent += 1;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push(',');
                    }
                    self.nl();
                    self.expr(item);
                }
                self.indent -= 1;
                self.nl();
                self.out.push(')');
            }
            Expr::Element {
                name,
                attrs,
                content,
            } => {
                self.out.push('<');
                self.out.push_str(name);
                for (k, v) in attrs {
                    self.out.push_str(&format!(" {k}=\"{v}\""));
                }
                if matches!(content.as_ref(), Expr::Empty) {
                    self.out.push_str("/>");
                } else {
                    self.out.push_str("> {");
                    self.indent += 1;
                    self.nl();
                    self.expr(content);
                    self.indent -= 1;
                    self.nl();
                    self.out.push_str(&format!("}} </{name}>"));
                }
            }
            Expr::For {
                var,
                source,
                where_clause,
                body,
            } => {
                self.out.push_str(&format!("for ${} in {source}", var.name));
                if let Some(c) = where_clause {
                    self.out.push_str(&format!(" where {c}"));
                }
                self.out.push_str(" return");
                self.indent += 1;
                self.nl();
                self.expr(body);
                self.indent -= 1;
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.out.push_str(&format!("if ({cond}) then "));
                let has_else = !matches!(else_branch.as_ref(), Expr::Empty);
                // Dangling else: a then-branch that is (or can end in) an
                // else-less `if` would capture our `else` on reparse.
                let needs_parens =
                    has_else && matches!(then_branch.as_ref(), Expr::If { .. } | Expr::For { .. });
                if needs_parens {
                    self.out.push('(');
                    self.expr(then_branch);
                    self.out.push(')');
                } else {
                    self.expr(then_branch);
                }
                if has_else {
                    self.out.push_str(" else ");
                    self.expr(else_branch);
                }
            }
            Expr::Path(p) => self.out.push_str(&p.to_string()),
            Expr::StringLit(s) => {
                self.out
                    .push_str(&format!("\"{}\"", s.replace('"', "\"\"")));
            }
            Expr::NumberLit(v) => self.out.push_str(&fmt_number(*v)),
            Expr::Aggregate { func, arg } => {
                self.out.push_str(&format!("{}({arg})", func.name()));
            }
            Expr::SignOff { target, role } => {
                self.out.push_str(&format!("signOff({target}, {role})"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Parse → print → parse must be a fixpoint (ASTs equal).
    fn round_trip(src: &str) {
        let a = parse(src).unwrap();
        let printed = a.to_string();
        let b = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(a, b, "print/reparse mismatch:\n{printed}");
    }

    #[test]
    fn round_trip_paper_example() {
        round_trip(
            r#"<r> {
              for $bib in /bib return
                (for $x in $bib/* return
                   if (not(exists($x/price))) then $x else (),
                 for $b in $bib/book return $b/title)
            } </r>"#,
        );
    }

    #[test]
    fn round_trip_rewritten_query_with_signoffs() {
        round_trip(
            r#"<r> {
              for $bib in /bib return
                (for $x in $bib/* return
                   (if (not(exists($x/price))) then $x else (),
                    signOff($x, r3),
                    signOff($x/price[1], r4),
                    signOff($x/descendant-or-self::node(), r5)),
                 for $b in $bib/book return
                   ($b/title,
                    signOff($b, r6),
                    signOff($b/title/descendant-or-self::node(), r7)),
                 signOff($bib, r2))
            } </r>"#,
        );
    }

    #[test]
    fn round_trip_conditions() {
        round_trip("if (exists($x/a) and (not(exists($x/b)) or $x/c = 3)) then 'y' else 'n'");
        round_trip("if ($a/v <= 2.5) then $a");
        round_trip("if ($t/buyer/@person = $p/@id) then $t");
    }

    #[test]
    fn round_trip_aggregates_and_literals() {
        round_trip("count(/site/people/person), 'lit', 42");
    }

    #[test]
    fn round_trip_constructors() {
        round_trip(r#"<out k="v"> { <inner/>, $x/y } </out>"#);
    }

    #[test]
    fn paths_print_compactly() {
        let e = parse("$bib/book/title/descendant-or-self::node()").unwrap();
        assert_eq!(e.to_string(), "$bib/book/title/descendant-or-self::node()");
        let e = parse("/bib/*/price[1]").unwrap();
        assert_eq!(e.to_string(), "/bib/*/price[1]");
        let e = parse("/").unwrap();
        assert_eq!(e.to_string(), "/");
        let e = parse("$p/@id").unwrap();
        assert_eq!(e.to_string(), "$p/@id");
    }

    #[test]
    fn numbers_print_canonically() {
        assert_eq!(fmt_number(1.0), "1");
        assert_eq!(fmt_number(2.5), "2.5");
        assert_eq!(fmt_number(-3.0), "-3");
    }

    #[test]
    fn descendant_shortcut_prints_as_explicit_axis() {
        let e = parse("//item").unwrap();
        assert_eq!(e.to_string(), "/descendant::item");
        round_trip("//item");
    }
}
