//! Property tests for the query frontend: randomly generated ASTs must
//! survive a print→parse round trip unchanged, and the parser must never
//! panic on arbitrary input strings.

#![cfg(feature = "proptest")]
// Gated: requires the external `proptest` crate, unavailable in offline
// builds (see crates/shims/README.md).
use gcx_query::ast::*;
use proptest::prelude::*;

// ---- AST generation ----------------------------------------------------------

fn name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("bib".to_string()),
        Just("book".to_string()),
        Just("price".to_string()),
        Just("item-x".to_string()),
        Just("_u".to_string()),
    ]
}

fn step() -> impl Strategy<Value = Step> {
    let test = prop_oneof![
        name().prop_map(NodeTest::Name),
        Just(NodeTest::Star),
        Just(NodeTest::Text),
        Just(NodeTest::AnyNode),
    ];
    let axis = prop_oneof![
        4 => Just(Axis::Child),
        2 => Just(Axis::Descendant),
        1 => Just(Axis::DescendantOrSelf),
        1 => Just(Axis::SelfAxis),
    ];
    (axis, test, proptest::option::of(1u32..5)).prop_map(|(axis, test, pred)| {
        // The grammar allows predicates only on child steps with name/star
        // tests in sensible positions; generate conservatively.
        let pred = match (axis, &test) {
            (Axis::Child, NodeTest::Name(_) | NodeTest::Star) => pred.map(Pred::Position),
            _ => None,
        };
        Step { axis, test, pred }
    })
}

fn attr_step() -> impl Strategy<Value = Step> {
    name().prop_map(|n| Step {
        axis: Axis::Attribute,
        test: NodeTest::Name(n),
        pred: None,
    })
}

fn path(var_names: Vec<String>) -> impl Strategy<Value = PathExpr> {
    let root = if var_names.is_empty() {
        Just(PathRoot::Root).boxed()
    } else {
        prop_oneof![
            Just(PathRoot::Root),
            proptest::sample::select(var_names).prop_map(|n| PathRoot::Var(Var {
                name: n,
                id: VarId::UNASSIGNED
            })),
        ]
        .boxed()
    };
    (
        root,
        prop::collection::vec(step(), 0..4),
        proptest::option::of(attr_step()),
    )
        .prop_map(|(root, mut steps, attr)| {
            if let Some(a) = attr {
                steps.push(a);
            }
            PathExpr {
                root,
                steps,
                span: Span::default(),
            }
        })
}

fn operand(vars: Vec<String>) -> impl Strategy<Value = Operand> {
    prop_oneof![
        path(vars).prop_map(Operand::Path),
        Just(Operand::StringLit("lit".into())),
        Just(Operand::NumberLit(3.5)),
        Just(Operand::NumberLit(7.0)),
    ]
}

fn cond(vars: Vec<String>, depth: u32) -> BoxedStrategy<Cond> {
    let leaf = prop_oneof![
        Just(Cond::True),
        Just(Cond::False),
        path(vars.clone()).prop_map(Cond::Exists),
        (operand(vars.clone()), operand(vars.clone())).prop_map(|(lhs, rhs)| Cond::Compare {
            op: CmpOp::Le,
            lhs,
            rhs
        }),
        (operand(vars.clone()), operand(vars.clone())).prop_map(|(lhs, rhs)| Cond::Compare {
            op: CmpOp::Ne,
            lhs,
            rhs
        }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = cond(vars, depth - 1);
    prop_oneof![
        3 => leaf,
        1 => inner.clone().prop_map(|c| Cond::Not(Box::new(c))),
        1 => (inner.clone(), inner.clone())
            .prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
        1 => (inner.clone(), inner).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
    ]
    .boxed()
}

fn expr(vars: Vec<String>, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(Expr::Empty),
        Just(Expr::StringLit("text".into())),
        Just(Expr::NumberLit(42.0)),
        path(vars.clone()).prop_map(Expr::Path),
        path(vars.clone()).prop_map(|p| Expr::Aggregate {
            func: AggFunc::Count,
            arg: p
        }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let vars2 = vars.clone();
    let vars3 = vars.clone();
    prop_oneof![
        3 => leaf,
        2 => (path(vars.clone()), name()).prop_flat_map(move |(source, fresh)| {
            let mut inner_vars = vars2.clone();
            // Source paths never bind attributes in generated queries.
            let source = PathExpr {
                root: source.root,
                steps: source.steps.into_iter().filter(|s| s.axis != Axis::Attribute).collect(),
                span: Span::default(),
            };
            inner_vars.push(fresh.clone());
            expr(inner_vars, depth - 1).prop_map(move |body| Expr::For {
                var: Var { name: fresh.clone(), id: VarId::UNASSIGNED },
                source: source.clone(),
                where_clause: None,
                body: Box::new(body),
            })
        }),
        2 => (cond(vars3.clone(), 1), expr(vars3.clone(), depth - 1), expr(vars3, depth - 1))
            .prop_map(|(c, t, e)| Expr::If {
                cond: c,
                then_branch: Box::new(t),
                else_branch: Box::new(e),
            }),
        1 => (name(), expr(vars.clone(), depth - 1)).prop_map(|(n, content)| Expr::Element {
            name: n.replace('-', "_"),
            attrs: vec![("k".into(), "v".into())],
            content: Box::new(content),
        }),
        // `Expr::seq` is the canonical constructor (it collapses empties
        // and singletons the way the parser does), so round-trips compare
        // canonical forms.
        1 => prop::collection::vec(expr(vars, depth - 1), 2..4).prop_map(Expr::seq),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn printed_ast_reparses_identically(e in expr(vec![], 3)) {
        let printed = e.to_string();
        let reparsed = gcx_query::parse(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        prop_assert_eq!(e, reparsed, "\nprinted:\n{}", printed);
    }

    #[test]
    fn parser_never_panics_on_garbage(input in "[ -~]{0,60}") {
        let _ = gcx_query::parse(&input); // error or success, never panic
    }

    #[test]
    fn lexer_never_panics_on_unicode(input in "\\PC{0,40}") {
        let _ = gcx_query::lex(&input);
    }

    #[test]
    fn normalize_never_panics_after_parse(input in "[ -~]{0,60}") {
        if let Ok(e) = gcx_query::parse(&input) {
            let _ = gcx_query::normalize(e);
        }
    }
}
