//! Deterministic XMark-like document generator.
//!
//! Entity ratios follow the original XMark scaling (at factor 1.0 XMark
//! produces ~25500 persons, ~21750 items, ~12000 open and ~9750 closed
//! auctions in a ~113MB document); we derive counts from the byte target
//! with calibrated per-entity sizes, then emit the six sections in XMark's
//! order. All cross-references (`buyer/@person`, `itemref/@item`,
//! `incategory/@category`) point to existing ids so join queries have real
//! join partners.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Write};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Approximate size of the generated document in bytes.
    pub target_bytes: u64,
    /// RNG seed: equal seeds produce byte-identical documents.
    pub seed: u64,
    /// Emit a `<!DOCTYPE site [...]>` declaration carrying the trimmed
    /// XMark DTD ([`gcx_schema::XMARK_DTD`]) as an internal subset, so a
    /// schema-aware consumer can adopt it straight from the stream.
    pub doctype: bool,
}

impl XmarkConfig {
    /// Config for a document of roughly `target_bytes` bytes.
    pub fn sized(target_bytes: u64) -> XmarkConfig {
        XmarkConfig {
            target_bytes,
            seed: 0x6C_78_67,
            doctype: false,
        }
    }

    /// [`XmarkConfig::sized`] with the DOCTYPE declaration turned on.
    pub fn with_doctype(mut self) -> XmarkConfig {
        self.doctype = true;
        self
    }

    /// Entity counts derived from the byte target.
    pub fn counts(&self) -> SectionCounts {
        // Calibrated average on-the-wire entity sizes (bytes).
        const ITEM: u64 = 500;
        const PERSON: u64 = 430;
        const OPEN: u64 = 480;
        const CLOSED: u64 = 420;
        let t = self.target_bytes.max(4096);
        // Weights mirror XMark's entity ratios: 21750 items : 25500 persons
        // : 12000 open : 9750 closed.
        let unit = (t as f64)
            / (21750.0 * ITEM as f64
                + 25500.0 * PERSON as f64
                + 12000.0 * OPEN as f64
                + 9750.0 * CLOSED as f64);
        let items = ((21750.0 * unit) as u64).max(6);
        SectionCounts {
            items,
            categories: (items / 22).max(3),
            persons: ((25500.0 * unit) as u64).max(4),
            open_auctions: ((12000.0 * unit) as u64).max(2),
            closed_auctions: ((9750.0 * unit) as u64).max(2),
        }
    }
}

/// How many of each entity a config generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionCounts {
    /// Items, split round-robin over the six continents.
    pub items: u64,
    /// Categories (and catgraph edges).
    pub categories: u64,
    /// Persons.
    pub persons: u64,
    /// Open auctions.
    pub open_auctions: u64,
    /// Closed auctions.
    pub closed_auctions: u64,
}

const WORDS: &[&str] = &[
    "great",
    "enemies",
    "gold",
    "destruction",
    "fiery",
    "gentle",
    "shadow",
    "duteous",
    "abuse",
    "mutual",
    "hearted",
    "house",
    "within",
    "merit",
    "raise",
    "preventions",
    "whisper",
    "heaven",
    "springs",
    "shore",
    "forebode",
    "embrace",
    "painting",
    "commit",
    "torment",
    "sorrow",
    "unfolds",
    "honour",
    "itself",
    "summer",
    "juliet",
    "romeo",
    "wherefore",
    "quarrel",
    "valiant",
    "stream",
    "xquery",
    "buffer",
    "purge",
    "garbage",
    "project",
    "token",
    "node",
    "role",
];

const FIRST_NAMES: &[&str] = &[
    "Adena", "Basil", "Chiyo", "Dario", "Edna", "Farid", "Goro", "Hana", "Imre", "Jaska", "Kenji",
    "Lena", "Mehmet", "Nadia", "Omar", "Priya", "Quentin", "Rosa", "Sven", "Tomo", "Uta", "Vito",
];

const LAST_NAMES: &[&str] = &[
    "Morrison",
    "Okafor",
    "Petrov",
    "Quispe",
    "Rahman",
    "Suzuki",
    "Tanaka",
    "Ueda",
    "Varga",
    "Weber",
    "Xenakis",
    "Yamada",
    "Zhou",
    "Abadi",
    "Boncz",
    "Codd",
    "Dittrich",
    "Eisenberg",
];

const CONTINENTS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

const CITIES: &[&str] = &[
    "Tampa", "Kyoto", "Perth", "Bremen", "Quito", "Lagos", "Mumbai", "Oslo", "Lyon", "Adelaide",
];

const EDUCATIONS: &[&str] = &["High School", "College", "Graduate School", "Other"];

/// A tracked writer so the generator knows how many bytes it emitted.
struct CountingWriter<W> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Generate an XMark-like document, returning the byte count written.
pub fn generate<W: Write>(cfg: &XmarkConfig, sink: W) -> io::Result<u64> {
    let counts = cfg.counts();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = CountingWriter {
        inner: sink,
        written: 0,
    };
    let g = Gen { counts };

    write!(w, "<?xml version=\"1.0\" standalone=\"yes\"?>")?;
    if cfg.doctype {
        write!(w, "<!DOCTYPE site [\n{}]>", gcx_schema::XMARK_DTD)?;
    }
    write!(w, "<site>")?;
    g.regions(&mut w, &mut rng)?;
    g.categories(&mut w, &mut rng)?;
    g.catgraph(&mut w, &mut rng)?;
    g.people(&mut w, &mut rng)?;
    g.open_auctions(&mut w, &mut rng)?;
    g.closed_auctions(&mut w, &mut rng)?;
    write!(w, "</site>")?;
    w.flush()?;
    Ok(w.written)
}

/// Generate into a string (small documents, tests and examples).
pub fn generate_string(cfg: &XmarkConfig) -> String {
    let mut buf = Vec::new();
    generate(cfg, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("generator emits UTF-8")
}

struct Gen {
    counts: SectionCounts,
}

fn words(rng: &mut StdRng, n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

fn person_name(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
    )
}

impl Gen {
    fn regions<W: Write>(&self, w: &mut W, rng: &mut StdRng) -> io::Result<()> {
        write!(w, "<regions>")?;
        let per = self.counts.items / 6;
        let extra = (self.counts.items % 6) as usize;
        let mut next_item = 0u64;
        for (ci, continent) in CONTINENTS.iter().enumerate() {
            let n = per + u64::from(ci < extra);
            write!(w, "<{continent}>")?;
            for _ in 0..n {
                self.item(w, rng, next_item)?;
                next_item += 1;
            }
            write!(w, "</{continent}>")?;
        }
        write!(w, "</regions>")
    }

    fn item<W: Write>(&self, w: &mut W, rng: &mut StdRng, id: u64) -> io::Result<()> {
        write!(w, "<item id=\"item{id}\">")?;
        write!(
            w,
            "<location>{}</location>",
            CITIES[rng.gen_range(0..CITIES.len())]
        )?;
        write!(w, "<quantity>{}</quantity>", rng.gen_range(1..5))?;
        write!(w, "<name>{}</name>", words(rng, 2))?;
        write!(w, "<payment>Creditcard</payment>")?;
        let desc_len = rng.gen_range(8..25);
        write!(
            w,
            "<description><text>{}</text></description>",
            words(rng, desc_len)
        )?;
        write!(w, "<shipping>Will ship internationally</shipping>")?;
        let cats = rng.gen_range(1..3);
        for _ in 0..cats {
            write!(
                w,
                "<incategory category=\"category{}\"/>",
                rng.gen_range(0..self.counts.categories)
            )?;
        }
        write!(w, "<mailbox></mailbox>")?;
        write!(w, "</item>")
    }

    fn categories<W: Write>(&self, w: &mut W, rng: &mut StdRng) -> io::Result<()> {
        write!(w, "<categories>")?;
        for id in 0..self.counts.categories {
            write!(w, "<category id=\"category{id}\">")?;
            write!(w, "<name>{}</name>", words(rng, 2))?;
            write!(
                w,
                "<description><text>{}</text></description>",
                words(rng, 6)
            )?;
            write!(w, "</category>")?;
        }
        write!(w, "</categories>")
    }

    fn catgraph<W: Write>(&self, w: &mut W, rng: &mut StdRng) -> io::Result<()> {
        write!(w, "<catgraph>")?;
        for _ in 0..self.counts.categories {
            write!(
                w,
                "<edge from=\"category{}\" to=\"category{}\"/>",
                rng.gen_range(0..self.counts.categories),
                rng.gen_range(0..self.counts.categories)
            )?;
        }
        write!(w, "</catgraph>")
    }

    fn people<W: Write>(&self, w: &mut W, rng: &mut StdRng) -> io::Result<()> {
        write!(w, "<people>")?;
        for id in 0..self.counts.persons {
            write!(w, "<person id=\"person{id}\">")?;
            write!(w, "<name>{}</name>", person_name(rng))?;
            write!(w, "<emailaddress>mailto:p{id}@example.net</emailaddress>")?;
            if rng.gen_bool(0.6) {
                write!(
                    w,
                    "<phone>+{} ({}) {}</phone>",
                    rng.gen_range(1..99),
                    rng.gen_range(10..999),
                    rng.gen_range(10000..99999)
                )?;
            }
            if rng.gen_bool(0.4) {
                write!(
                    w,
                    "<address><street>{} {} St</street><city>{}</city>\
                     <country>United States</country><zipcode>{}</zipcode></address>",
                    rng.gen_range(1..99),
                    WORDS[rng.gen_range(0..WORDS.len())],
                    CITIES[rng.gen_range(0..CITIES.len())],
                    rng.gen_range(10000..99999)
                )?;
            }
            if rng.gen_bool(0.5) {
                write!(
                    w,
                    "<creditcard>{} {} {} {}</creditcard>",
                    rng.gen_range(1000..9999),
                    rng.gen_range(1000..9999),
                    rng.gen_range(1000..9999),
                    rng.gen_range(1000..9999)
                )?;
            }
            // ~75% of persons have a profile with an income attribute —
            // Q20 partitions on it, including the "no income" bucket.
            if rng.gen_bool(0.75) {
                write!(
                    w,
                    "<profile income=\"{:.2}\">",
                    rng.gen_range(9876.0..250000.0)
                )?;
                let interests = rng.gen_range(0..4);
                for _ in 0..interests {
                    write!(
                        w,
                        "<interest category=\"category{}\"/>",
                        rng.gen_range(0..self.counts.categories)
                    )?;
                }
                write!(
                    w,
                    "<education>{}</education>",
                    EDUCATIONS[rng.gen_range(0..4)]
                )?;
                write!(
                    w,
                    "<gender>{}</gender>",
                    if rng.gen_bool(0.5) { "male" } else { "female" }
                )?;
                write!(
                    w,
                    "<business>{}</business>",
                    if rng.gen_bool(0.3) { "Yes" } else { "No" }
                )?;
                write!(w, "<age>{}</age>", rng.gen_range(18..90))?;
                write!(w, "</profile>")?;
            }
            if rng.gen_bool(0.3) {
                write!(
                    w,
                    "<watches><watch open_auction=\"open_auction{}\"/></watches>",
                    rng.gen_range(0..self.counts.open_auctions)
                )?;
            }
            write!(w, "</person>")?;
        }
        write!(w, "</people>")
    }

    fn open_auctions<W: Write>(&self, w: &mut W, rng: &mut StdRng) -> io::Result<()> {
        write!(w, "<open_auctions>")?;
        for id in 0..self.counts.open_auctions {
            write!(w, "<open_auction id=\"open_auction{id}\">")?;
            let initial = rng.gen_range(1.0..300.0);
            write!(w, "<initial>{initial:.2}</initial>")?;
            if rng.gen_bool(0.4) {
                write!(w, "<reserve>{:.2}</reserve>", initial * 1.5)?;
            }
            let bidders = rng.gen_range(0..5);
            let mut current = initial;
            for _ in 0..bidders {
                current += rng.gen_range(1.0..50.0);
                write!(
                    w,
                    "<bidder><date>{}</date><time>{}:{:02}:00</time>\
                     <personref person=\"person{}\"/><increase>{:.2}</increase></bidder>",
                    date(rng),
                    rng.gen_range(0..24),
                    rng.gen_range(0..60),
                    rng.gen_range(0..self.counts.persons),
                    current
                )?;
            }
            write!(w, "<current>{current:.2}</current>")?;
            write!(
                w,
                "<itemref item=\"item{}\"/>",
                rng.gen_range(0..self.counts.items)
            )?;
            write!(
                w,
                "<seller person=\"person{}\"/>",
                rng.gen_range(0..self.counts.persons)
            )?;
            let ann_len = rng.gen_range(5..15);
            write!(
                w,
                "<annotation><description><text>{}</text></description></annotation>",
                words(rng, ann_len)
            )?;
            write!(w, "<quantity>{}</quantity>", rng.gen_range(1..3))?;
            write!(w, "<type>Regular</type>")?;
            let (start, end) = (date(rng), date(rng));
            write!(
                w,
                "<interval><start>{start}</start><end>{end}</end></interval>"
            )?;
            write!(w, "</open_auction>")?;
        }
        write!(w, "</open_auctions>")
    }

    fn closed_auctions<W: Write>(&self, w: &mut W, rng: &mut StdRng) -> io::Result<()> {
        write!(w, "<closed_auctions>")?;
        for _ in 0..self.counts.closed_auctions {
            write!(w, "<closed_auction>")?;
            write!(
                w,
                "<seller person=\"person{}\"/>",
                rng.gen_range(0..self.counts.persons)
            )?;
            write!(
                w,
                "<buyer person=\"person{}\"/>",
                rng.gen_range(0..self.counts.persons)
            )?;
            write!(
                w,
                "<itemref item=\"item{}\"/>",
                rng.gen_range(0..self.counts.items)
            )?;
            write!(w, "<price>{:.2}</price>", rng.gen_range(5.0..500.0))?;
            write!(w, "<date>{}</date>", date(rng))?;
            write!(w, "<quantity>{}</quantity>", rng.gen_range(1..3))?;
            write!(w, "<type>Regular</type>")?;
            let ann_len = rng.gen_range(5..15);
            write!(
                w,
                "<annotation><description><text>{}</text></description></annotation>",
                words(rng, ann_len)
            )?;
            write!(w, "</closed_auction>")?;
        }
        write!(w, "</closed_auctions>")
    }
}

fn date(rng: &mut StdRng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.gen_range(1..13),
        rng.gen_range(1..29),
        rng.gen_range(1998..2002)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = XmarkConfig {
            target_bytes: 50_000,
            seed: 42,
            doctype: false,
        };
        assert_eq!(generate_string(&cfg), generate_string(&cfg));
        let other = XmarkConfig {
            target_bytes: 50_000,
            seed: 43,
            doctype: false,
        };
        assert_ne!(generate_string(&cfg), generate_string(&other));
    }

    #[test]
    fn size_lands_near_target() {
        for target in [100_000u64, 1_000_000] {
            let cfg = XmarkConfig::sized(target);
            let doc = generate_string(&cfg);
            let ratio = doc.len() as f64 / target as f64;
            assert!(
                (0.5..1.6).contains(&ratio),
                "target {target}, got {} (ratio {ratio:.2})",
                doc.len()
            );
        }
    }

    #[test]
    fn document_is_well_formed() {
        let doc = generate_string(&XmarkConfig::sized(200_000));
        let mut t = gcx_xml::Tokenizer::from_str(&doc);
        t.validate_to_end()
            .expect("generated document must be well-formed");
    }

    #[test]
    fn doctype_is_emitted_and_adoptable() {
        let plain = generate_string(&XmarkConfig::sized(50_000));
        let doc = generate_string(&XmarkConfig::sized(50_000).with_doctype());
        assert!(!plain.contains("<!DOCTYPE"));
        let decl = doc.find("<!DOCTYPE site [").expect("declaration present");
        assert!(decl > 0 && decl < doc.find("<site>").unwrap());
        // The declaration only prepends: the document body is unchanged.
        assert_eq!(
            doc.find("<site>").map(|i| &doc[i..]),
            Some(&plain[plain.find("<site>").unwrap()..])
        );
        // Still well-formed, and the subset round-trips into a usable DTD.
        let mut t = gcx_xml::Tokenizer::from_str(&doc);
        t.validate_to_end().expect("doctype document well-formed");
        let payload_start = decl + "<!".len();
        let payload_end = doc.find("]>").expect("subset end") + 1;
        let view = gcx_xml::DoctypeView::parse(&doc[payload_start..payload_end])
            .expect("emitted declaration parses");
        assert_eq!(view.name, "site");
        let dtd = gcx_schema::Dtd::from_doctype_parts(view.name, view.subset)
            .expect("emitted subset builds a DTD");
        assert_eq!(dtd.root(), Some("site"));
        assert_eq!(dtd.len(), gcx_schema::Dtd::xmark().len());
    }

    #[test]
    fn sections_in_xmark_order() {
        let doc = generate_string(&XmarkConfig::sized(50_000));
        let positions: Vec<usize> = [
            "<regions>",
            "<categories>",
            "<catgraph>",
            "<people>",
            "<open_auctions>",
            "<closed_auctions>",
        ]
        .iter()
        .map(|s| doc.find(s).unwrap_or_else(|| panic!("missing section {s}")))
        .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "sections out of order"
        );
    }

    #[test]
    fn contains_join_partners() {
        let doc = generate_string(&XmarkConfig::sized(100_000));
        assert!(doc.contains("person0"), "ids start at 0");
        assert!(
            doc.contains("buyer person=\"person"),
            "closed auctions reference buyers"
        );
        assert!(
            doc.contains("profile income=\""),
            "profiles carry income attributes"
        );
        assert!(
            doc.contains("<australia>"),
            "Q13 needs the australia region"
        );
    }

    #[test]
    fn counts_scale_with_target() {
        let small = XmarkConfig::sized(100_000).counts();
        let large = XmarkConfig::sized(1_000_000).counts();
        assert!(large.persons > small.persons * 5);
        assert!(large.items > small.items * 5);
        // XMark's ratio: more persons than items than auctions.
        assert!(large.persons > large.items);
        assert!(large.items > large.open_auctions);
        assert!(large.open_auctions > large.closed_auctions);
    }
}
