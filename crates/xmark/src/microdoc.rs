//! The paper's Figure 3 micro documents.
//!
//! "Each input document contains a bib root node with ten children of the
//! form `<t><author></author><title></title><price></price></t>` where t is
//! either tag book or article, a total of 82 tags forming 41 document
//! nodes."

use std::fmt::Write;

/// Kind of one `bib` child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKind {
    /// `<article>...`
    Article,
    /// `<book>...`
    Book,
}

impl MicroKind {
    fn tag(self) -> &'static str {
        match self {
            MicroKind::Article => "article",
            MicroKind::Book => "book",
        }
    }
}

/// Build a micro document with the given child sequence.
pub fn microdoc(kinds: &[MicroKind]) -> String {
    let mut out = String::with_capacity(kinds.len() * 64 + 16);
    out.push_str("<bib>");
    for k in kinds {
        let t = k.tag();
        write!(
            out,
            "<{t}><author></author><title></title><price></price></{t}>"
        )
        .unwrap();
    }
    out.push_str("</bib>");
    out
}

/// Figure 3(b): nine articles followed by one book.
pub fn microdoc_article_heavy() -> String {
    let mut kinds = vec![MicroKind::Article; 9];
    kinds.push(MicroKind::Book);
    microdoc(&kinds)
}

/// Figure 3(c): nine books followed by one article.
pub fn microdoc_book_heavy() -> String {
    let mut kinds = vec![MicroKind::Book; 9];
    kinds.push(MicroKind::Article);
    microdoc(&kinds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_tags(doc: &str) -> usize {
        doc.matches('<').count()
    }

    #[test]
    fn has_82_tags_and_41_nodes() {
        for doc in [microdoc_article_heavy(), microdoc_book_heavy()] {
            assert_eq!(count_tags(&doc), 82, "paper: a total of 82 tags");
            // 1 bib + 10 children + 30 grandchildren = 41 nodes.
            let opens = doc.matches("</").count();
            assert_eq!(count_tags(&doc) - opens, 41, "41 document nodes");
        }
    }

    #[test]
    fn article_heavy_ends_with_book() {
        let doc = microdoc_article_heavy();
        let last_child = doc.rfind("<book>").unwrap();
        assert!(doc[..last_child].matches("<article>").count() == 9);
    }

    #[test]
    fn children_have_paper_shape() {
        let doc = microdoc(&[MicroKind::Book]);
        assert_eq!(
            doc,
            "<bib><book><author></author><title></title><price></price></book></bib>"
        );
    }
}
