#![deny(unsafe_code)]
//! # gcx-xmark — XMark-like workload generation for the GCX experiments
//!
//! The paper evaluates GCX on documents from the XMark benchmark and on two
//! hand-crafted micro documents. The original XMark generator (`xmlgen`, C)
//! is not available offline, so this crate provides:
//!
//! * [`XmarkConfig`] / [`generate`]: a deterministic, seedable generator
//!   emitting the XMark six-section skeleton — `regions` (with items per
//!   continent), `categories`, `catgraph`, `people`, `open_auctions`,
//!   `closed_auctions` — with the element shapes, attributes (`person/@id`,
//!   `buyer/@person`, `profile/@income`) and cross-references the adapted
//!   queries touch. Section *order* matches XMark because the buffer-plot
//!   shapes of the paper's Figure 4 depend on it (people stream in before
//!   the closed auctions they join with).
//! * [`microdoc`]: the paper's Figure 3 documents — a `bib` with ten
//!   children of the form `<t><author/><title/><price/></t>` (82 tags).
//! * [`queries`]: the five XMark queries of Figure 5 (Q1, Q6, Q8, Q13,
//!   Q20), adapted to the GCX fragment the way the paper describes (no
//!   aggregation: counting queries return witnesses; Q20's four separate
//!   person loops become one loop with four conditionals so the query
//!   stays single-pass).

mod gen;
mod microdoc;
pub mod queries;

pub use gen::{generate, generate_string, SectionCounts, XmarkConfig};
pub use microdoc::{microdoc, microdoc_article_heavy, microdoc_book_heavy, MicroKind};
