//! The benchmark queries, adapted to the GCX fragment.
//!
//! The paper ran XMark Q1, Q6, Q8, Q13 and Q20, "adapted ... to match the
//! XQuery fragment supported by GCX" (the adapted originals were hosted on
//! a now-defunct download page). The adaptations below re-derive them under
//! the documented restrictions: composition-free XQuery, no aggregation
//! (counting queries return their witnesses instead), no `let`, literal-
//! only constructor attributes. Each constant documents what changed.

/// The paper's running example (§1): children of `bib` without a price,
/// then all book titles.
pub const RUNNING_EXAMPLE: &str = r#"
<r> {
  for $bib in /bib return
    (for $x in $bib/* return
       if (not(exists($x/price))) then $x else (),
     for $b in $bib/book return $b/title)
} </r>
"#;

/// **XMark Q1** — "Return the name of the person with ID `person0`".
///
/// Original uses a predicate `person[@id="person0"]`; the fragment
/// expresses value predicates as `if`-conditions inside the loop.
/// Buffer behaviour: O(1) — each person is released at the end of its
/// iteration (first row block of the paper's Figure 5).
pub const Q1: &str = r#"
for $b in /site/people/person return
  if ($b/@id = "person0") then $b/name else ()
"#;

/// **XMark Q6** — "How many items are listed on all continents?".
///
/// The original counts `//item`; GCX has no aggregation, so the adapted
/// query returns each item's name element instead (the witnesses being
/// counted). The descendant axis is the reason FluXQuery reports "n/a" for
/// this query in Figure 5. Buffer behaviour: O(1), with all activity in the
/// regions section at the start of the document (Figure 4(a)).
pub const Q6: &str = r#"
<items> {
  for $b in /site/regions return
    for $i in $b//item return
      <item>{ $i/name }</item>
} </items>
"#;

/// Q6 with the aggregation extension enabled (not part of the paper's
/// fragment — "does not yet cover aggregation"). Used by the ablation
/// benchmarks.
pub const Q6_COUNT: &str = "<count>{ count(/site/regions//item) }</count>";

/// **XMark Q8** — "List the names of persons and the number of items they
/// bought" — the value-based join between people and closed auctions.
///
/// Without aggregation the adapted query emits the bought items' references
/// per person instead of their count. The inner loop ranges over an
/// absolute path below a different section of the document, re-executed for
/// every person: the signOff analysis anchors the auction roles at query
/// end, so memory grows linearly — "the join query Q8 is inherently
/// blocking, and has a main memory consumption that is linear in the size
/// of the input" (Figure 4(b), Figure 5 third block).
pub const Q8: &str = r#"
<results> {
  for $p in /site/people/person return
    <items> {
      $p/name,
      for $t in /site/closed_auctions/closed_auction return
        if ($t/buyer/@person = $p/@id) then $t/itemref else ()
    } </items>
} </results>
"#;

/// **XMark Q13** — "List the names of items registered in Australia along
/// with their descriptions."
///
/// Fits the fragment almost unchanged (the original's constructor
/// attribute `name="{$i/name/text()}"` becomes a child element, since
/// constructor attributes are literal-only). Buffer behaviour: O(1).
pub const Q13: &str = r#"
<result> {
  for $i in /site/regions/australia/item return
    <item>{ $i/name, $i/description }</item>
} </result>
"#;

/// **XMark Q20** — "How many people are in each income bracket?"
///
/// The original runs four separate counting loops over the person list; a
/// one-pass streaming engine would have to buffer the whole people section
/// to run them sequentially. The adaptation folds the four brackets into a
/// single loop with four conditionals, emitting one marker element per
/// person per bracket — single-pass, O(1) buffer, which is how GCX achieves
/// 1.2MB on this query in Figure 5.
pub const Q20: &str = r#"
<result> {
  for $p in /site/people/person return
    (if ($p/profile/@income >= 100000) then <preferred/> else (),
     if ($p/profile/@income < 100000 and $p/profile/@income >= 30000) then <standard/> else (),
     if ($p/profile/@income < 30000) then <challenge/> else (),
     if (not(exists($p/profile/@income))) then <na/> else ())
} </result>
"#;

/// All five Figure 5 queries with their paper names.
pub const FIGURE5_QUERIES: [(&str, &str); 5] = [
    ("Q1", Q1),
    ("Q6", Q6),
    ("Q8", Q8),
    ("Q13", Q13),
    ("Q20", Q20),
];

/// The canonical 11-query benchmark battery with paper names: the five
/// Figure 5 queries, the extra XMark adaptations, and the aggregation
/// extension. The bench harnesses, `gcx multi --xmark` and the
/// differential property suite all sweep exactly this list — add new
/// benchmark queries here so they cannot drift apart.
pub fn paper_queries() -> Vec<(&'static str, &'static str)> {
    let mut v: Vec<(&'static str, &'static str)> = FIGURE5_QUERIES.to_vec();
    v.extend(extra::ALL);
    v.push(("Q6_COUNT", Q6_COUNT));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_compile() {
        for (name, q) in FIGURE5_QUERIES {
            gcx_query::compile(q).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        }
        gcx_query::compile(RUNNING_EXAMPLE).unwrap();
        let c = gcx_query::compile(Q6_COUNT).unwrap();
        assert!(c.uses_aggregates);
    }

    #[test]
    fn q8_is_a_join_between_sections() {
        let q = gcx_query::compile(Q8).unwrap();
        // Two for-loops, inner over an absolute path.
        assert_eq!(q.var_names.len(), 2);
    }
}

/// Additional XMark adaptations beyond the five the paper measures —
/// exercised by the integration tests to broaden fragment coverage.
pub mod extra {
    /// **XMark Q2** — "Return the initial increases of all open auctions":
    /// positional access to the first bidder.
    pub const Q2: &str = r#"
<result> {
  for $b in /site/open_auctions/open_auction return
    <increase>{ $b/bidder[1]/increase/text() }</increase>
} </result>
"#;

    /// **XMark Q3** — first and current increase of auctions with at least
    /// two bids (positional predicates + exists).
    pub const Q3: &str = r#"
<result> {
  for $b in /site/open_auctions/open_auction return
    if (exists($b/bidder[2])) then
      <increase>{ $b/bidder[1]/increase/text(), ' -> ', $b/current/text() }</increase>
    else ()
} </result>
"#;

    /// **XMark Q14** — items whose description mentions "gold"
    /// (string-predicate extension; the original uses `contains`).
    pub const Q14: &str = r#"
<result> {
  for $i in //item return
    if (contains($i/description, 'gold')) then $i/name else ()
} </result>
"#;

    /// **XMark Q17** — people without a homepage (negated exists).
    pub const Q17: &str = r#"
<result> {
  for $p in /site/people/person return
    if (not(exists($p/homepage))) then <person>{ $p/name }</person> else ()
} </result>
"#;

    /// **XMark Q19-like** — items with their location (full-subtree output
    /// from two sibling paths).
    pub const Q19: &str = r#"
<result> {
  for $i in /site/regions/europe/item return
    <item>{ $i/name, $i/location }</item>
} </result>
"#;

    /// All extra queries with names.
    pub const ALL: [(&str, &str); 5] = [
        ("Q2", Q2),
        ("Q3", Q3),
        ("Q14", Q14),
        ("Q17", Q17),
        ("Q19", Q19),
    ];
}
