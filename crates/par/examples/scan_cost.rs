//! Boundary-scan throughput probe.
use std::time::Instant;
fn main() {
    let mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut cfg = gcx_xmark::XmarkConfig::sized(mb * 1024 * 1024);
    cfg.seed = 7;
    let doc = gcx_xmark::generate_string(&cfg);
    let t = Instant::now();
    let o = gcx_xml::scan_boundaries(doc.as_bytes(), 3).unwrap();
    let dt = t.elapsed();
    println!(
        "{} bytes, {} events, {:.1}ms ({:.0} MB/s)",
        doc.len(),
        o.events.len(),
        dt.as_secs_f64() * 1e3,
        doc.len() as f64 / 1e6 / dt.as_secs_f64()
    );
}
