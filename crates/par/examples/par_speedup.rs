//! Quick wall-clock probe: serial vs parallel on generated XMark input.
use gcx_core::{CompiledQuery, EngineOptions};
use gcx_par::{run_parallel, ParOptions};
use std::time::Instant;

fn main() {
    let mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut cfg = gcx_xmark::XmarkConfig::sized(mb * 1024 * 1024);
    cfg.seed = 7;
    let doc = gcx_xmark::generate_string(&cfg);
    let doc = doc.as_bytes();
    for (name, text) in gcx_xmark::queries::paper_queries() {
        let q = CompiledQuery::compile(text).unwrap();
        let opts = EngineOptions::gcx();
        let t0 = Instant::now();
        let serial = run_parallel(&q, &opts, &ParOptions::with_threads(1), doc).unwrap();
        let ts = t0.elapsed();
        let t1 = Instant::now();
        let par = run_parallel(&q, &opts, &ParOptions::with_threads(4), doc).unwrap();
        let tp = t1.elapsed();
        assert_eq!(serial.output, par.output, "{name} output mismatch");
        println!(
            "{name:12} serial {:>7.1}ms parallel {:>7.1}ms x{:.2} path={} shards={} {}",
            ts.as_secs_f64() * 1e3,
            tp.as_secs_f64() * 1e3,
            ts.as_secs_f64() / tp.as_secs_f64(),
            par.path.as_str(),
            par.shards,
            par.fallback.as_deref().unwrap_or("")
        );
    }
}
