#![deny(unsafe_code)]
//! # gcx-par — partition-parallel evaluation of one document across cores
//!
//! `gcx-multi` parallelizes across *queries*; this crate parallelizes
//! within *one* document: the input is split at element boundaries into
//! contiguous byte ranges, one sans-IO [`EvalSession`]
//! runs per shard on its own thread (fed its range plus a synthesized
//! ancestor context), and the outputs merge back in strict document
//! order — the data-partitioned XQuery scaling Apache VXQuery
//! demonstrated, built on the PR 5 sessions and the `Send + Sync`
//! [`Arc<Program>`](gcx_ir::Program) that make per-shard fan-out cheap.
//!
//! Three paths, chosen per query by a static analysis over the optimized
//! IR ([`analyze`]):
//!
//! * **parallel** — shard outputs concatenate between the query's static
//!   wrapper prefix/suffix; byte-identical to serial.
//! * **two_phase** — whole-document `count(...)`: shards count their own
//!   ranges, the merge sums (exact: counting is associative over a
//!   partition of the match set).
//! * **serial** — everything else (cross-shard joins like Q8, `sum`/`avg`
//!   aggregates, bodies that re-enter the document root, positional
//!   spine predicates, no guard-safe split point, malformed scans):
//!   one ordinary session over the whole document, with the reason
//!   reported honestly in [`ParOutcome::fallback`].
//!
//! Correctness is pinned by `tests/parallel_differential.rs` at the
//! workspace root: all 11 paper queries, 1/2/4/8 threads, byte-identical
//! outputs, per-shard buffer peaks within the serial peak.

mod report;
mod split;

// The shard-safety analysis lives in gcx-analyze (`gcx_analyze::shard`),
// where it is derived from the streamability classifier; re-exported
// here so gcx-par's public API is unchanged.
pub use gcx_analyze::shard::{
    analyze, Analysis, GStep, GTest, GuardPath, ShardMode, ShardPlan, Wrapper,
};
pub use report::aggregate_reports;
pub use split::{guard_matches_chain, plan_shards, ShardInput};

use gcx_core::{CompiledQuery, EngineError, EngineOptions, EvalSession, RunReport};
use gcx_xml::{scan_boundaries, XmlWriter};

/// Which evaluation path a [`run_parallel`] call actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPath {
    /// Partitioned evaluation, shard outputs concatenated.
    Parallel,
    /// Partitioned counting with a summing merge.
    TwoPhase,
    /// One session over the whole document.
    Serial,
}

impl ShardPath {
    /// The `--stats-json` string form.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardPath::Parallel => "parallel",
            ShardPath::TwoPhase => "two_phase",
            ShardPath::Serial => "serial",
        }
    }
}

/// Knobs for [`run_parallel`].
#[derive(Debug, Clone)]
pub struct ParOptions {
    /// Worker thread budget (also the shard target). `<= 1` means serial.
    pub threads: usize,
    /// Deepest element depth the boundary scanner records as candidate
    /// split points (0-based; XMark's `<item>`s sit at depth 3).
    pub max_scan_depth: u16,
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions {
            threads: 1,
            max_scan_depth: 3,
        }
    }
}

impl ParOptions {
    /// A budget of `threads` workers.
    pub fn with_threads(threads: usize) -> ParOptions {
        ParOptions {
            threads,
            ..ParOptions::default()
        }
    }
}

/// The result of a [`run_parallel`] call.
#[derive(Debug)]
pub struct ParOutcome {
    /// The merged result document (byte-identical to a serial run).
    pub output: Vec<u8>,
    /// Deterministically aggregated run report: token/trigger counts
    /// summed, peaks maxed, histograms merged (see [`aggregate_reports`]).
    pub report: RunReport,
    /// Which path ran.
    pub path: ShardPath,
    /// Worker threads actually used.
    pub threads: usize,
    /// Number of shards evaluated (1 on the serial path).
    pub shards: usize,
    /// Per-shard reports, in document order (empty on the serial path).
    pub shard_reports: Vec<RunReport>,
    /// Why the run did not take the parallel path (serial path only).
    pub fallback: Option<String>,
}

/// Evaluate `q` over `doc` with up to `par.threads` workers. Falls back
/// to a plain serial session — never to a wrong answer — whenever the
/// query or the document cannot be partitioned safely; the outcome
/// reports which path ran and why.
pub fn run_parallel(
    q: &CompiledQuery,
    opts: &EngineOptions,
    par: &ParOptions,
    doc: &[u8],
) -> Result<ParOutcome, EngineError> {
    let threads = par.threads.max(1);
    if threads == 1 {
        return run_serial(q, opts, doc, None);
    }
    if opts.indent.is_some() {
        return run_serial(
            q,
            opts,
            doc,
            Some("indented output is shaped by nesting across shard seams".into()),
        );
    }
    if opts.timeline_every.is_some() {
        return run_serial(
            q,
            opts,
            doc,
            Some("timeline sampling is a whole-stream measurement".into()),
        );
    }
    let plan = match analyze(&q.program) {
        Analysis::Safe(plan) => plan,
        Analysis::Unsafe(reason) => {
            return run_serial(
                q,
                opts,
                doc,
                Some(format!("query is not shard-safe: {reason}")),
            )
        }
    };
    let outline = match scan_boundaries(doc, par.max_scan_depth) {
        Ok(o) => o,
        Err(e) => return run_serial(q, opts, doc, Some(e.to_string())),
    };
    let shards = plan_shards(doc, &outline, &plan.guards, threads);
    if shards.len() < 2 {
        return run_serial(
            q,
            opts,
            doc,
            Some("no guard-safe split point in the document".into()),
        );
    }

    // One worker per shard, outputs collected in shard (= document) order.
    let results: Vec<Result<(Vec<u8>, RunReport), EngineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(move || run_shard(q, opts, doc, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let mut outputs = Vec::with_capacity(results.len());
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok((out, rep)) => {
                outputs.push(out);
                reports.push(rep);
            }
            // A shard failure (buffer budget, malformed range) reruns
            // serially so the user sees the error — or the success —
            // exactly as a single-threaded run would report it.
            Err(e) => {
                return run_serial(
                    q,
                    opts,
                    doc,
                    Some(format!("shard evaluation failed ({e}); reran serially")),
                )
            }
        }
    }

    let (prefix, suffix, empty_form) = render_statics(&plan.wrappers)?;
    let merged = match plan.mode {
        ShardMode::Concat => merge_concat(&outputs, &prefix, &suffix, &empty_form),
        ShardMode::SumCount => merge_count(&outputs, &prefix, &suffix),
    };
    let output = match merged {
        Some(bytes) => bytes,
        None => {
            return run_serial(
                q,
                opts,
                doc,
                Some("shard outputs did not frame as analyzed; reran serially".into()),
            )
        }
    };
    let report = aggregate_reports(&reports, output.len() as u64);
    Ok(ParOutcome {
        output,
        report,
        path: match plan.mode {
            ShardMode::Concat => ShardPath::Parallel,
            ShardMode::SumCount => ShardPath::TwoPhase,
        },
        threads: shards.len(),
        shards: shards.len(),
        shard_reports: reports,
        fallback: None,
    })
}

fn run_shard(
    q: &CompiledQuery,
    opts: &EngineOptions,
    doc: &[u8],
    shard: &ShardInput,
) -> Result<(Vec<u8>, RunReport), EngineError> {
    let mut s: EvalSession = q.session(opts);
    for piece in &shard.pieces {
        s.feed(&doc[piece.clone()])?;
    }
    if !shard.tail.is_empty() {
        s.feed(&shard.tail)?;
    }
    let report = s.finish()?;
    Ok((s.output().to_vec(), report))
}

fn run_serial(
    q: &CompiledQuery,
    opts: &EngineOptions,
    doc: &[u8],
    fallback: Option<String>,
) -> Result<ParOutcome, EngineError> {
    let mut s = q.session(opts);
    s.feed(doc)?;
    let report = s.finish()?;
    let output = s.output().to_vec();
    Ok(ParOutcome {
        output,
        report,
        path: ShardPath::Serial,
        threads: 1,
        shards: 1,
        shard_reports: Vec::new(),
        fallback,
    })
}

/// Render the static wrapper chain three ways: the byte prefix every
/// shard output starts with, the suffix it ends with, and the *collapsed
/// empty form* the serializer emits when nothing was written inside the
/// innermost wrapper (`<a><b/></a>` — the writer collapses an element
/// that closed with no content). A shard with zero bindings produces the
/// collapsed form, and so must the merge when every shard is empty.
/// (prefix, suffix, collapsed-empty form) of the wrapper chain.
type StaticParts = (Vec<u8>, Vec<u8>, Vec<u8>);

fn render_statics(wrappers: &[Wrapper]) -> Result<StaticParts, EngineError> {
    if wrappers.is_empty() {
        return Ok((Vec::new(), Vec::new(), Vec::new()));
    }
    let render = |with_sentinel: bool| -> Result<Vec<u8>, EngineError> {
        let mut w = XmlWriter::new(Vec::new());
        for wr in wrappers {
            w.start_element(&wr.name).map_err(EngineError::Xml)?;
            for (k, v) in &wr.attrs {
                w.attribute(k, v).map_err(EngineError::Xml)?;
            }
        }
        if with_sentinel {
            w.text("Z").map_err(EngineError::Xml)?;
        }
        for _ in wrappers {
            w.end_element().map_err(EngineError::Xml)?;
        }
        w.finish().map_err(EngineError::Xml)
    };
    let full = render(true)?;
    let empty_form = render(false)?;
    let suffix: Vec<u8> = wrappers
        .iter()
        .rev()
        .flat_map(|wr| {
            let mut t = Vec::with_capacity(wr.name.len() + 3);
            t.extend_from_slice(b"</");
            t.extend_from_slice(wr.name.as_bytes());
            t.push(b'>');
            t
        })
        .collect();
    let prefix = full[..full.len() - suffix.len() - 1].to_vec();
    Ok((prefix, suffix, empty_form))
}

/// Strip `prefix`/`suffix` from one shard's output, recognizing the
/// collapsed empty form as an empty core. `None` on any mismatch (the
/// caller falls back serially rather than guess).
fn core_of<'a>(out: &'a [u8], prefix: &[u8], suffix: &[u8], empty_form: &[u8]) -> Option<&'a [u8]> {
    if !empty_form.is_empty() && out == empty_form {
        return Some(b"");
    }
    if out.len() >= prefix.len() + suffix.len() && out.starts_with(prefix) && out.ends_with(suffix)
    {
        Some(&out[prefix.len()..out.len() - suffix.len()])
    } else {
        None
    }
}

fn merge_concat(
    outputs: &[Vec<u8>],
    prefix: &[u8],
    suffix: &[u8],
    empty_form: &[u8],
) -> Option<Vec<u8>> {
    let mut cores = Vec::with_capacity(outputs.len());
    for out in outputs {
        cores.push(core_of(out, prefix, suffix, empty_form)?);
    }
    if !empty_form.is_empty() && cores.iter().all(|c| c.is_empty()) {
        return Some(empty_form.to_vec());
    }
    let total = prefix.len() + suffix.len() + cores.iter().map(|c| c.len()).sum::<usize>();
    let mut merged = Vec::with_capacity(total);
    merged.extend_from_slice(prefix);
    for c in cores {
        merged.extend_from_slice(c);
    }
    merged.extend_from_slice(suffix);
    Some(merged)
}

fn merge_count(outputs: &[Vec<u8>], prefix: &[u8], suffix: &[u8]) -> Option<Vec<u8>> {
    let mut total: u64 = 0;
    for out in outputs {
        // count() always emits a number, so the collapsed empty form
        // cannot occur here.
        let core = core_of(out, prefix, suffix, b"")?;
        total = total.checked_add(std::str::from_utf8(core).ok()?.parse::<u64>().ok()?)?;
    }
    let text = gcx_ir::fmt_number(total as f64);
    let mut merged = Vec::with_capacity(prefix.len() + text.len() + suffix.len());
    merged.extend_from_slice(prefix);
    merged.extend_from_slice(text.as_bytes());
    merged.extend_from_slice(suffix);
    Some(merged)
}
