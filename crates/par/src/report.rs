//! Deterministic aggregation of per-shard [`RunReport`]s.
//!
//! The aggregate answers the same questions the serial report does, with
//! partition semantics: work counters (tokens, allocations, purges,
//! trigger counts, feed calls) are *sums* over shards; capacity
//! watermarks (buffer peaks, pending-byte and tokenizer-window highs,
//! per-role liveness) are *maxima* — shards hold their buffers
//! concurrently but independently, so the per-shard maximum is the bound
//! the differential suite compares against the serial peak. Histograms
//! merge bucket-wise ([`gcx_obs::Hist::merge`]). Everything is a fold in
//! shard (= document) order over values the shards computed
//! deterministically, so the aggregate is itself deterministic.

use gcx_core::{ObsReport, RoleObs, RunReport, TaskObs};

/// Fold shard reports (document order) into one aggregate report.
/// `output_bytes` is the merged output's length — shard outputs overlap
/// on the static prefix/suffix, so their `output_bytes` don't sum.
pub fn aggregate_reports(shards: &[RunReport], output_bytes: u64) -> RunReport {
    assert!(!shards.is_empty(), "no shard reports to aggregate");
    let mut agg = shards[0].clone();
    agg.output_bytes = output_bytes;
    agg.timeline = None;
    for r in &shards[1..] {
        agg.tokens += r.tokens;
        agg.buffer.live += r.buffer.live;
        agg.buffer.peak_live = agg.buffer.peak_live.max(r.buffer.peak_live);
        agg.buffer.allocated += r.buffer.allocated;
        agg.buffer.purged += r.buffer.purged;
        agg.buffer.live_bytes += r.buffer.live_bytes;
        agg.buffer.peak_live_bytes = agg.buffer.peak_live_bytes.max(r.buffer.peak_live_bytes);
        agg.feed_calls += r.feed_calls;
        agg.max_pending_bytes = agg.max_pending_bytes.max(r.max_pending_bytes);
        match (&mut agg.obs, &r.obs) {
            (Some(a), Some(b)) => merge_obs(a, b),
            (a, _) => *a = None,
        }
        match (&mut agg.schema, &r.schema) {
            (Some(a), Some(b)) => {
                // The static analysis counters are identical per shard
                // (same program, same DTD); the runtime triggers sum.
                a.reach_cuts += b.reach_cuts;
                a.early_scan_ends += b.early_scan_ends;
                a.early_signoffs += b.early_signoffs;
            }
            (a, _) => *a = None,
        }
    }
    agg
}

fn merge_obs(a: &mut ObsReport, b: &ObsReport) {
    a.residency_tokens.merge(&b.residency_tokens);
    a.purged_node_bytes.merge(&b.purged_node_bytes);
    a.purge_batch.merge(&b.purge_batch);
    a.purges_on_signoff += b.purges_on_signoff;
    a.purges_on_close += b.purges_on_close;
    a.purges_on_unpin += b.purges_on_unpin;
    merge_roles(&mut a.roles, &b.roles);
    // The timeline is a whole-stream measurement; shard timelines don't
    // splice into one document clock.
    a.live_bytes_timeline.clear();
    merge_tasks(&mut a.tasks, &b.tasks);
    a.feed_spans.extend_from_slice(&b.feed_spans);
    a.tokenizer_window_peak = a.tokenizer_window_peak.max(b.tokenizer_window_peak);
}

fn merge_roles(a: &mut Vec<RoleObs>, b: &[RoleObs]) {
    // Shards share the program but omit roles they never saw, so the
    // lists are (possibly different) subsequences of the same role-id
    // ordering: merge by name, then restore role-id order.
    for rb in b {
        match a.iter_mut().find(|ra| ra.role == rb.role) {
            Some(ra) => {
                ra.appends += rb.appends;
                ra.signoffs += rb.signoffs;
                ra.purge_triggers += rb.purge_triggers;
                ra.max_live = ra.max_live.max(rb.max_live);
            }
            None => a.push(rb.clone()),
        }
    }
    a.sort_by_key(|r| role_ord(&r.role));
}

/// Numeric role order from the display name (`r1`, `r2`, ...).
fn role_ord(name: &str) -> (u64, String) {
    match name.strip_prefix('r').and_then(|d| d.parse::<u64>().ok()) {
        Some(n) => (n, String::new()),
        None => (u64::MAX, name.to_string()),
    }
}

fn merge_tasks(a: &mut Vec<TaskObs>, b: &[TaskObs]) {
    for tb in b {
        match a.iter_mut().find(|ta| ta.name == tb.name) {
            Some(ta) => {
                ta.count += tb.count;
                ta.nanos += tb.nanos;
            }
            None => a.push(tb.clone()),
        }
    }
    // Keep the serial report's "hottest first" convention.
    a.sort_by(|x, y| y.nanos.cmp(&x.nanos).then(x.name.cmp(y.name)));
}
