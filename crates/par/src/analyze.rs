//! Shard-safety analysis over the optimized IR.
//!
//! Decides, per compiled query, whether partition-parallel evaluation can
//! reproduce the serial output byte for byte — and if so, what the merge
//! has to do. The analysis never looks at the document; it produces
//! *guard paths* that the splitter later checks against the concrete
//! ancestor chain of every candidate split point (see
//! [`crate::split`]).
//!
//! ## The safe shape
//!
//! A query is shard-safe when, after peeling static wrappers, it is a
//! chain of `for` loops whose composed binding path is rooted at the
//! document root, with a body confined to the innermost binding:
//!
//! ```text
//! <w1><w2> {                        static wrappers (prefix/suffix)
//!   for $a in /s1/s2 return        spine: Root-rooted,
//!     for $b in $a//s3 return      chained through the previous var
//!       BODY($b)                   every path rooted at $b (or vars
//! } </w2></w1>                     bound from it); no joins
//! ```
//!
//! Run over a sub-document that contains a *contiguous, complete* subset
//! of the spine bindings (plus re-opened ancestors that the guard check
//! proves can never themselves be bindings), such a query emits exactly
//! `prefix · (its bindings' output) · suffix` — so shard outputs
//! concatenate, in shard order, into the serial output. `signOff`
//! statements anywhere are exempt from confinement: they only touch the
//! shard-local buffer, never the output.
//!
//! Innermost bindings must stay whole, but an *intermediate* spine
//! binding (Q6's `regions`) may be divided: its body is the rest of the
//! spine, whose per-fragment outputs concatenate back in order. That
//! holds only while bindings of one level cannot nest: XQuery orders
//! output by binding — the outer binding's whole group before the
//! nested one's — so dividing a binding whose subtree holds another
//! binding of its own level would splice the nested group into the
//! middle of the outer's. (Today's streaming engine flattens nested
//! groups — each node is consumed by its outermost binding, unlike the
//! dom/full reference engines — which happens to make such a division
//! byte-invisible; shard safety must not lean on that attribution
//! quirk.) A spine level reached purely by `child` steps has a fixed
//! match depth and can never nest; any `descendant` step on the
//! composed prefix can (`//a` under `<a><a>…`), so such prefixes become
//! guards of their own ([`spine`]) and the splitter refuses to cut
//! through their bindings.
//!
//! Whole-document `count(...)` aggregates take the two-phase route
//! instead: each shard counts its own matches and the merge sums — exact,
//! because count is associative over a partition of the match set (no
//! float re-association, unlike `sum`/`avg`, which stay serial).
//!
//! Everything else — cross-shard joins (Q8's `HashJoin`), bodies that
//! re-enter the document root, positional predicates on the spine,
//! multiple dynamic items per level (output interleaving would change) —
//! reports `Unsafe` and the runtime falls back to the serial path.

use gcx_ir::{
    AttrPlan, CondId, CondIr, EAxis, ETest, EvalStep, Instr, InstrId, OperandIr, PlanRoot, Program,
};
use gcx_query::ast::VarId;

/// How shard results recombine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Concatenate shard cores between the static prefix/suffix.
    Concat,
    /// Parse each shard core as an integer count and emit the sum.
    SumCount,
}

/// One static wrapper element peeled off the query root.
#[derive(Debug, Clone)]
pub struct Wrapper {
    /// Element name (raw program string).
    pub name: String,
    /// Literal attributes, in emission order (raw, unescaped).
    pub attrs: Vec<(String, String)>,
}

/// A guard step: an [`EvalStep`] with its name test resolved to a string,
/// so the splitter can match it against raw document bytes.
#[derive(Debug, Clone)]
pub struct GStep {
    /// Axis.
    pub axis: EAxis,
    /// Resolved node test.
    pub test: GTest,
}

/// Resolved node test of a guard step.
#[derive(Debug, Clone)]
pub enum GTest {
    /// Element with this name.
    Name(String),
    /// Any element.
    Star,
    /// Any text node (never matches an element).
    Text,
    /// Any node.
    AnyNode,
}

/// One guard path: a split point is unsafe if any element left open at
/// the split (any ancestor of the cut) could be selected by this path —
/// its subtree, or its attributes, would then be divided or duplicated
/// across shards.
#[derive(Debug, Clone)]
pub struct GuardPath {
    /// Element steps, root-context first.
    pub steps: Vec<GStep>,
}

impl GuardPath {
    /// Whether two elements selected by this path can be nested in one
    /// another. `child`/`self` steps pin every match to one fixed depth,
    /// so matches are siblings-or-cousins and can never nest; any
    /// descendant step lets the path select both `<a>` and an `<a>`
    /// inside it.
    pub fn can_nest(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s.axis, EAxis::Descendant | EAxis::DescendantOrSelf))
    }
}

/// The analysis result for a shard-safe query.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Merge mode.
    pub mode: ShardMode,
    /// Static wrappers, outermost first.
    pub wrappers: Vec<Wrapper>,
    /// Guard paths the splitter must respect.
    pub guards: Vec<GuardPath>,
}

/// Whether (and how) a program can run partition-parallel.
#[derive(Debug, Clone)]
pub enum Analysis {
    /// Shard-safe; the plan drives splitting and merging.
    Safe(ShardPlan),
    /// Not shard-safe, with the human-readable reason the CLI reports.
    Unsafe(&'static str),
}

/// Analyze an optimized program for shard safety.
pub fn analyze(p: &Program) -> Analysis {
    match analyze_inner(p) {
        Ok(plan) => Analysis::Safe(plan),
        Err(reason) => Analysis::Unsafe(reason),
    }
}

type AResult<T> = Result<T, &'static str>;

fn analyze_inner(p: &Program) -> AResult<ShardPlan> {
    let mut wrappers = Vec::new();
    let mut cur = p.root();
    // Peel static wrappers: constructed elements and sequences whose
    // other items are output-free (signOffs, the optimizer's Nops).
    let core = loop {
        match p.instr(cur) {
            Instr::Seq { first, len } => {
                cur =
                    single_dynamic_item(p, first, len)?.ok_or("the query emits nothing dynamic")?;
            }
            Instr::Element {
                name,
                attrs_first,
                attrs_len,
                content,
            } => {
                wrappers.push(Wrapper {
                    name: p.str_(name).to_string(),
                    attrs: p
                        .attr_pairs(attrs_first, attrs_len)
                        .iter()
                        .map(|&(k, v)| (p.str_(k).to_string(), p.str_(v).to_string()))
                        .collect(),
                });
                cur = content;
            }
            Instr::For { .. } | Instr::OutputPath(_) | Instr::Aggregate { .. } => break cur,
            Instr::Nop | Instr::SignOff { .. } => return Err("the query emits nothing dynamic"),
            Instr::Text(_) => return Err("static text at the query root"),
            Instr::If { .. } => return Err("a top-level conditional over the whole document"),
            Instr::HashJoin(_) => return Err("a join over the whole document"),
        }
    };
    match p.instr(core) {
        Instr::For { .. } => {
            let guards = spine(p, core)?;
            Ok(ShardPlan {
                mode: ShardMode::Concat,
                wrappers,
                guards,
            })
        }
        Instr::OutputPath(path) => {
            let guard = root_guard(p, path)?;
            Ok(ShardPlan {
                mode: ShardMode::Concat,
                wrappers,
                guards: vec![guard],
            })
        }
        Instr::Aggregate { func, path } => {
            if func != gcx_query::ast::AggFunc::Count {
                return Err("only count() aggregates partition exactly");
            }
            let guard = root_guard(p, path)?;
            Ok(ShardPlan {
                mode: ShardMode::SumCount,
                wrappers,
                guards: vec![guard],
            })
        }
        _ => unreachable!("peel loop only breaks on For/OutputPath/Aggregate"),
    }
}

/// Of a Seq's items, the single one that can produce output. `Ok(None)`
/// when every item is output-free; `Err` when two could emit (their
/// outputs would interleave differently across a shard seam).
fn single_dynamic_item(p: &Program, first: u32, len: u32) -> AResult<Option<InstrId>> {
    let mut dynamic = None;
    for &item in p.seq_items(first, len) {
        match p.instr(item) {
            Instr::Nop | Instr::SignOff { .. } => {}
            _ => {
                if dynamic.replace(item).is_some() {
                    return Err("two output-producing items at the same level");
                }
            }
        }
    }
    Ok(dynamic)
}

/// Follow the chain of `for`s from the query core: the first must bind a
/// Root-rooted path, each next one the previous variable; the final body
/// must be confined to the innermost binding. Returns the guards for the
/// spine: the fully composed path (innermost bindings must never be cut)
/// plus every intermediate composed prefix whose matches could nest
/// (see the module docs — dividing a binding that contains another
/// binding of its own level reorders the serial per-binding groups).
fn spine(p: &Program, head: InstrId) -> AResult<Vec<GuardPath>> {
    let mut composed: Vec<EvalStep> = Vec::new();
    let mut guards: Vec<GuardPath> = Vec::new();
    let mut innermost: Option<VarId> = None;
    let mut cur = head;
    loop {
        let Instr::For {
            var, path, body, ..
        } = p.instr(cur)
        else {
            unreachable!("spine() is only called on For instructions");
        };
        let plan = p.path(path);
        match (plan.root, innermost) {
            (PlanRoot::Root, None) => {}
            (PlanRoot::Var(v), Some(inner)) if v == inner => {}
            _ => return Err("a loop binds a path off the shard spine"),
        }
        composed.extend_from_slice(p.path_steps(plan));
        innermost = Some(var);
        let binds_attrs = plan.attr != AttrPlan::None;
        // The body: either extends the spine with one more For over the
        // fresh variable, or is a general body confined to it.
        let next = match p.instr(body) {
            Instr::Seq { first, len } => single_dynamic_item(p, first, len)?,
            Instr::Nop | Instr::SignOff { .. } => None,
            _ => Some(body),
        };
        match next {
            Some(next_for)
                if !binds_attrs
                    && matches!(
                        p.instr(next_for),
                        Instr::For { path: np, .. }
                            if p.path(np).root == PlanRoot::Var(var)
                    ) =>
            {
                // `var` is an intermediate binding: the spine continues
                // below it, so the splitter may divide its subtree —
                // unless bindings of this level can nest, in which case
                // the composed prefix becomes a guard of its own.
                let prefix = finish_guard(composed.clone(), p)?;
                if prefix.can_nest() {
                    guards.push(prefix);
                }
                cur = next_for;
            }
            Some(other) => {
                let mut allowed = vec![var];
                confined(p, other, &mut allowed)?;
                break;
            }
            None => break,
        }
    }
    guards.push(finish_guard(composed, p)?);
    Ok(guards)
}

/// Guard for a Root-rooted output/aggregate path at the query core.
fn root_guard(p: &Program, path: gcx_ir::PathId) -> AResult<GuardPath> {
    let plan = p.path(path);
    if plan.root != PlanRoot::Root {
        return Err("a core path not rooted at the document");
    }
    finish_guard(p.path_steps(plan).to_vec(), p)
}

fn finish_guard(steps: Vec<EvalStep>, p: &Program) -> AResult<GuardPath> {
    if steps.is_empty() {
        return Err("the query binds the document root itself");
    }
    if steps.iter().any(|s| s.pos.is_some()) {
        return Err("a positional predicate on the spine path");
    }
    let steps = steps
        .iter()
        .map(|s| GStep {
            axis: s.axis,
            test: match s.test {
                ETest::Name(sym) => GTest::Name(p.symbols().resolve(sym).to_string()),
                ETest::Star => GTest::Star,
                ETest::Text => GTest::Text,
                ETest::AnyNode => GTest::AnyNode,
            },
        })
        .collect();
    Ok(GuardPath { steps })
}

/// Check that every path an instruction subtree evaluates is rooted at a
/// variable bound (transitively) from the spine's innermost binding —
/// i.e. the body never re-enters the document outside its binding's
/// subtree. signOffs are exempt: they mutate the shard-local buffer only.
fn confined(p: &Program, id: InstrId, allowed: &mut Vec<VarId>) -> AResult<()> {
    match p.instr(id) {
        Instr::Nop | Instr::Text(_) | Instr::SignOff { .. } => Ok(()),
        Instr::Seq { first, len } => {
            for &item in p.seq_items(first, len) {
                confined(p, item, allowed)?;
            }
            Ok(())
        }
        Instr::Element { content, .. } => confined(p, content, allowed),
        Instr::OutputPath(path) | Instr::Aggregate { path, .. } => check_path(p, path, allowed),
        Instr::For {
            var, path, body, ..
        } => {
            check_path(p, path, allowed)?;
            let scope = allowed.len();
            allowed.push(var);
            let body_ok = confined(p, body, allowed);
            // The binding is scoped to the body: a sibling item later in
            // an enclosing Seq must not pass on the strength of it.
            allowed.truncate(scope);
            body_ok
        }
        Instr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            check_cond(p, cond, allowed)?;
            confined(p, then_branch, allowed)?;
            confined(p, else_branch, allowed)
        }
        Instr::HashJoin(_) => Err("a join against the whole document inside a loop body"),
    }
}

fn check_path(p: &Program, path: gcx_ir::PathId, allowed: &[VarId]) -> AResult<()> {
    match p.path(path).root {
        PlanRoot::Var(v) if allowed.contains(&v) => Ok(()),
        _ => Err("a loop body reads outside its binding's subtree"),
    }
}

fn check_cond(p: &Program, id: CondId, allowed: &[VarId]) -> AResult<()> {
    match p.cond(id) {
        CondIr::Const(_) => Ok(()),
        CondIr::Not(c) => check_cond(p, c, allowed),
        CondIr::And(a, b) | CondIr::Or(a, b) => {
            check_cond(p, a, allowed)?;
            check_cond(p, b, allowed)
        }
        CondIr::Exists(path) | CondIr::CachedExists { path, .. } => check_path(p, path, allowed),
        CondIr::Compare { lhs, rhs, .. }
        | CondIr::StringFn {
            haystack: lhs,
            needle: rhs,
            ..
        } => {
            check_operand(p, lhs, allowed)?;
            check_operand(p, rhs, allowed)
        }
    }
}

fn check_operand(p: &Program, id: gcx_ir::OperandId, allowed: &[VarId]) -> AResult<()> {
    match p.operand(id) {
        OperandIr::Lit { .. } => Ok(()),
        OperandIr::Path(path) => check_path(p, path, allowed),
    }
}
