//! Split planning: turn a boundary scan plus the analysis' guard paths
//! into per-shard byte ranges with synthesized ancestor context.
//!
//! A split point is the `<` of some start tag below the root. The
//! elements *left open* at that offset (the tag's ancestors) are "cut":
//! their content is divided between shards and their start tags are
//! replayed in every later shard's prelude. The guard check
//! ([`guard_matches_chain`]) proves, per candidate, that no cut element
//! can itself be selected by any guard path — so no innermost binding
//! subtree is divided, no binding attribute is duplicated, no
//! nesting-capable intermediate binding is cut (the analysis adds those
//! composed prefixes to the guard list; see [`gcx_analyze::shard`]'s module
//! docs), and the re-opened ancestors can never introduce a spurious
//! match (an element inside a shard range has exactly the serial
//! document's ancestor name chain).
//!
//! Each shard's input document is assembled from byte ranges of the
//! original (zero-copy), in order:
//!
//! ```text
//! [0 .. root_open_end)          XML decl, DOCTYPE, root start tag
//! ancestor start tags           verbatim spans, outermost first
//! [start .. end)                the shard's content range
//! synthesized end tags          close the elements open at `end`
//! ```
//!
//! The last shard runs to the end of the original document, so the real
//! root end tag (and any trailing comments/PIs) close it.

use crate::{GStep, GTest, GuardPath};
use gcx_ir::EAxis;
use gcx_xml::{ScanEvent, ScanOutline};
use std::ops::Range;

/// One shard's input: byte ranges into the original document plus a
/// synthesized tail of end tags.
#[derive(Debug, Clone)]
pub struct ShardInput {
    /// Ranges of the original document, fed in order.
    pub pieces: Vec<Range<usize>>,
    /// Synthesized closing tags fed after the last piece (empty for the
    /// final shard).
    pub tail: Vec<u8>,
}

/// Plan up to `want` shards over the scanned document. Returns a single
/// full-document shard when no guard-safe split point exists.
pub fn plan_shards(
    doc: &[u8],
    outline: &ScanOutline,
    guards: &[GuardPath],
    want: usize,
) -> Vec<ShardInput> {
    let span = outline
        .root_close_start
        .saturating_sub(outline.root_open_end);
    if want < 2 || span == 0 {
        return vec![whole(doc)];
    }
    let targets: Vec<usize> = (1..want)
        .map(|k| outline.root_open_end + span * k / want)
        .collect();

    // Walk the scan events keeping the open-element stack; at the first
    // guard-safe candidate at-or-after each target, cut.
    struct Split {
        offset: usize,
        ancestors: Vec<(Range<usize>, Range<usize>)>, // (tag span, name span)
    }
    let mut stack: Vec<(Range<usize>, Range<usize>)> = Vec::new();
    let mut splits: Vec<Split> = Vec::new();
    let mut t = 0usize;
    for ev in &outline.events {
        match *ev {
            ScanEvent::Open(b) => {
                if b.depth >= 1 && t < targets.len() && b.start >= targets[t] {
                    let chains: Vec<&[u8]> =
                        stack.iter().map(|(_, name)| &doc[name.clone()]).collect();
                    let safe = (1..=chains.len())
                        .all(|k| !guards.iter().any(|g| guard_matches_chain(g, &chains[..k])));
                    if safe {
                        splits.push(Split {
                            offset: b.start,
                            ancestors: stack.clone(),
                        });
                        while t < targets.len() && targets[t] <= b.start {
                            t += 1;
                        }
                    }
                }
                if !b.self_closing {
                    stack.push((b.start..b.tag_end, b.name_start..b.name_end));
                }
            }
            ScanEvent::Close { .. } => {
                stack.pop();
            }
        }
    }

    if splits.is_empty() {
        return vec![whole(doc)];
    }
    let mut shards = Vec::with_capacity(splits.len() + 1);
    let mut start = outline.root_open_end;
    // Ancestors open at the *start* of the current shard (replayed into
    // its prelude); the root (stack[0]) is already in `0..root_open_end`.
    let mut open_at_start: Vec<(Range<usize>, Range<usize>)> = Vec::new();
    for s in &splits {
        shards.push(build_shard(
            doc,
            outline,
            &open_at_start,
            start..s.offset,
            Some(&s.ancestors),
        ));
        start = s.offset;
        open_at_start = s.ancestors.clone();
    }
    shards.push(build_shard(
        doc,
        outline,
        &open_at_start,
        start..doc.len(),
        None,
    ));
    shards
}

fn whole(doc: &[u8]) -> ShardInput {
    ShardInput {
        pieces: std::iter::once(0..doc.len()).collect(),
        tail: Vec::new(),
    }
}

fn build_shard(
    doc: &[u8],
    outline: &ScanOutline,
    open_at_start: &[(Range<usize>, Range<usize>)],
    range: Range<usize>,
    open_at_end: Option<&[(Range<usize>, Range<usize>)]>,
) -> ShardInput {
    let mut pieces = Vec::with_capacity(2 + open_at_start.len());
    pieces.push(0..outline.root_open_end);
    // Replay cut ancestors' start tags verbatim (attributes included);
    // skip the root, whose start tag the shared prelude already carries.
    for (tag, _) in open_at_start.iter().skip(1) {
        pieces.push(tag.clone());
    }
    pieces.push(range);
    let mut tail = Vec::new();
    if let Some(open) = open_at_end {
        for (_, name) in open.iter().rev() {
            tail.extend_from_slice(b"</");
            tail.extend_from_slice(&doc[name.clone()]);
            tail.push(b'>');
        }
    }
    ShardInput { pieces, tail }
}

/// Can `guard` select the element whose ancestor-or-self name chain
/// (root element first) is `chain`? Standard NFA simulation: a state is
/// "the index of the next unconsumed step"; child steps consume exactly
/// one chain level, descendant steps one or more, `-or-self`/`self` axes
/// admit zero-level (ε) matches against the current context node. The
/// virtual document root is the initial context.
pub fn guard_matches_chain(guard: &GuardPath, chain: &[&[u8]]) -> bool {
    let steps = &guard.steps;
    let n = steps.len();
    let mut cur = vec![false; n + 1];
    cur[0] = true;
    eps_closure(steps, &mut cur, None);
    for &name in chain {
        let mut next = vec![false; n + 1];
        for s in 0..n {
            if !cur[s] {
                continue;
            }
            match steps[s].axis {
                EAxis::Child => {
                    if elem_test(&steps[s].test, name) {
                        next[s + 1] = true;
                    }
                }
                EAxis::Descendant | EAxis::DescendantOrSelf => {
                    if elem_test(&steps[s].test, name) {
                        next[s + 1] = true;
                    }
                    // The step may also match deeper.
                    next[s] = true;
                }
                EAxis::SelfAxis => {}
            }
        }
        eps_closure(steps, &mut next, Some(name));
        cur = next;
    }
    cur[n]
}

/// Zero-consumption transitions: `self::` and the self part of
/// `descendant-or-self::` match the context node without descending.
/// `ctx` is `None` for the virtual document root (matched only by
/// `node()`), `Some(name)` for an element.
fn eps_closure(steps: &[GStep], set: &mut [bool], ctx: Option<&[u8]>) {
    let n = steps.len();
    let mut changed = true;
    while changed {
        changed = false;
        for s in 0..n {
            if !set[s] || set[s + 1] {
                continue;
            }
            let eps = matches!(steps[s].axis, EAxis::SelfAxis | EAxis::DescendantOrSelf)
                && match ctx {
                    None => matches!(steps[s].test, GTest::AnyNode),
                    Some(name) => elem_test(&steps[s].test, name),
                };
            if eps {
                set[s + 1] = true;
                changed = true;
            }
        }
    }
}

fn elem_test(test: &GTest, name: &[u8]) -> bool {
    match test {
        GTest::Name(n) => n.as_bytes() == name,
        GTest::Star | GTest::AnyNode => true,
        GTest::Text => false,
    }
}
