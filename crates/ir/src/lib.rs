#![deny(unsafe_code)]
//! # gcx-ir — the compiled query program
//!
//! GCX's whole premise is that buffer minimization is decided at *compile
//! time*: the static rewriting inserts signOff statements before any data
//! arrives. This crate finishes that compilation pipeline by **lowering**
//! the normalized, signoff-rewritten query into a flat, index-based
//! [`Program`] that the runtime executes directly:
//!
//! ```text
//! parse ─► normalize ─► analyze/rewrite ─► lower ─► execute
//! (gcx-query)           (gcx-projection)   (here)   (gcx-core)
//! ```
//!
//! A [`Program`] is one arena of instructions ([`Instr`]: for-loops,
//! conditions, signOffs, output ops) plus
//!
//! * a pre-compiled [`EvalStep`] table shared by every path the evaluator
//!   walks (the [`PathPlan`] table indexes into it);
//! * the pre-compiled projection-NFA paths
//!   ([`gcx_projection::CompiledPaths`]) the stream preprojector runs;
//! * a **pre-interned symbol table**: every name the query mentions is
//!   interned once, at compile time. A run clones this table as its
//!   starting table — the query's symbols are thereby mapped into the
//!   stream tokenizer's table once at startup, and the evaluator performs
//!   zero interning and zero step lowering afterwards.
//!
//! The program is immutable after [`Program::compile`] and `Send + Sync`,
//! so one compiled artifact is shared across threads: the HTTP service's
//! registry stores it once per query, the multi-query driver hands it to
//! every worker, and all three engine configurations (gcx /
//! projection-only / full-buffering) execute the *same* program under
//! different execution options.

mod lower;
mod optimize;
mod program;
mod step;
mod walk;

pub use optimize::{cost_estimate, optimize, OptReport, PassStat};
pub use program::{
    fmt_number, AttrPlan, CondId, CondIr, Instr, InstrId, JoinPlan, OperandId, OperandIr, PathId,
    PathPlan, PlanRoot, Program, ProgramStats, StrId,
};
pub use step::{EAxis, ETest, EvalStep};
pub use walk::{walk, walk_from, IrVisitor, PathUse, WalkCtx};

/// Compile-time assertion that the shared artifact really is shareable.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Program>();
