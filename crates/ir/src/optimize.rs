//! The plan-level optimizer: a pass pipeline over the lowered
//! [`Program`].
//!
//! The lowering in `lower.rs` is deliberately 1:1 — it preserves the
//! rewritten query's shape so the listing reads like the query. The
//! passes here are the place where plan-level rewrites happen:
//!
//! 1. **step-fusion** — peephole over each path's step window: drop
//!    identity `self::node()` steps and collapse adjacent
//!    `descendant-or-self::node()` pairs (the cursor's emitted-set
//!    dedup makes the pair equivalent to one step, and a single
//!    descendant step scans without the dedup set entirely).
//! 2. **shared-steps** — rebuild the step arena so paths sharing a
//!    prefix (or any contiguous step window) share storage; the Q8
//!    plan, for example, spells `child::site` four times.
//! 3. **exists-cache** — an `exists(path)` probed inside a loop whose
//!    context does not depend on the innermost loop variable re-probes
//!    the same region once per iteration. Exists answers are definitive
//!    the moment they are produced (the probe blocks until a witness
//!    arrives or its region is exhausted, and roles keep witnesses
//!    alive while the probe can still run), so the answer is memoized
//!    per resolved context node in a cache slot.
//! 4. **hash-join** — the tentpole: a nested `for $v in /path` whose
//!    body is `if ($v/key = probe) then .. else ()` is the paper
//!    benchmark's Q8 shape, quadratic under cursor re-scans. The pass
//!    replaces the `for` with [`Instr::HashJoin`]: the executor builds
//!    a keyed index during the first execution (mirroring the original
//!    loop token for token) and probes it on every later one.
//!
//! Every pass is required to keep outputs **and** buffer peaks
//! bit-identical; the invariants each pass relies on are documented
//! inline and enforced end-to-end by `tests/optimizer_differential.rs`.

use crate::program::{
    CondId, CondIr, Instr, InstrId, JoinPlan, OperandIr, PathId, PlanRoot, Program, ProgramStats,
};
use crate::step::{EAxis, ETest, EvalStep};
use crate::walk::{walk, walk_from, IrVisitor, WalkCtx};
use gcx_query::ast::{CmpOp, VarId};

/// What one optimizer pass did, for `gcx explain` and `--stats-json`.
#[derive(Debug, Clone)]
pub struct PassStat {
    /// Pass name (`"step-fusion"`, ...).
    pub name: &'static str,
    /// Number of rewrites the pass performed (0 = no-op on this plan).
    pub changes: usize,
    /// One-line human-readable summary of the rewrites.
    pub detail: String,
}

/// The optimizer's report: per-pass diffs plus before/after program
/// shape, surfaced by `gcx explain` and the `--stats-json` schema.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Per-pass statistics, in pipeline order.
    pub passes: Vec<PassStat>,
    /// Program shape before any pass ran.
    pub before: ProgramStats,
    /// Program shape after the full pipeline.
    pub after: ProgramStats,
    /// Static cost estimate before optimization (see [`cost_estimate`]).
    pub cost_before: u64,
    /// Static cost estimate after optimization.
    pub cost_after: u64,
}

impl OptReport {
    /// Total rewrites across all passes.
    pub fn total_changes(&self) -> usize {
        self.passes.iter().map(|p| p.changes).sum()
    }

    /// Machine-readable fragment for `--stats-json`: a JSON array under
    /// `opt_passes` (name + change count per pass, pipeline order).
    pub fn passes_json(&self) -> String {
        let mut out = String::from("[");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pass\":\"{}\",\"changes\":{}}}",
                p.name, p.changes
            ));
        }
        out.push(']');
        out
    }
}

/// Run the full pass pipeline over a lowered program, returning the
/// optimized program and the report. The input program is not modified;
/// callers keep it for `--no-opt` runs and explain diffs.
pub fn optimize(input: &Program) -> (Program, OptReport) {
    let mut p = input.clone();
    let before = p.stats();
    let cost_before = cost_estimate(&p);
    let passes = vec![
        fuse_steps(&mut p),
        share_steps(&mut p),
        cache_exists(&mut p),
        hash_joins(&mut p),
    ];
    let after = p.stats();
    let cost_after = cost_estimate(&p);
    (
        p,
        OptReport {
            passes,
            before,
            after,
            cost_before,
            cost_after,
        },
    )
}

/// Static per-plan cost estimate: each instruction's weight multiplied
/// by 100 per enclosing loop level (a crude stand-in for expected
/// iteration counts). Only useful as a *relative* number — explain
/// prints it before/after so the join rewrite's effect is visible
/// without running anything.
pub fn cost_estimate(p: &Program) -> u64 {
    fn instr_cost(p: &Program, id: InstrId, depth: u32) -> u64 {
        let scale = 100u64.saturating_pow(depth.min(4));
        match p.instr(id) {
            Instr::Nop => 0,
            Instr::Text(_) => scale,
            Instr::Seq { first, len } => {
                let mut c = 0;
                for &item in p.seq_items(first, len) {
                    c += instr_cost(p, item, depth);
                }
                c
            }
            Instr::Element { content, .. } => scale + instr_cost(p, content, depth),
            Instr::For { path, body, .. } => {
                let steps = p.path(path).step_len as u64 + 1;
                scale * (10 + steps) + instr_cost(p, body, depth + 1)
            }
            // A built index amortizes the inner scan: charge the body at
            // the *current* depth (it runs once per candidate, not once
            // per inner node) plus a flat probe cost.
            Instr::HashJoin(j) => {
                let plan = p.join(j);
                scale * 12 + instr_cost(p, plan.then_branch, depth)
            }
            Instr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                scale * cond_cost(p, cond)
                    + instr_cost(p, then_branch, depth)
                    + instr_cost(p, else_branch, depth)
            }
            Instr::OutputPath(path) | Instr::Aggregate { path, .. } => {
                scale * (2 + p.path(path).step_len as u64)
            }
            Instr::SignOff { path, .. } => scale * (1 + p.path(path).step_len as u64),
        }
    }
    fn cond_cost(p: &Program, id: CondId) -> u64 {
        match p.cond(id) {
            CondIr::Const(_) => 1,
            CondIr::Not(a) => 1 + cond_cost(p, a),
            CondIr::And(a, b) | CondIr::Or(a, b) => 1 + cond_cost(p, a) + cond_cost(p, b),
            CondIr::Exists(path) => 2 + p.path(path).step_len as u64,
            // Memoized: charged as a lookup.
            CondIr::CachedExists { .. } => 1,
            CondIr::Compare { .. } | CondIr::StringFn { .. } => 4,
        }
    }
    instr_cost(p, p.root(), 0)
}

// ---- pass 1: step fusion ----------------------------------------------------

/// True for the identity step `self::node()` (no positional predicate).
fn is_self_node(s: EvalStep) -> bool {
    s.axis == EAxis::SelfAxis && s.test == ETest::AnyNode && s.pos.is_none()
}

/// True for `descendant-or-self::node()` (no positional predicate).
fn is_dos_node(s: EvalStep) -> bool {
    s.axis == EAxis::DescendantOrSelf && s.test == ETest::AnyNode && s.pos.is_none()
}

/// Paths referenced by `signOff` instructions. SignOff derivation
/// counting multiplies per-step derivations, so its paths must keep
/// their exact step sequence — fusion skips them.
fn signoff_paths(p: &Program) -> Vec<bool> {
    let mut used = vec![false; p.path_count()];
    for instr in &p.instrs {
        if let Instr::SignOff { path, .. } = *instr {
            used[path.index()] = true;
        }
    }
    used
}

/// Pass 1: peephole each evaluator path's steps.
///
/// Both rewrites preserve the evaluator cursor's match sequence (order
/// and multiplicity), verified by unit tests below:
/// - `self::node()` matches exactly the context node and can never
///   suspend, so dropping it changes nothing observable. It is kept
///   when it is the path's only step (a bare `$x/self::node()` binding
///   stays recognizable in the listing).
/// - `dos::node()/dos::node()` engages the cursor's emitted-set dedup,
///   which makes it emit every descendant-or-self node exactly once in
///   scan order — the same sequence a single `dos::node()` step emits
///   without any dedup set.
fn fuse_steps(p: &mut Program) -> PassStat {
    let skip = signoff_paths(p);
    let mut dropped_self = 0usize;
    let mut collapsed_dos = 0usize;
    let mut fused = 0usize;
    for (i, &skip_path) in skip.iter().enumerate() {
        if skip_path {
            continue;
        }
        let plan = p.paths[i];
        let steps: Vec<EvalStep> = p.path_steps(plan).to_vec();
        let mut out: Vec<EvalStep> = Vec::with_capacity(steps.len());
        for &s in &steps {
            if is_self_node(s) {
                dropped_self += 1;
                continue;
            }
            if is_dos_node(s) && out.last().copied().is_some_and(is_dos_node) {
                collapsed_dos += 1;
                continue;
            }
            out.push(s);
        }
        if out.is_empty() && !steps.is_empty() {
            // Keep a bare `self::node()` path intact.
            dropped_self -= steps.len();
            continue;
        }
        if out.len() == steps.len() {
            continue;
        }
        fused += 1;
        // Append the fused window; pass 2 rebuilds the arena and drops
        // the now-dead original window.
        let first = p.steps.len() as u32;
        let len = out.len() as u32;
        p.steps.extend(out);
        p.paths[i].first_step = first;
        p.paths[i].step_len = len;
    }
    PassStat {
        name: "step-fusion",
        changes: dropped_self + collapsed_dos,
        detail: format!(
            "{fused} paths rewritten ({dropped_self} self::node() dropped, \
             {collapsed_dos} adjacent dos::node() collapsed)"
        ),
    }
}

// ---- pass 2: shared step windows --------------------------------------------

/// Pass 2: rebuild the step arena so path plans share contiguous
/// windows. Lowering dedups *identical* paths only; distinct paths with
/// a common prefix (`/site/people/person` vs `/site/people/person/name`)
/// each get their own copy. Window reuse is purely a storage rewrite —
/// `first_step`/`step_len` move, the step sequences do not.
fn share_steps(p: &mut Program) -> PassStat {
    let before = p.steps.len();
    let mut arena: Vec<EvalStep> = Vec::with_capacity(before);
    for i in 0..p.paths.len() {
        let plan = p.paths[i];
        let want: Vec<EvalStep> = p.path_steps(plan).to_vec();
        if want.is_empty() {
            p.paths[i].first_step = 0;
            p.paths[i].step_len = 0;
            continue;
        }
        let n = want.len();
        let found =
            (0..arena.len().saturating_sub(n - 1)).find(|&at| arena[at..at + n] == want[..]);
        let first = match found {
            Some(at) => at,
            None => {
                // Extend a shared prefix off the arena's tail if one
                // lines up, otherwise append the whole window.
                let overlap = (1..n)
                    .rev()
                    .find(|&k| arena.ends_with(&want[..k]))
                    .unwrap_or(0);
                let at = arena.len() - overlap;
                arena.extend_from_slice(&want[overlap..]);
                at
            }
        };
        p.paths[i].first_step = first as u32;
        p.paths[i].step_len = n as u32;
    }
    let saved = before - arena.len();
    p.steps = arena;
    PassStat {
        name: "shared-steps",
        changes: saved,
        detail: format!(
            "step arena {before} -> {} ({saved} steps shared)",
            p.steps.len()
        ),
    }
}

// ---- pass 3: loop-invariant exists caching ----------------------------------

/// Pass 3: memoize `exists` probes that are loop-invariant under the
/// innermost enclosing `for`.
///
/// Soundness: an exists answer is definitive once produced. `true`
/// stays true — the role attached to the probed path keeps a witness
/// buffered for as long as the same context can be re-probed (signOffs
/// are placed after last use). `false` requires the probe's region to
/// be exhausted, which means every scanned subtree is closed, and
/// closed regions never gain nodes. The skipped re-probes were
/// non-blocking scans over buffered data whose only side effects are
/// transient cursor pins within a single resume, so peaks are
/// unchanged.
fn cache_exists(p: &mut Program) -> PassStat {
    /// Collects loop-invariant `exists` probes in traversal order; the
    /// mutation below assigns cache slots in that same order.
    struct Invariant {
        found: Vec<CondId>,
    }
    impl IrVisitor for Invariant {
        fn enter_instr(&mut self, p: &Program, id: InstrId, _ctx: &WalkCtx) -> bool {
            // A join's preserved fallback was vetted by its own pass;
            // probes inside it are evaluated by the join machinery, not
            // re-scanned per iteration.
            !matches!(p.instr(id), Instr::HashJoin(_))
        }
        fn visit_cond(&mut self, p: &Program, id: CondId, ctx: &WalkCtx) {
            if let CondIr::Exists(path) = p.cond(id) {
                let invariant = match p.path(path).root {
                    // Probing from the document root: same context on
                    // every iteration.
                    PlanRoot::Root => ctx.depth() > 0,
                    // Probing from an outer loop's binding: invariant
                    // under the innermost loop.
                    PlanRoot::Var(v) => ctx.innermost().is_some_and(|inner| inner != v),
                };
                if invariant {
                    self.found.push(id);
                }
            }
        }
    }
    let mut v = Invariant { found: Vec::new() };
    walk(p, &mut v);
    let cached = v.found.len();
    for id in v.found {
        let CondIr::Exists(path) = p.cond(id) else {
            unreachable!("collected conds are Exists nodes");
        };
        let slot = p.exists_slots;
        p.exists_slots += 1;
        p.conds[id.index()] = CondIr::CachedExists { path, slot };
    }
    PassStat {
        name: "exists-cache",
        changes: cached,
        detail: format!("{cached} loop-invariant exists probes memoized"),
    }
}

// ---- pass 4: hash join ------------------------------------------------------

/// True if the instruction subtree contains a `signOff`. A join's then
/// branch may contain anything *except* signOffs of roles the index
/// depends on; excluding all of them keeps the gate simple.
fn has_signoff(p: &Program, id: InstrId) -> bool {
    struct HasSignoff(bool);
    impl IrVisitor for HasSignoff {
        fn enter_instr(&mut self, p: &Program, id: InstrId, _ctx: &WalkCtx) -> bool {
            if matches!(p.instr(id), Instr::SignOff { .. }) {
                self.0 = true;
            }
            !self.0
        }
    }
    let mut v = HasSignoff(false);
    walk_from(p, id, &mut v);
    v.0
}

/// Roles signed off *inside* some `for` body. The join's multiplicity
/// snapshot (`role_count` at build time) stays valid only if the join
/// role's signOffs all sit in straight-line code — those run either
/// entirely before the outer loop starts or after it completes, never
/// between build and probe.
fn roles_signed_off_in_loops(p: &Program) -> Vec<bool> {
    struct InLoops(Vec<bool>);
    impl IrVisitor for InLoops {
        fn enter_instr(&mut self, p: &Program, id: InstrId, ctx: &WalkCtx) -> bool {
            if let Instr::SignOff { role, .. } = p.instr(id) {
                if ctx.depth() > 0 {
                    if self.0.len() <= role.index() {
                        self.0.resize(role.index() + 1, false);
                    }
                    self.0[role.index()] = true;
                }
            }
            true
        }
    }
    let mut v = InLoops(Vec::new());
    walk(p, &mut v);
    v.0
}

/// True if the operand is independent of `var` (a literal, or a path
/// rooted elsewhere) — i.e. usable as the probe side.
fn operand_independent_of(p: &Program, op: OperandIr, var: VarId) -> bool {
    match op {
        OperandIr::Lit { .. } => true,
        OperandIr::Path(path) => p.path(path).root != PlanRoot::Var(var),
    }
}

/// The key side of an operand pair: a path rooted at `var`.
fn operand_rooted_at(p: &Program, op: OperandIr, var: VarId) -> Option<PathId> {
    match op {
        OperandIr::Path(path) if p.path(path).root == PlanRoot::Var(var) => Some(path),
        _ => None,
    }
}

/// Pass 4: replace eligible nested for-loops with [`Instr::HashJoin`].
///
/// Eligibility (all checked structurally):
/// - the `for` sits inside at least one enclosing loop (otherwise it
///   runs once and there is nothing to amortize);
/// - its binding path is rooted at the document root with no attribute
///   selector — the indexed sequence is identical on every execution;
/// - its body is `if (key = probe) then .. else ()` where `key` is a
///   path rooted at the loop variable and `probe` does not mention it;
/// - the then branch contains no signOff, and the loop's binding role
///   is never signed off inside any loop (see
///   [`roles_signed_off_in_loops`]) — so the multiplicity recorded per
///   index entry at build time is still correct at probe time.
///
/// The executor builds the index during the join's *first* execution by
/// running the original iteration verbatim (same cursor, same operand
/// evaluation order, same then/else branching), teeing key values into
/// the index as a side effect — which is why outputs, token interleaving
/// and buffer peaks are identical by construction. Later executions
/// probe: stale index entries (generation-tagged node ids) divert to
/// `fallback`, the preserved original loop.
fn hash_joins(p: &mut Program) -> PassStat {
    struct Candidate {
        instr: InstrId,
        plan: JoinPlan,
    }
    /// Detects candidates in `leave_instr` — post-order, so inner loops
    /// are examined (and later rewritten) before outer ones.
    struct Finder<'a> {
        in_loop_roles: &'a [bool],
        out: Vec<Candidate>,
    }
    impl IrVisitor for Finder<'_> {
        fn enter_instr(&mut self, p: &Program, id: InstrId, _ctx: &WalkCtx) -> bool {
            // An existing join's fallback is the exact loop this pass
            // already rewrote — descending would re-detect it on every
            // re-optimization.
            !matches!(p.instr(id), Instr::HashJoin(_))
        }
        fn leave_instr(&mut self, p: &Program, id: InstrId, ctx: &WalkCtx) {
            let Instr::For {
                var,
                path,
                role,
                body,
            } = p.instr(id)
            else {
                return;
            };
            // The frame for this loop popped before `leave`, so depth()
            // counts *enclosing* loops only.
            if ctx.depth() == 0 {
                return;
            }
            let plan = p.path(path);
            if plan.root != PlanRoot::Root || plan.attr != crate::program::AttrPlan::None {
                return;
            }
            let Instr::If {
                cond,
                then_branch,
                else_branch,
            } = p.instr(body)
            else {
                return;
            };
            if !matches!(p.instr(else_branch), Instr::Nop) {
                return;
            }
            let CondIr::Compare {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = p.cond(cond)
            else {
                return;
            };
            let key_is_lhs = match (
                operand_rooted_at(p, p.operand(lhs), var),
                operand_rooted_at(p, p.operand(rhs), var),
            ) {
                (Some(_), None) => true,
                (None, Some(_)) => false,
                _ => return,
            };
            let probe = if key_is_lhs { rhs } else { lhs };
            if !operand_independent_of(p, p.operand(probe), var) {
                return;
            }
            if has_signoff(p, then_branch) {
                return;
            }
            if self
                .in_loop_roles
                .get(role.index())
                .copied()
                .unwrap_or(false)
            {
                return;
            }
            self.out.push(Candidate {
                instr: id,
                plan: JoinPlan {
                    var,
                    path,
                    role,
                    lhs,
                    rhs,
                    key_is_lhs,
                    then_branch,
                    // Patched below once the fallback copy exists.
                    fallback: id,
                },
            });
        }
    }
    let in_loop_roles = roles_signed_off_in_loops(p);
    let mut finder = Finder {
        in_loop_roles: &in_loop_roles,
        out: Vec::new(),
    };
    walk(p, &mut finder);
    let found = finder.out;
    let n = found.len();
    let mut names = Vec::new();
    for mut cand in found {
        // Preserve the original loop verbatim as the stale-index
        // fallback, then overwrite it in place with the join so every
        // existing reference picks the join up.
        let fallback = InstrId(p.instrs.len() as u32);
        p.instrs.push(p.instr(cand.instr));
        cand.plan.fallback = fallback;
        let j = p.joins.len() as u32;
        p.joins.push(cand.plan);
        p.instrs[cand.instr.index()] = Instr::HashJoin(j);
        names.push(format!("${}", p.var_name(cand.plan.var)));
    }
    PassStat {
        name: "hash-join",
        changes: n,
        detail: if n == 0 {
            "no eligible nested equality loops".to_string()
        } else {
            format!(
                "nested loops over {} now build+probe a keyed index",
                names.join(", ")
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_projection::analyze;
    use gcx_query::compile as compile_query;

    fn optimized(q: &str) -> (Program, Program, OptReport) {
        let query = compile_query(q).expect("query compiles");
        let analysis = analyze(&query);
        let p = Program::compile(&query, &analysis);
        let (opt, report) = optimize(&p);
        (p, opt, report)
    }

    fn pass<'r>(r: &'r OptReport, name: &str) -> &'r PassStat {
        r.passes.iter().find(|p| p.name == name).expect("pass ran")
    }

    #[test]
    fn self_node_steps_are_dropped() {
        let (_, opt, report) =
            optimized("for $x in /site/self::node()/child::item return <i>{$x/child::name}</i>");
        assert!(pass(&report, "step-fusion").changes >= 1);
        // The fused binding path no longer spells the self step.
        let listing = opt.listing();
        assert!(
            !listing.contains("= self::node()"),
            "self step survived:\n{listing}"
        );
    }

    #[test]
    fn adjacent_dos_steps_collapse() {
        let (plain, opt, report) = optimized(
            "for $x in /descendant-or-self::node()/descendant-or-self::node() return <n/>",
        );
        assert_eq!(pass(&report, "step-fusion").changes, 1);
        assert!(opt.stats().steps < plain.stats().steps);
    }

    #[test]
    fn bare_self_node_path_is_kept() {
        let (plain, opt, _) =
            optimized("for $x in /a return for $y in $x/self::node() return <n/>");
        // `$x/self::node()` must keep its only step.
        assert_eq!(plain.stats().steps, opt.stats().steps);
        assert!(opt.listing().contains("= self::node()"));
    }

    #[test]
    fn shared_prefixes_share_arena_windows() {
        let (plain, opt, report) = optimized(
            "for $x in /site/people/person return <p>{$x/child::name}</p>, \
             for $y in /site/people/person/child::address return <a/>",
        );
        let shared = pass(&report, "shared-steps");
        assert!(shared.changes > 0, "no sharing: {}", shared.detail);
        assert!(opt.stats().steps < plain.stats().steps);
        // Sharing moves windows but never changes any path's steps.
        for i in 0..plain.path_count() {
            let id = crate::PathId(i as u32);
            assert_eq!(plain.path_display(id), opt.path_display(id), "path p{i}");
        }
    }

    #[test]
    fn loop_invariant_exists_is_cached() {
        let (_, opt, report) = optimized(
            "for $x in /site/person return \
               if (exists(/site/open_auctions/auction)) then <y/> else <n/>",
        );
        assert_eq!(pass(&report, "exists-cache").changes, 1);
        assert_eq!(opt.exists_slots(), 1);
        assert!(opt.listing().contains("[cache slot 0]"));
    }

    #[test]
    fn innermost_var_exists_is_not_cached() {
        let (_, opt, report) = optimized(
            "for $x in /site/person return \
               if (exists($x/child::name)) then <y/> else <n/>",
        );
        assert_eq!(pass(&report, "exists-cache").changes, 0);
        assert_eq!(opt.exists_slots(), 0);
    }

    #[test]
    fn q8_shape_becomes_a_hash_join() {
        let (plain, opt, report) = optimized(
            "for $p in /site/people/person return \
               for $t in /site/closed_auctions/closed_auction return \
                 if ($t/child::buyer/@person = $p/@id) then <item/> else ()",
        );
        assert_eq!(pass(&report, "hash-join").changes, 1);
        assert_eq!(opt.join_count(), 1);
        let j = opt.join(0);
        assert!(j.key_is_lhs);
        // The fallback is a verbatim copy of the original For.
        assert!(matches!(opt.instr(j.fallback), Instr::For { .. }));
        assert!(report.cost_after < report.cost_before);
        assert_eq!(plain.join_count(), 0);
    }

    #[test]
    fn top_level_loop_is_not_a_join() {
        let (_, _, report) = optimized(
            "for $t in /site/closed_auction return \
               if ($t/child::buyer/@person = \"p0\") then <i/> else ()",
        );
        assert_eq!(pass(&report, "hash-join").changes, 0);
    }

    #[test]
    fn var_rooted_inner_path_is_not_a_join() {
        let (_, _, report) = optimized(
            "for $p in /site/people/person return \
               for $t in $p/child::watches/child::watch return \
                 if ($t/@id = $p/@id) then <i/> else ()",
        );
        assert_eq!(pass(&report, "hash-join").changes, 0);
    }

    #[test]
    fn join_with_else_branch_is_rejected() {
        let (_, _, report) = optimized(
            "for $p in /site/people/person return \
               for $t in /site/closed_auctions/closed_auction return \
                 if ($t/child::buyer/@person = $p/@id) then <item/> else <miss/>",
        );
        assert_eq!(pass(&report, "hash-join").changes, 0);
    }

    #[test]
    fn optimizing_twice_is_idempotent_on_joins() {
        let (_, opt, _) = optimized(
            "for $p in /site/people/person return \
               for $t in /site/closed_auctions/closed_auction return \
                 if ($t/child::buyer/@person = $p/@id) then <item/> else ()",
        );
        let (opt2, report2) = optimize(&opt);
        assert_eq!(pass(&report2, "hash-join").changes, 0);
        assert_eq!(opt2.join_count(), opt.join_count());
    }
}
