//! The flat program representation and its accessors.

use crate::step::{EAxis, ETest, EvalStep};
use gcx_projection::CompiledPaths;
use gcx_query::ast::{AggFunc, CmpOp, RoleId, StrFunc, VarId};
use gcx_xml::{Symbol, SymbolTable};
use std::fmt::Write as _;

/// Index of an instruction in the program's instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrId(pub u32);

/// Index of a condition in the program's condition arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CondId(pub u32);

/// Index of a comparison operand in the program's operand arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandId(pub u32);

/// Index of a path plan in the program's path table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(pub u32);

/// Index of an interned string in the program's string arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrId(pub u32);

macro_rules! index_impl {
    ($($t:ty),*) => {$(
        impl $t {
            /// Index into the owning arena.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    )*};
}
index_impl!(InstrId, CondId, OperandId, PathId, StrId);

/// What a compiled path is rooted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanRoot {
    /// The document root (`/...`).
    Root,
    /// A for-variable's current binding (`$x/...`).
    Var(VarId),
}

/// Attribute selector of an attribute-terminated path (split off the step
/// sequence at lowering time; the remaining steps select elements only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrPlan {
    /// The path does not end in an attribute step.
    None,
    /// `@*` — every attribute of the selected elements.
    Any,
    /// `@name` — one attribute by (pre-interned) name.
    Name(Symbol),
}

/// One compiled path: root, a range of the shared [`EvalStep`] arena, and
/// the attribute selector. Identical paths are deduplicated at lowering
/// time, so a path that appears several times in a query (or shares its
/// element prefix with an attribute-terminated variant) compiles once.
#[derive(Debug, Clone, Copy)]
pub struct PathPlan {
    /// Context the path starts from.
    pub root: PlanRoot,
    /// First step in the program's step arena (see
    /// [`Program::path_steps`]).
    pub first_step: u32,
    /// Number of element steps.
    pub step_len: u32,
    /// Trailing attribute selector, if any.
    pub attr: AttrPlan,
}

impl PathPlan {
    /// True when the path has at least one step (element or attribute) —
    /// the signOff wait rule keys on this.
    pub fn has_steps(&self) -> bool {
        self.step_len > 0 || self.attr != AttrPlan::None
    }
}

/// One instruction of the flat program. All operands are arena indices;
/// instructions are `Copy` so the executor reads them by value.
#[derive(Debug, Clone, Copy)]
pub enum Instr {
    /// `()` — no output.
    Nop,
    /// A sequence: execute `len` children starting at `first` in
    /// [`Program::seq_items`].
    Seq {
        /// First child in the sequence-item arena.
        first: u32,
        /// Number of children.
        len: u32,
    },
    /// Emit literal text (string literals and pre-formatted number
    /// literals both lower to this).
    Text(StrId),
    /// Emit a constructed element around its content.
    Element {
        /// Element name.
        name: StrId,
        /// First literal attribute in [`Program::attr_pairs`].
        attrs_first: u32,
        /// Number of literal attributes.
        attrs_len: u32,
        /// Content instruction.
        content: InstrId,
    },
    /// `for $var in path return body`.
    For {
        /// The bound variable.
        var: VarId,
        /// The binding path.
        path: PathId,
        /// The variable's binding role (resolved at lowering time).
        role: RoleId,
        /// Loop body.
        body: InstrId,
    },
    /// `if (cond) then .. else ..`.
    If {
        /// Condition.
        cond: CondId,
        /// Then branch.
        then_branch: InstrId,
        /// Else branch.
        else_branch: InstrId,
    },
    /// A path in output position: emit the matching nodes.
    OutputPath(PathId),
    /// Aggregate over a path, emitting a single text value.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Path argument.
        path: PathId,
    },
    /// `signOff(path, role)` — the compile-time-placed buffer-minimization
    /// statement.
    SignOff {
        /// Nodes losing the role.
        path: PathId,
        /// The role being signed off.
        role: RoleId,
    },
    /// Optimizer-emitted join: a nested `for` whose body is an
    /// equality-filtered `if` runs through a keyed index over the inner
    /// sequence instead of re-scanning the cursor per outer binding. The
    /// payload indexes [`Program::join`].
    HashJoin(u32),
}

/// The side table of one [`Instr::HashJoin`]: everything the executor
/// needs to build the index on the first execution (mirroring the
/// original loop exactly) and to probe it on every later one. The
/// original `for` instruction is preserved as `fallback` so the executor
/// can bail out to the unoptimized loop if index entries went stale.
#[derive(Debug, Clone, Copy)]
pub struct JoinPlan {
    /// The inner loop variable.
    pub var: VarId,
    /// The inner binding path (always rooted at [`PlanRoot::Root`]).
    pub path: PathId,
    /// The inner variable's binding role.
    pub role: RoleId,
    /// Left operand of the join's `=` comparison.
    pub lhs: OperandId,
    /// Right operand of the join's `=` comparison.
    pub rhs: OperandId,
    /// Which operand is the key side (the one rooted at `var`); the other
    /// operand is the probe side.
    pub key_is_lhs: bool,
    /// The `then` branch executed per matching binding.
    pub then_branch: InstrId,
    /// The original `for` instruction, kept verbatim for the stale-index
    /// fallback.
    pub fallback: InstrId,
}

impl JoinPlan {
    /// The probe-side operand (the one *not* rooted at the join variable).
    #[inline]
    pub fn probe(&self) -> OperandId {
        if self.key_is_lhs {
            self.rhs
        } else {
            self.lhs
        }
    }
}

/// One compiled condition.
#[derive(Debug, Clone, Copy)]
pub enum CondIr {
    /// `true()` / `false()`.
    Const(bool),
    /// `not(c)`.
    Not(CondId),
    /// `c1 and c2`.
    And(CondId, CondId),
    /// `c1 or c2`.
    Or(CondId, CondId),
    /// `exists(path)`.
    Exists(PathId),
    /// `exists(path)` whose answer is loop-invariant under the innermost
    /// enclosing `for`: the executor memoizes the answer per resolved
    /// context node in cache slot `slot` (see [`Program::exists_slots`]).
    /// Exists answers are definitive once produced (the probe blocks until
    /// a witness arrives or the region is exhausted), so re-probes with
    /// the same context can reuse them.
    CachedExists {
        /// The probed path.
        path: PathId,
        /// Cache slot index, `0..Program::exists_slots()`.
        slot: u32,
    },
    /// General comparison with existential sequence semantics.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: OperandId,
        /// Right operand.
        rhs: OperandId,
    },
    /// String predicate with existential sequence semantics.
    StringFn {
        /// Which predicate.
        func: StrFunc,
        /// The string searched in.
        haystack: OperandId,
        /// The string searched for.
        needle: OperandId,
    },
}

/// One compiled comparison operand.
#[derive(Debug, Clone, Copy)]
pub enum OperandIr {
    /// A literal, atomized at compile time: its text plus the numeric
    /// value it parses to (if any).
    Lit {
        /// Canonical text form.
        text: StrId,
        /// Pre-parsed numeric form.
        num: Option<f64>,
    },
    /// Node sequence selected by a path; atomized to string values at
    /// runtime.
    Path(PathId),
}

/// A query compiled to its executable form: flat instruction, condition,
/// operand, path and step arenas plus the pre-interned symbol table and
/// the pre-compiled projection-NFA paths. Immutable after
/// [`Program::compile`]; `Send + Sync`, so one instance is shared across
/// request threads and batch workers.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) symbols: SymbolTable,
    pub(crate) instrs: Vec<Instr>,
    pub(crate) seq_items: Vec<InstrId>,
    pub(crate) conds: Vec<CondIr>,
    pub(crate) operands: Vec<OperandIr>,
    pub(crate) paths: Vec<PathPlan>,
    pub(crate) steps: Vec<EvalStep>,
    pub(crate) strings: Vec<Box<str>>,
    pub(crate) attrs: Vec<(StrId, StrId)>,
    pub(crate) matcher_paths: CompiledPaths,
    pub(crate) var_names: Vec<String>,
    pub(crate) root: InstrId,
    pub(crate) joins: Vec<JoinPlan>,
    pub(crate) exists_slots: u32,
}

/// Size counters of a compiled program, for `--stats-json` and benches.
#[derive(Debug, Clone, Copy)]
pub struct ProgramStats {
    /// Instructions in the arena.
    pub instructions: usize,
    /// Pre-compiled evaluator steps.
    pub steps: usize,
    /// Distinct compiled paths.
    pub paths: usize,
    /// Conditions.
    pub conds: usize,
    /// Projection-NFA paths (one per role).
    pub matcher_paths: usize,
    /// Pre-interned symbols.
    pub symbols: usize,
}

impl ProgramStats {
    /// Machine-readable form (hand-rolled JSON; the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"instructions\":{},\"steps\":{},\"paths\":{},\"conds\":{},\
             \"matcher_paths\":{},\"symbols\":{}}}",
            self.instructions, self.steps, self.paths, self.conds, self.matcher_paths, self.symbols
        )
    }
}

impl Program {
    /// The root instruction (the whole rewritten query).
    #[inline]
    pub fn root(&self) -> InstrId {
        self.root
    }

    /// Read one instruction.
    #[inline]
    pub fn instr(&self, id: InstrId) -> Instr {
        self.instrs[id.index()]
    }

    /// Children of a [`Instr::Seq`].
    #[inline]
    pub fn seq_items(&self, first: u32, len: u32) -> &[InstrId] {
        &self.seq_items[first as usize..(first + len) as usize]
    }

    /// Read one condition.
    #[inline]
    pub fn cond(&self, id: CondId) -> CondIr {
        self.conds[id.index()]
    }

    /// Read one operand.
    #[inline]
    pub fn operand(&self, id: OperandId) -> OperandIr {
        self.operands[id.index()]
    }

    /// Read one path plan.
    #[inline]
    pub fn path(&self, id: PathId) -> PathPlan {
        self.paths[id.index()]
    }

    /// Number of compiled paths.
    #[inline]
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Read one join plan (payload of [`Instr::HashJoin`]).
    #[inline]
    pub fn join(&self, idx: u32) -> JoinPlan {
        self.joins[idx as usize]
    }

    /// Number of join plans (zero on unoptimized programs).
    #[inline]
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }

    /// Number of exists-cache slots referenced by
    /// [`CondIr::CachedExists`] (zero on unoptimized programs).
    #[inline]
    pub fn exists_slots(&self) -> u32 {
        self.exists_slots
    }

    /// The element steps of a path plan.
    #[inline]
    pub fn path_steps(&self, plan: PathPlan) -> &[EvalStep] {
        &self.steps[plan.first_step as usize..(plan.first_step + plan.step_len) as usize]
    }

    /// Resolve an interned program string.
    #[inline]
    pub fn str_(&self, id: StrId) -> &str {
        &self.strings[id.index()]
    }

    /// Literal attributes of an [`Instr::Element`].
    #[inline]
    pub fn attr_pairs(&self, first: u32, len: u32) -> &[(StrId, StrId)] {
        &self.attrs[first as usize..(first + len) as usize]
    }

    /// The pre-interned symbol table. A run clones this as its starting
    /// table, which maps every query symbol into the stream tokenizer's
    /// table once — the only symbol work a run performs.
    #[inline]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The pre-compiled projection-NFA paths (compiled against
    /// [`Program::symbols`]); the preprojector builds its per-run matcher
    /// state from these without re-lowering anything.
    #[inline]
    pub fn matcher_paths(&self) -> &CompiledPaths {
        &self.matcher_paths
    }

    /// Name of a for-variable (for diagnostics).
    #[inline]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.var_names[var.index()]
    }

    /// Number of for-variables (the executor's environment size).
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Size counters.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            instructions: self.instrs.len(),
            steps: self.steps.len(),
            paths: self.paths.len(),
            conds: self.conds.len(),
            matcher_paths: self.matcher_paths.len(),
            symbols: self.symbols.len(),
        }
    }

    /// Human-readable program listing: instructions, conditions, path
    /// plans and the step table, with arena indices (`%i` instructions,
    /// `c` conditions, `o` operands, `p` paths, `s` steps). Surfaced by
    /// `gcx explain` and covered by a golden-file test.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        let st = self.stats();
        let _ = writeln!(
            out,
            "program: {} instrs, {} conds, {} paths, {} steps, {} matcher paths, {} symbols; root=%{}",
            st.instructions, st.conds, st.paths, st.steps, st.matcher_paths, st.symbols,
            self.root.0
        );
        out.push_str("instrs:\n");
        for (i, instr) in self.instrs.iter().enumerate() {
            let _ = write!(out, "  %{i:<3} = ");
            match *instr {
                Instr::Nop => out.push_str("nop"),
                Instr::Seq { first, len } => {
                    out.push_str("seq [");
                    for (k, item) in self.seq_items(first, len).iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "%{}", item.0);
                    }
                    out.push(']');
                }
                Instr::Text(s) => {
                    let _ = write!(out, "text {:?}", self.str_(s));
                }
                Instr::Element {
                    name,
                    attrs_first,
                    attrs_len,
                    content,
                } => {
                    let _ = write!(out, "element <{}", self.str_(name));
                    for &(k, v) in self.attr_pairs(attrs_first, attrs_len) {
                        let _ = write!(out, " {}={:?}", self.str_(k), self.str_(v));
                    }
                    let _ = write!(out, "> content=%{}", content.0);
                }
                Instr::For {
                    var,
                    path,
                    role,
                    body,
                } => {
                    let _ = write!(
                        out,
                        "for ${} in p{} role={role} body=%{}",
                        self.var_name(var),
                        path.0,
                        body.0
                    );
                }
                Instr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let _ = write!(
                        out,
                        "if c{} then %{} else %{}",
                        cond.0, then_branch.0, else_branch.0
                    );
                }
                Instr::OutputPath(p) => {
                    let _ = write!(out, "output p{}", p.0);
                }
                Instr::Aggregate { func, path } => {
                    let _ = write!(out, "aggregate {}(p{})", func.name(), path.0);
                }
                Instr::SignOff { path, role } => {
                    let _ = write!(out, "signOff(p{}, {role})", path.0);
                }
                Instr::HashJoin(j) => {
                    let _ = write!(out, "hashjoin j{j}");
                }
            }
            out.push('\n');
        }
        if !self.joins.is_empty() {
            out.push_str("joins:\n");
            for (i, j) in self.joins.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  j{i:<3} = for ${} in p{} role={} key={} probe={} then=%{} fallback=%{}",
                    self.var_name(j.var),
                    j.path.0,
                    j.role,
                    self.operand_display(if j.key_is_lhs { j.lhs } else { j.rhs }),
                    self.operand_display(j.probe()),
                    j.then_branch.0,
                    j.fallback.0,
                );
            }
        }
        if !self.conds.is_empty() {
            out.push_str("conds:\n");
            for (i, c) in self.conds.iter().enumerate() {
                let _ = write!(out, "  c{i:<3} = ");
                match *c {
                    CondIr::Const(b) => {
                        let _ = write!(out, "{b}()");
                    }
                    CondIr::Not(a) => {
                        let _ = write!(out, "not c{}", a.0);
                    }
                    CondIr::And(a, b) => {
                        let _ = write!(out, "c{} and c{}", a.0, b.0);
                    }
                    CondIr::Or(a, b) => {
                        let _ = write!(out, "c{} or c{}", a.0, b.0);
                    }
                    CondIr::Exists(p) => {
                        let _ = write!(out, "exists p{}", p.0);
                    }
                    CondIr::CachedExists { path, slot } => {
                        let _ = write!(out, "exists p{} [cache slot {slot}]", path.0);
                    }
                    CondIr::Compare { op, lhs, rhs } => {
                        let _ = write!(
                            out,
                            "compare {} {op:?} {}",
                            self.operand_display(lhs),
                            self.operand_display(rhs)
                        );
                    }
                    CondIr::StringFn {
                        func,
                        haystack,
                        needle,
                    } => {
                        let _ = write!(
                            out,
                            "{}({}, {})",
                            func.name(),
                            self.operand_display(haystack),
                            self.operand_display(needle)
                        );
                    }
                }
                out.push('\n');
            }
        }
        out.push_str("paths:\n");
        for (i, p) in self.paths.iter().enumerate() {
            let root = match p.root {
                PlanRoot::Root => "/".to_string(),
                PlanRoot::Var(v) => format!("${}", self.var_name(v)),
            };
            let attr = match p.attr {
                AttrPlan::None => String::new(),
                AttrPlan::Any => "/@*".to_string(),
                AttrPlan::Name(s) => format!("/@{}", self.symbols.resolve(s)),
            };
            let _ = writeln!(
                out,
                "  p{i:<3} = root={root} steps=s{}..s{}{attr}",
                p.first_step,
                p.first_step + p.step_len,
            );
        }
        out.push_str("steps:\n");
        for (i, s) in self.steps.iter().enumerate() {
            let axis = match s.axis {
                EAxis::Child => "child",
                EAxis::Descendant => "descendant",
                EAxis::DescendantOrSelf => "descendant-or-self",
                EAxis::SelfAxis => "self",
            };
            let test = match s.test {
                ETest::Name(sym) => self.symbols.resolve(sym).to_string(),
                ETest::Star => "*".to_string(),
                ETest::Text => "text()".to_string(),
                ETest::AnyNode => "node()".to_string(),
            };
            let pos = s.pos.map(|k| format!("[{k}]")).unwrap_or_default();
            let _ = writeln!(out, "  s{i:<3} = {axis}::{test}{pos}");
        }
        out
    }

    /// Human-readable form of one compiled path (`$b/child::title`,
    /// `/descendant-or-self::node()/@id`) — the plan-level span names the
    /// observability layer attaches to traces and per-query metrics.
    pub fn path_display(&self, id: PathId) -> String {
        let p = self.path(id);
        let mut out = match p.root {
            PlanRoot::Root => String::new(),
            PlanRoot::Var(v) => format!("${}", self.var_name(v)),
        };
        if p.step_len == 0 && p.attr == AttrPlan::None && out.is_empty() {
            out.push('/');
        }
        for s in self.path_steps(p) {
            let axis = match s.axis {
                EAxis::Child => "child",
                EAxis::Descendant => "descendant",
                EAxis::DescendantOrSelf => "descendant-or-self",
                EAxis::SelfAxis => "self",
            };
            let test = match s.test {
                ETest::Name(sym) => self.symbols.resolve(sym).to_string(),
                ETest::Star => "*".to_string(),
                ETest::Text => "text()".to_string(),
                ETest::AnyNode => "node()".to_string(),
            };
            let _ = write!(out, "/{axis}::{test}");
            if let Some(k) = s.pos {
                let _ = write!(out, "[{k}]");
            }
        }
        match p.attr {
            AttrPlan::None => {}
            AttrPlan::Any => out.push_str("/@*"),
            AttrPlan::Name(s) => {
                let _ = write!(out, "/@{}", self.symbols.resolve(s));
            }
        }
        out
    }

    fn operand_display(&self, id: OperandId) -> String {
        match self.operand(id) {
            OperandIr::Lit { text, .. } => format!("{:?}", self.str_(text)),
            OperandIr::Path(p) => format!("p{}", p.0),
        }
    }
}

/// Print a number the way the output model expects (no trailing `.0`).
/// Used at lowering time (number literals pre-format to text) and at
/// runtime (aggregates, atomization).
pub fn fmt_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_number(3.0), "3");
        assert_eq!(fmt_number(3.5), "3.5");
        assert_eq!(fmt_number(0.0), "0");
        assert_eq!(fmt_number(-2.0), "-2");
    }
}
