//! A shared, read-only traversal of the compiled [`Program`].
//!
//! Several layers walk the instruction tree with the same scaffolding
//! and different questions: the optimizer looks for signOffs and join
//! candidates, the shard-safety analysis checks that loop bodies stay
//! confined to their binding, and the streamability classifier assigns
//! buffer-bound classes. Before this module each walk re-implemented
//! the recursion (and each had to remember the same traps: `Seq` item
//! order, `for` scoping, what a `HashJoin` hides). The driver here owns
//! the recursion once; callers implement [`IrVisitor`] and read the
//! loop context off [`WalkCtx`].
//!
//! Traversal order is fixed and documented, because two users depend on
//! it: the exists-cache pass numbers its slots in visit order, and the
//! join pass collects candidates in post-order (`leave_instr`) so inner
//! loops are rewritten before outer ones. For every instruction:
//! `enter_instr` first (return `false` to skip the subtree), then its
//! paths/conditions/children — `Seq` items in sequence order, `If` as
//! condition tree, then branch, else branch, `For` as binding path,
//! then the body inside the new frame — and `leave_instr` last.
//!
//! A [`Instr::HashJoin`] is walked through its `fallback`: the
//! preserved original `for`, whose body covers the join's then branch,
//! so by default a visitor sees the loop exactly as it was before the
//! rewrite. Visitors that must treat joins specially (or must not see
//! the fallback twice) intercept them in `enter_instr` and return
//! `false`.

use crate::program::{CondId, CondIr, Instr, InstrId, OperandIr, PathId, Program};
use gcx_query::ast::VarId;

/// Why a path is being visited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathUse {
    /// The binding path of a `for` (visited before its frame opens).
    Binding,
    /// A path in output position: the matching nodes are emitted.
    Output,
    /// The argument of an aggregate.
    Aggregate,
    /// The path of a `signOff` statement — buffer-local, never output.
    SignOff,
    /// The path probed by `exists` (cached or not).
    Exists,
    /// A path operand of a comparison or string predicate.
    Operand,
}

/// Traversal state: the stack of `for` frames enclosing the current
/// visit, outermost first.
#[derive(Debug, Default)]
pub struct WalkCtx {
    frames: Vec<(VarId, PathId)>,
}

impl WalkCtx {
    /// Number of enclosing loops.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.frames.len() as u32
    }

    /// The innermost enclosing loop variable, if any.
    #[inline]
    pub fn innermost(&self) -> Option<VarId> {
        self.frames.last().map(|&(v, _)| v)
    }

    /// Whether `v` is bound by an enclosing loop. Frames pop when their
    /// body is left, so a sibling later in a `Seq` never sees them.
    #[inline]
    pub fn in_scope(&self, v: VarId) -> bool {
        self.frames.iter().any(|&(f, _)| f == v)
    }

    /// The enclosing loop frames (variable, binding path), outermost
    /// first.
    #[inline]
    pub fn frames(&self) -> &[(VarId, PathId)] {
        &self.frames
    }
}

/// A visitor over the instruction tree. Every hook has a default no-op
/// body, so an implementation states only the events it cares about.
pub trait IrVisitor {
    /// Called before an instruction's paths, conditions and children.
    /// Return `false` to skip the whole subtree, including the matching
    /// [`IrVisitor::leave_instr`].
    fn enter_instr(&mut self, _p: &Program, _id: InstrId, _ctx: &WalkCtx) -> bool {
        true
    }

    /// Called after an instruction's children (post-order position).
    fn leave_instr(&mut self, _p: &Program, _id: InstrId, _ctx: &WalkCtx) {}

    /// Called for every condition node, parents before children.
    fn visit_cond(&mut self, _p: &Program, _id: CondId, _ctx: &WalkCtx) {}

    /// Called for every path reference, with the position it is used in.
    fn visit_path(&mut self, _p: &Program, _id: PathId, _use_: PathUse, _ctx: &WalkCtx) {}
}

/// Walk the whole program from its root.
pub fn walk<V: IrVisitor>(p: &Program, v: &mut V) {
    let mut ctx = WalkCtx::default();
    walk_instr(p, p.root(), v, &mut ctx);
}

/// Walk one instruction subtree. The context starts empty: `depth()`
/// counts loops *below* `id`, not loops enclosing it in the program.
pub fn walk_from<V: IrVisitor>(p: &Program, id: InstrId, v: &mut V) {
    let mut ctx = WalkCtx::default();
    walk_instr(p, id, v, &mut ctx);
}

fn walk_instr<V: IrVisitor>(p: &Program, id: InstrId, v: &mut V, ctx: &mut WalkCtx) {
    if !v.enter_instr(p, id, ctx) {
        return;
    }
    match p.instr(id) {
        Instr::Nop | Instr::Text(_) => {}
        Instr::Seq { first, len } => {
            for &item in p.seq_items(first, len) {
                walk_instr(p, item, v, ctx);
            }
        }
        Instr::Element { content, .. } => walk_instr(p, content, v, ctx),
        Instr::For {
            var, path, body, ..
        } => {
            v.visit_path(p, path, PathUse::Binding, ctx);
            ctx.frames.push((var, path));
            walk_instr(p, body, v, ctx);
            ctx.frames.pop();
        }
        Instr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            walk_cond(p, cond, v, ctx);
            walk_instr(p, then_branch, v, ctx);
            walk_instr(p, else_branch, v, ctx);
        }
        Instr::OutputPath(path) => v.visit_path(p, path, PathUse::Output, ctx),
        Instr::Aggregate { path, .. } => v.visit_path(p, path, PathUse::Aggregate, ctx),
        Instr::SignOff { path, .. } => v.visit_path(p, path, PathUse::SignOff, ctx),
        Instr::HashJoin(j) => walk_instr(p, p.join(j).fallback, v, ctx),
    }
    v.leave_instr(p, id, ctx);
}

fn walk_cond<V: IrVisitor>(p: &Program, id: CondId, v: &mut V, ctx: &mut WalkCtx) {
    v.visit_cond(p, id, ctx);
    match p.cond(id) {
        CondIr::Const(_) => {}
        CondIr::Not(a) => walk_cond(p, a, v, ctx),
        CondIr::And(a, b) | CondIr::Or(a, b) => {
            walk_cond(p, a, v, ctx);
            walk_cond(p, b, v, ctx);
        }
        CondIr::Exists(path) | CondIr::CachedExists { path, .. } => {
            v.visit_path(p, path, PathUse::Exists, ctx);
        }
        CondIr::Compare { lhs, rhs, .. }
        | CondIr::StringFn {
            haystack: lhs,
            needle: rhs,
            ..
        } => {
            for op in [lhs, rhs] {
                if let OperandIr::Path(path) = p.operand(op) {
                    v.visit_path(p, path, PathUse::Operand, ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_projection::analyze;
    use gcx_query::compile as compile_query;

    fn program(q: &str) -> Program {
        let query = compile_query(q).expect("query compiles");
        let analysis = analyze(&query);
        Program::compile(&query, &analysis)
    }

    /// Records every event in order, as compact strings.
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl IrVisitor for Recorder {
        fn enter_instr(&mut self, p: &Program, id: InstrId, ctx: &WalkCtx) -> bool {
            let kind = match p.instr(id) {
                Instr::Nop => "nop",
                Instr::Text(_) => "text",
                Instr::Seq { .. } => "seq",
                Instr::Element { .. } => "element",
                Instr::For { .. } => "for",
                Instr::If { .. } => "if",
                Instr::OutputPath(_) => "output",
                Instr::Aggregate { .. } => "aggregate",
                Instr::SignOff { .. } => "signoff",
                Instr::HashJoin(_) => "hashjoin",
            };
            self.events.push(format!("enter {kind}@{}", ctx.depth()));
            true
        }

        fn leave_instr(&mut self, p: &Program, id: InstrId, ctx: &WalkCtx) {
            if let Instr::For { .. } = p.instr(id) {
                self.events.push(format!("leave for@{}", ctx.depth()));
            }
        }

        fn visit_path(&mut self, p: &Program, id: PathId, use_: PathUse, ctx: &WalkCtx) {
            self.events
                .push(format!("{use_:?}@{} {}", ctx.depth(), p.path_display(id)));
        }
    }

    #[test]
    fn frames_open_after_binding_and_close_before_leave() {
        let mut v = Recorder::default();
        walk(
            &program("for $a in /x/y return for $b in $a/z return $b/w"),
            &mut v,
        );
        let log = v.events.join("\n");
        // The binding path is visited at the *enclosing* depth; the body
        // runs one deeper; leave fires after the frame pops.
        assert!(log.contains("Binding@0 /child::x/child::y"), "{log}");
        assert!(log.contains("Binding@1 $a/child::z"), "{log}");
        assert!(log.contains("Output@2 $b/child::w"), "{log}");
        assert!(log.contains("leave for@1"), "{log}");
        assert!(log.contains("leave for@0"), "{log}");
    }

    #[test]
    fn cond_paths_are_visited_with_their_use() {
        let mut v = Recorder::default();
        walk(
            &program(
                "for $a in /x return \
                   if (exists($a/k) and $a/v = \"3\") then $a/out else ()",
            ),
            &mut v,
        );
        let log = v.events.join("\n");
        assert!(log.contains("Exists@1 $a/child::k"), "{log}");
        assert!(log.contains("Operand@1 $a/child::v"), "{log}");
        assert!(log.contains("Output@1 $a/child::out"), "{log}");
    }

    #[test]
    fn sibling_seq_items_do_not_inherit_frames() {
        struct Scope {
            saw_second_binding_depth: Option<u32>,
        }
        impl IrVisitor for Scope {
            fn visit_path(&mut self, p: &Program, id: PathId, use_: PathUse, ctx: &WalkCtx) {
                if use_ == PathUse::Binding && p.path_display(id).contains("child::b") {
                    self.saw_second_binding_depth = Some(ctx.depth());
                }
            }
        }
        let mut v = Scope {
            saw_second_binding_depth: None,
        };
        walk(
            &program("(for $x in /r/a return $x, for $y in /r/b return $y)"),
            &mut v,
        );
        // The second loop is a sibling of the first, not nested in it.
        assert_eq!(v.saw_second_binding_depth, Some(0));
    }
}
