//! Pre-compiled path steps: the evaluator-side form of a query path.
//!
//! These used to be lowered per run (and cached behind an address-keyed
//! map) inside `gcx-core`'s evaluator; they are now compiled exactly once,
//! at query-compile time, into the program's step arena. Names are
//! interned against the program's pre-interned symbol table — a run that
//! starts from a clone of that table can use these symbols directly.

use gcx_xml::Symbol;

/// A node test compiled against the program's symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ETest {
    /// Element with this tag.
    Name(Symbol),
    /// Any element.
    Star,
    /// Any text node.
    Text,
    /// Any node (element or text).
    AnyNode,
}

/// Axes the evaluator's path cursor walks (attribute steps are split off
/// into the owning [`crate::PathPlan`]'s attribute selector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EAxis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::`
    DescendantOrSelf,
    /// `self::`
    SelfAxis,
}

/// One compiled evaluation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalStep {
    /// Axis.
    pub axis: EAxis,
    /// Node test.
    pub test: ETest,
    /// `[k]` positional predicate (child axis only).
    pub pos: Option<u32>,
}
