//! Lowering: the signoff-rewritten AST becomes a flat [`Program`].
//!
//! Lowering happens exactly once per compiled query. It interns every
//! name the query mentions (element tests, attribute selectors,
//! projection-path names) into the program's private symbol table,
//! compiles every path's element steps into the shared [`EvalStep`] arena
//! (deduplicating identical paths — conditions inside loop bodies used to
//! re-lower their paths per binding behind an address-keyed cache), and
//! pre-formats literals (number literals atomize at compile time).

use crate::program::{
    fmt_number, AttrPlan, CondId, CondIr, Instr, InstrId, OperandId, OperandIr, PathId, PathPlan,
    PlanRoot, Program, StrId,
};
use crate::step::{EAxis, ETest, EvalStep};
use gcx_projection::{Analysis, CompiledPaths};
use gcx_query::ast::{
    Axis, Cond, Expr, NodeTest, Operand, PathExpr, PathRoot, Pred, Query, Step, VarId,
};
use gcx_xml::{FxBuildHasher, SymbolTable};
use std::collections::HashMap;

impl Program {
    /// Lower a compiled query (its normalized AST plus the static
    /// analysis) into its executable program. `query` must be the query
    /// `analysis` was produced from.
    ///
    /// # Panics
    /// Panics on ASTs that violate the normalizer's invariants (signOff
    /// targets with attribute steps, for-variables without binding roles)
    /// — these cannot come out of `gcx_query::compile` + `analyze`.
    pub fn compile(query: &Query, analysis: &Analysis) -> Program {
        let mut symbols = SymbolTable::new();
        // Projection-NFA paths first: the preprojector's matcher is as
        // much a part of the compiled artifact as the evaluator's steps.
        let matcher_paths = CompiledPaths::compile(&analysis.roles, &mut symbols);
        let mut cx = Lower {
            analysis,
            symbols,
            instrs: Vec::new(),
            seq_items: Vec::new(),
            conds: Vec::new(),
            operands: Vec::new(),
            paths: Vec::new(),
            steps: Vec::new(),
            strings: Vec::new(),
            attrs: Vec::new(),
            path_dedup: HashMap::default(),
            str_dedup: HashMap::default(),
        };
        let root = cx.expr(&analysis.rewritten.root);
        Program {
            symbols: cx.symbols,
            instrs: cx.instrs,
            seq_items: cx.seq_items,
            conds: cx.conds,
            operands: cx.operands,
            paths: cx.paths,
            steps: cx.steps,
            strings: cx.strings,
            attrs: cx.attrs,
            matcher_paths,
            var_names: query.var_names.clone(),
            root,
            joins: Vec::new(),
            exists_slots: 0,
        }
    }
}

/// Dedup key of a compiled path: root, element steps, attribute selector.
type PathKey = (PlanRoot, Vec<Step>, AttrPlan);

struct Lower<'a> {
    analysis: &'a Analysis,
    symbols: SymbolTable,
    instrs: Vec<Instr>,
    seq_items: Vec<InstrId>,
    conds: Vec<CondIr>,
    operands: Vec<OperandIr>,
    paths: Vec<PathPlan>,
    steps: Vec<EvalStep>,
    strings: Vec<Box<str>>,
    attrs: Vec<(StrId, StrId)>,
    path_dedup: HashMap<PathKey, PathId, FxBuildHasher>,
    str_dedup: HashMap<Box<str>, StrId, FxBuildHasher>,
}

impl Lower<'_> {
    fn push_instr(&mut self, i: Instr) -> InstrId {
        let id = InstrId(self.instrs.len() as u32);
        self.instrs.push(i);
        id
    }

    fn push_cond(&mut self, c: CondIr) -> CondId {
        let id = CondId(self.conds.len() as u32);
        self.conds.push(c);
        id
    }

    fn intern_str(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.str_dedup.get(s) {
            return id;
        }
        let id = StrId(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.str_dedup.insert(boxed, id);
        id
    }

    /// Compile a path expression into (or find) its plan.
    fn path(&mut self, p: &PathExpr) -> PathId {
        let root = match &p.root {
            PathRoot::Root => PlanRoot::Root,
            PathRoot::Var(v) => PlanRoot::Var(v.id),
        };
        let (elem_steps, attr) = if p.ends_in_attribute() {
            let (last, rest) = p
                .steps
                .split_last()
                .expect("ends_in_attribute => non-empty");
            let sel = match &last.test {
                NodeTest::Name(n) => AttrPlan::Name(self.symbols.intern(n)),
                _ => AttrPlan::Any,
            };
            (rest, sel)
        } else {
            (&p.steps[..], AttrPlan::None)
        };
        let key: PathKey = (root, elem_steps.to_vec(), attr);
        if let Some(&id) = self.path_dedup.get(&key) {
            return id;
        }
        let first_step = self.steps.len() as u32;
        for s in elem_steps {
            let compiled = EvalStep {
                axis: match s.axis {
                    Axis::Child => EAxis::Child,
                    Axis::Descendant => EAxis::Descendant,
                    Axis::DescendantOrSelf => EAxis::DescendantOrSelf,
                    Axis::SelfAxis => EAxis::SelfAxis,
                    Axis::Attribute => unreachable!("attribute steps are terminal (normalizer)"),
                },
                test: match &s.test {
                    NodeTest::Name(n) => ETest::Name(self.symbols.intern(n)),
                    NodeTest::Star => ETest::Star,
                    NodeTest::Text => ETest::Text,
                    NodeTest::AnyNode => ETest::AnyNode,
                },
                pos: s.pred.map(|Pred::Position(k)| k),
            };
            self.steps.push(compiled);
        }
        let id = PathId(self.paths.len() as u32);
        self.paths.push(PathPlan {
            root,
            first_step,
            step_len: elem_steps.len() as u32,
            attr,
        });
        self.path_dedup.insert(key, id);
        id
    }

    fn operand(&mut self, o: &Operand) -> OperandId {
        let ir = match o {
            Operand::StringLit(s) => OperandIr::Lit {
                text: self.intern_str(s),
                num: s.trim().parse::<f64>().ok(),
            },
            Operand::NumberLit(v) => OperandIr::Lit {
                text: self.intern_str(&fmt_number(*v)),
                num: Some(*v),
            },
            Operand::Path(p) => OperandIr::Path(self.path(p)),
        };
        let id = OperandId(self.operands.len() as u32);
        self.operands.push(ir);
        id
    }

    fn cond(&mut self, c: &Cond) -> CondId {
        let ir = match c {
            Cond::True => CondIr::Const(true),
            Cond::False => CondIr::Const(false),
            Cond::Not(inner) => {
                let i = self.cond(inner);
                CondIr::Not(i)
            }
            Cond::And(a, b) => {
                let (a, b) = (self.cond(a), self.cond(b));
                CondIr::And(a, b)
            }
            Cond::Or(a, b) => {
                let (a, b) = (self.cond(a), self.cond(b));
                CondIr::Or(a, b)
            }
            Cond::Exists(p) => CondIr::Exists(self.path(p)),
            Cond::Compare { op, lhs, rhs } => CondIr::Compare {
                op: *op,
                lhs: self.operand(lhs),
                rhs: self.operand(rhs),
            },
            Cond::StringFn {
                func,
                haystack,
                needle,
            } => CondIr::StringFn {
                func: *func,
                haystack: self.operand(haystack),
                needle: self.operand(needle),
            },
        };
        self.push_cond(ir)
    }

    fn expr(&mut self, e: &Expr) -> InstrId {
        match e {
            Expr::Empty => self.push_instr(Instr::Nop),
            Expr::Sequence(items) => {
                let children: Vec<InstrId> = items.iter().map(|i| self.expr(i)).collect();
                let first = self.seq_items.len() as u32;
                let len = children.len() as u32;
                self.seq_items.extend(children);
                self.push_instr(Instr::Seq { first, len })
            }
            Expr::StringLit(s) => {
                let s = self.intern_str(s);
                self.push_instr(Instr::Text(s))
            }
            // Number literals atomize at compile time: the run emits text.
            Expr::NumberLit(v) => {
                let s = self.intern_str(&fmt_number(*v));
                self.push_instr(Instr::Text(s))
            }
            Expr::Element {
                name,
                attrs,
                content,
            } => {
                let name = self.intern_str(name);
                let pairs: Vec<(StrId, StrId)> = attrs
                    .iter()
                    .map(|(k, v)| (self.intern_str(k), self.intern_str(v)))
                    .collect();
                let attrs_first = self.attrs.len() as u32;
                let attrs_len = pairs.len() as u32;
                self.attrs.extend(pairs);
                let content = self.expr(content);
                self.push_instr(Instr::Element {
                    name,
                    attrs_first,
                    attrs_len,
                    content,
                })
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.cond(cond);
                let then_branch = self.expr(then_branch);
                let else_branch = self.expr(else_branch);
                self.push_instr(Instr::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Expr::For {
                var, source, body, ..
            } => {
                let path = self.path(source);
                let role = self.binding_role(var.id);
                let body = self.expr(body);
                self.push_instr(Instr::For {
                    var: var.id,
                    path,
                    role,
                    body,
                })
            }
            Expr::Path(p) => {
                let p = self.path(p);
                self.push_instr(Instr::OutputPath(p))
            }
            Expr::Aggregate { func, arg } => {
                let path = self.path(arg);
                self.push_instr(Instr::Aggregate { func: *func, path })
            }
            Expr::SignOff { target, role } => {
                debug_assert!(
                    !target.ends_in_attribute(),
                    "analysis strips attribute steps from signOff targets"
                );
                let path = self.path(target);
                self.push_instr(Instr::SignOff { path, role: *role })
            }
        }
    }

    fn binding_role(&self, var: VarId) -> gcx_query::ast::RoleId {
        self.analysis.binding_roles[var.index()]
            .expect("analysis assigns a binding role to every for-variable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_projection::analyze;

    const PAPER_QUERY: &str = r#"
        <r> {
          for $bib in /bib return
            (for $x in $bib/* return
               if (not(exists($x/price))) then $x else (),
             for $b in $bib/book return $b/title)
        } </r>
    "#;

    fn program(q: &str) -> Program {
        let query = gcx_query::compile(q).unwrap();
        let analysis = analyze(&query);
        Program::compile(&query, &analysis)
    }

    #[test]
    fn paper_query_lowers_to_flat_program() {
        let p = program(PAPER_QUERY);
        let st = p.stats();
        assert!(st.instructions > 10, "{st:?}");
        assert_eq!(st.matcher_paths, 7, "the paper's r1..r7");
        assert!(st.symbols >= 4, "bib, book, title, price at least");
        // The root instruction is the last one lowered (the outer seq of
        // query + query-end signoffs).
        assert_eq!(p.root().index(), st.instructions - 1);
    }

    #[test]
    fn identical_paths_are_deduplicated() {
        // $x appears as a for-source once, but $x/price is used both for
        // the exists witness and ... here: the same path twice.
        let p = program("for $x in /a return if (exists($x/b)) then $x/b else ()");
        // paths: /a, $x/b (deduped between exists and output), $x (signoffs),
        // plus signoff targets. Count $x/b only once:
        let n_xb = p
            .paths
            .iter()
            .filter(|pl| {
                pl.step_len == 1
                    && matches!(pl.root, PlanRoot::Var(_))
                    && matches!(
                        p.path_steps(**pl),
                        [EvalStep {
                            test: ETest::Name(s),
                            ..
                        }] if p.symbols().resolve(*s) == "b"
                    )
            })
            .count();
        // $x/b (exists+output, deduped) and the signOff target $x/b[1]… —
        // predicates differ, so count plans whose step has no predicate.
        assert!(n_xb >= 1);
        let dup = p.paths.iter().enumerate().any(|(i, a)| {
            p.paths[..i].iter().any(|b| {
                a.root == b.root && a.attr == b.attr && steps_eq(p.path_steps(*a), p.path_steps(*b))
            })
        });
        assert!(!dup, "no two path plans may be structurally identical");
    }

    fn steps_eq(a: &[EvalStep], b: &[EvalStep]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.axis == y.axis && x.test == y.test && x.pos == y.pos)
    }

    #[test]
    fn number_literals_preformat() {
        let p = program("3.0");
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Text(s) if p.str_(*s) == "3")));
    }

    #[test]
    fn listing_is_stable_and_complete() {
        let p = program(PAPER_QUERY);
        let listing = p.listing();
        assert!(listing.contains("instrs:"), "{listing}");
        assert!(listing.contains("paths:"), "{listing}");
        assert!(listing.contains("steps:"), "{listing}");
        assert!(listing.contains("signOff"), "{listing}");
        assert!(listing.contains("for $bib in p"), "{listing}");
        assert_eq!(listing, p.listing(), "listing must be deterministic");
    }

    #[test]
    fn attribute_paths_split_into_selector() {
        let p = program("for $x in /a return $x/@id");
        assert!(p
            .paths
            .iter()
            .any(|pl| matches!(pl.attr, AttrPlan::Name(s) if p.symbols().resolve(s) == "id")));
    }
}
