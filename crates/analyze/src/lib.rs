#![deny(unsafe_code)]
//! # gcx-analyze — static streamability & buffer-bound analysis
//!
//! GCX's premise is that the query alone decides what the runtime must
//! buffer: projection paths and signOff placement are computed before
//! any data arrives. This crate completes that story by *saying so up
//! front*: a pass over the optimized [`gcx_ir::Program`] assigns every
//! binding and buffer-feeding construct a **streamability class** —
//!
//! * [`StreamClass::Constant`] — O(1): the query touches no
//!   document-dependent state;
//! * [`StreamClass::PerItem`] — bounded by one binding's subtree: each
//!   iteration's nodes are released before the next;
//! * [`StreamClass::Subtree`] — proportional to a selected region of
//!   the document (a top-level output copy, a counted region);
//! * [`StreamClass::Document`] — whole-document retention: value joins,
//!   `sum`/`avg` over unbounded sequences, positional predicates on
//!   document-level paths, loop bodies that re-enter the root.
//!
//! Classes form a lattice (`Constant < PerItem < Subtree < Document`);
//! the query's class is the join of its contributions, and each
//! Document- or Subtree-forcing construct is reported as a structured
//! [`GcxLint`]. An optional DTD tightens `Subtree` (and aggregate
//! `Document`) to `PerItem` where content-model cardinality proves the
//! selected region has constant size ([`GcxLint`] code `GCX-DTD`).
//!
//! **Soundness contract** (enforced by `tests/analyze_soundness.rs` at
//! the workspace root): the static class must *dominate* the observed
//! `peak_live` growth — a `Constant`/`PerItem` query's measured peak
//! must not scale with document size, for every paper query, document
//! size and chunking. The classifier may be loose (classify a streaming
//! query as `Document`), never tight.
//!
//! The [`shard`] module derives gcx-par's partition-parallel safety
//! from the same machinery: a `Document`-class query is never
//! shard-safe (the class verdict short-circuits the structural walk),
//! and the remaining structural checks reuse the shared
//! [`gcx_ir::IrVisitor`] traversal.

mod classify;
mod dtd;
pub mod shard;

pub use classify::{analyze_program, BindingReport, GcxLint, QueryAnalysis, Severity, StreamClass};
