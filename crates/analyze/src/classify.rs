//! The streamability classifier: one [`IrVisitor`] pass over the
//! optimized program, folding per-construct contributions into the
//! query's class and lint list.

use crate::dtd::path_is_bounded;
use gcx_ir::{
    walk, Instr, InstrId, IrVisitor, PathId, PathPlan, PathUse, PlanRoot, Program, WalkCtx,
};
use gcx_query::ast::AggFunc;
use gcx_schema::Dtd;
use std::fmt::Write as _;

/// Worst-case buffer growth of a query or one of its constructs, as a
/// function of the input document. Ordered: `Constant < PerItem <
/// Subtree < Document`, so the query class is the `max` of its
/// contributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StreamClass {
    /// O(1) — no document-dependent state.
    Constant,
    /// Bounded by one binding's subtree; peaks do not scale with the
    /// document.
    PerItem,
    /// Proportional to a selected region of the document.
    Subtree,
    /// Whole-document retention in the worst case.
    Document,
}

impl StreamClass {
    /// Kebab-case name, as printed by the CLI and the
    /// `X-Gcx-Streamability` header.
    pub fn as_str(self) -> &'static str {
        match self {
            StreamClass::Constant => "constant",
            StreamClass::PerItem => "per-item",
            StreamClass::Subtree => "subtree",
            StreamClass::Document => "document",
        }
    }

    /// Parse the kebab-case name (the `--max-static-class` argument).
    pub fn parse(s: &str) -> Option<StreamClass> {
        match s {
            "constant" => Some(StreamClass::Constant),
            "per-item" => Some(StreamClass::PerItem),
            "subtree" => Some(StreamClass::Subtree),
            "document" => Some(StreamClass::Document),
            _ => None,
        }
    }
}

/// Lint severity. `Warning` marks a construct that forces `Document`
/// class; `Info` explains a `Subtree` contribution or a DTD tightening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Explanatory: the construct is handled, its cost is named.
    Info,
    /// The construct forces whole-document retention.
    Warning,
}

impl Severity {
    /// Lowercase name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
        }
    }
}

/// One structured lint: which construct (`span`, a compiled-path
/// display) forces which behaviour, and why.
#[derive(Debug, Clone)]
pub struct GcxLint {
    /// Stable code (`GCX-JOIN`, `GCX-POS`, `GCX-ROOT`, `GCX-AGG`,
    /// `GCX-SUBTREE`, `GCX-DTD`).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The construct's plan-level span (compiled path display).
    pub span: String,
    /// What the lint is about.
    pub message: String,
    /// Why the classifier assigns the cost it does.
    pub why: String,
}

/// Per-binding (or per-buffer-feeding-construct) classification.
#[derive(Debug, Clone)]
pub struct BindingReport {
    /// `$var` for loop bindings, `output` / `count()` / ... otherwise.
    pub name: String,
    /// The binding path (compiled display form).
    pub path: String,
    /// This construct's own class.
    pub class: StreamClass,
    /// One-line reason.
    pub reason: String,
}

/// The full analysis of one compiled query.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// The query's class: the lattice join of every contribution.
    pub class: StreamClass,
    /// Symbolic worst-case buffer bound, e.g. `O(|document|)`.
    pub bound: String,
    /// Per-construct classifications, in program order.
    pub bindings: Vec<BindingReport>,
    /// Structured diagnostics, in program order.
    pub lints: Vec<GcxLint>,
}

impl QueryAnalysis {
    /// Human-readable report (`gcx analyze`, the explain section).
    pub fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "streamability: {}", self.class.as_str());
        let _ = writeln!(out, "bound: {}", self.bound);
        if self.bindings.is_empty() {
            let _ = writeln!(out, "bindings: none");
        } else {
            out.push_str("bindings:\n");
            for b in &self.bindings {
                let _ = writeln!(
                    out,
                    "  {}: {} -> {} ({})",
                    b.name,
                    b.path,
                    b.class.as_str(),
                    b.reason
                );
            }
        }
        if self.lints.is_empty() {
            let _ = writeln!(out, "lints: none");
        } else {
            out.push_str("lints:\n");
            for l in &self.lints {
                let _ = writeln!(
                    out,
                    "  [{}] {} at {}: {}",
                    l.severity.as_str(),
                    l.code,
                    l.span,
                    l.message
                );
                let _ = writeln!(out, "        why: {}", l.why);
            }
        }
        out
    }

    /// The lint lines alone (the server appends these to registration
    /// responses), one per line, `code: message (span)` form.
    pub fn lint_lines(&self) -> Vec<String> {
        self.lints
            .iter()
            .map(|l| {
                format!(
                    "{}: [{}] {}: {} ({})",
                    l.severity.as_str(),
                    l.code,
                    l.span,
                    l.message,
                    l.why
                )
            })
            .collect()
    }

    /// Machine-readable form (hand-rolled JSON; the workspace has no
    /// serde). Spliced into `--stats-json` under `analysis`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"class\":\"{}\",\"bound\":\"{}\",\"bindings\":[",
            self.class.as_str(),
            esc(&self.bound)
        );
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"path\":\"{}\",\"class\":\"{}\",\"reason\":\"{}\"}}",
                esc(&b.name),
                esc(&b.path),
                b.class.as_str(),
                esc(&b.reason)
            );
        }
        out.push_str("],\"lints\":[");
        for (i, l) in self.lints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"span\":\"{}\",\
                 \"message\":\"{}\",\"why\":\"{}\"}}",
                l.code,
                l.severity.as_str(),
                esc(&l.span),
                esc(&l.message),
                esc(&l.why)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping for the hand-rolled reports.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Classify an optimized program, with an optional DTD for tightening.
pub fn analyze_program(p: &Program, dtd: Option<&Dtd>) -> QueryAnalysis {
    let mut v = Classifier {
        dtd,
        class: StreamClass::Constant,
        bound_span: None,
        bindings: Vec::new(),
        lints: Vec::new(),
    };
    walk(p, &mut v);
    let bound = match v.class {
        StreamClass::Constant => "O(1)".to_string(),
        StreamClass::PerItem => format!(
            "O(|one {} item|)",
            v.bound_span.as_deref().unwrap_or("binding")
        ),
        StreamClass::Subtree => format!(
            "O(|{} region|)",
            v.bound_span.as_deref().unwrap_or("selected")
        ),
        StreamClass::Document => "O(|document|)".to_string(),
    };
    QueryAnalysis {
        class: v.class,
        bound,
        bindings: v.bindings,
        lints: v.lints,
    }
}

struct Classifier<'a> {
    dtd: Option<&'a Dtd>,
    class: StreamClass,
    /// Span of the first contribution that reached the current class.
    bound_span: Option<String>,
    bindings: Vec<BindingReport>,
    lints: Vec<GcxLint>,
}

fn has_positional(p: &Program, plan: PathPlan) -> bool {
    p.path_steps(plan).iter().any(|s| s.pos.is_some())
}

impl Classifier<'_> {
    fn raise(&mut self, class: StreamClass, span: &str) {
        if class > self.class {
            self.class = class;
            self.bound_span = Some(span.to_string());
        }
    }

    fn lint(
        &mut self,
        code: &'static str,
        severity: Severity,
        span: &str,
        message: &str,
        why: &str,
    ) {
        self.lints.push(GcxLint {
            code,
            severity,
            span: span.to_string(),
            message: message.to_string(),
            why: why.to_string(),
        });
    }

    fn report(&mut self, name: &str, span: &str, class: StreamClass, reason: &str) {
        self.raise(class, span);
        self.bindings.push(BindingReport {
            name: name.to_string(),
            path: span.to_string(),
            class,
            reason: reason.to_string(),
        });
    }

    /// A `for` binding path.
    fn binding(&mut self, p: &Program, path: PathId, name: &str, ctx: &WalkCtx) {
        let plan = p.path(path);
        let span = p.path_display(path);
        match plan.root {
            PlanRoot::Var(_) => self.report(
                name,
                &span,
                StreamClass::PerItem,
                "nested: ranges inside the enclosing binding's subtree",
            ),
            PlanRoot::Root if !plan.has_steps() => {
                self.lint(
                    "GCX-ROOT",
                    Severity::Warning,
                    &span,
                    "the loop binds the document root itself",
                    "one binding covers the whole document, so releasing per iteration releases nothing",
                );
                self.report(
                    name,
                    &span,
                    StreamClass::Document,
                    "binds the document root",
                );
            }
            PlanRoot::Root if has_positional(p, plan) => {
                self.lint(
                    "GCX-POS",
                    Severity::Warning,
                    &span,
                    "positional predicate on a document-level path",
                    "deciding the k-th match can require holding earlier candidates of an unbounded sequence",
                );
                self.report(
                    name,
                    &span,
                    StreamClass::Document,
                    "positional predicate on a document-level path",
                );
            }
            PlanRoot::Root if ctx.depth() > 0 => {
                self.lint(
                    "GCX-JOIN",
                    Severity::Warning,
                    &span,
                    "document-level loop nested inside another loop (join shape)",
                    "the inner sequence is re-scanned once per outer binding, so its nodes cannot be released before the outer loop ends",
                );
                self.report(
                    name,
                    &span,
                    StreamClass::Document,
                    "document-level sequence re-scanned per outer binding",
                );
            }
            PlanRoot::Root => self.report(
                name,
                &span,
                StreamClass::PerItem,
                "streamed: each binding is released when its iteration ends",
            ),
        }
    }

    /// A Root-rooted region held as a unit (top-level output copy,
    /// aggregate argument): `Subtree`, unless the DTD caps it.
    fn region(&mut self, p: &Program, plan: PathPlan, span: &str, name: &str, why: &str) {
        if let Some(dtd) = self.dtd {
            if path_is_bounded(dtd, p, plan) {
                self.lint(
                    "GCX-DTD",
                    Severity::Info,
                    span,
                    "DTD bounds this region to constant size",
                    "the content models cap both the match count and every matched subtree, so Subtree tightens to PerItem",
                );
                self.report(
                    name,
                    span,
                    StreamClass::PerItem,
                    "subtree selection, DTD-bounded",
                );
                return;
            }
        }
        self.lint(
            "GCX-SUBTREE",
            Severity::Info,
            span,
            "buffers a document-level region",
            why,
        );
        self.report(name, span, StreamClass::Subtree, why);
    }

    /// A path in output position.
    fn emission(&mut self, p: &Program, path: PathId, ctx: &WalkCtx) {
        let plan = p.path(path);
        let span = p.path_display(path);
        match plan.root {
            PlanRoot::Var(_) => self.raise(StreamClass::PerItem, &span),
            PlanRoot::Root if !plan.has_steps() => {
                self.lint(
                    "GCX-ROOT",
                    Severity::Warning,
                    &span,
                    "the query copies the whole document",
                    "the output is the document itself; nothing can be released before it is emitted",
                );
                self.report(
                    "output",
                    &span,
                    StreamClass::Document,
                    "copies the document root",
                );
            }
            PlanRoot::Root if has_positional(p, plan) => {
                self.lint(
                    "GCX-POS",
                    Severity::Warning,
                    &span,
                    "positional predicate on a document-level path",
                    "deciding the k-th match can require holding earlier candidates of an unbounded sequence",
                );
                self.report(
                    "output",
                    &span,
                    StreamClass::Document,
                    "positional predicate on a document-level path",
                );
            }
            PlanRoot::Root if ctx.depth() > 0 => {
                self.lint(
                    "GCX-ROOT",
                    Severity::Warning,
                    &span,
                    "loop body re-enters the document root",
                    "nodes outside the binding's subtree must stay buffered across iterations",
                );
                self.report(
                    "output",
                    &span,
                    StreamClass::Document,
                    "loop body re-enters the document root",
                );
            }
            PlanRoot::Root => self.region(
                p,
                plan,
                &span,
                "output",
                "the selected region is emitted as one unit and buffered until complete",
            ),
        }
    }

    /// An aggregate argument.
    fn aggregate(&mut self, p: &Program, func: AggFunc, path: PathId, ctx: &WalkCtx) {
        let plan = p.path(path);
        let span = p.path_display(path);
        let name = format!("{}()", func.name());
        match plan.root {
            PlanRoot::Var(_) => self.raise(StreamClass::PerItem, &span),
            PlanRoot::Root if has_positional(p, plan) => {
                self.lint(
                    "GCX-POS",
                    Severity::Warning,
                    &span,
                    "positional predicate on a document-level path",
                    "deciding the k-th match can require holding earlier candidates of an unbounded sequence",
                );
                self.report(
                    &name,
                    &span,
                    StreamClass::Document,
                    "positional predicate on a document-level path",
                );
            }
            PlanRoot::Root if ctx.depth() > 0 => {
                self.lint(
                    "GCX-ROOT",
                    Severity::Warning,
                    &span,
                    "loop body aggregates over the document root",
                    "the aggregated region lies outside the binding's subtree and stays buffered across iterations",
                );
                self.report(
                    &name,
                    &span,
                    StreamClass::Document,
                    "loop body aggregates over the document root",
                );
            }
            PlanRoot::Root if func == AggFunc::Count => self.region(
                p,
                plan,
                &span,
                &name,
                "count() retains the counted region until the total is known",
            ),
            PlanRoot::Root => {
                if let Some(dtd) = self.dtd {
                    if path_is_bounded(dtd, p, plan) {
                        self.lint(
                            "GCX-DTD",
                            Severity::Info,
                            &span,
                            "DTD bounds the aggregated sequence to constant size",
                            "the content models cap the match count, so the aggregate's retention tightens to PerItem",
                        );
                        self.report(
                            &name,
                            &span,
                            StreamClass::PerItem,
                            "aggregate over a DTD-bounded sequence",
                        );
                        return;
                    }
                }
                self.lint(
                    "GCX-AGG",
                    Severity::Warning,
                    &span,
                    &format!("{}() over a document-level sequence", func.name()),
                    "the aggregated values form an unbounded sequence the engine cannot release before the document ends",
                );
                self.report(
                    &name,
                    &span,
                    StreamClass::Document,
                    "aggregate over an unbounded document-level sequence",
                );
            }
        }
    }

    /// An `exists` probe or comparison operand.
    fn probe(&mut self, p: &Program, path: PathId, use_: PathUse, ctx: &WalkCtx) {
        let plan = p.path(path);
        let span = p.path_display(path);
        match plan.root {
            PlanRoot::Var(_) => self.raise(StreamClass::PerItem, &span),
            PlanRoot::Root if has_positional(p, plan) => {
                self.lint(
                    "GCX-POS",
                    Severity::Warning,
                    &span,
                    "positional predicate on a document-level path",
                    "deciding the k-th match can require holding earlier candidates of an unbounded sequence",
                );
                self.raise(StreamClass::Document, &span);
            }
            PlanRoot::Root if ctx.depth() > 0 => {
                if use_ == PathUse::Operand {
                    self.lint(
                        "GCX-JOIN",
                        Severity::Warning,
                        &span,
                        "comparison against a document-level sequence inside a loop",
                        "a value join: the compared sequence must stay available for every outer binding",
                    );
                } else {
                    self.lint(
                        "GCX-ROOT",
                        Severity::Warning,
                        &span,
                        "loop condition probes the document root",
                        "the probed region must stay available across iterations",
                    );
                }
                self.raise(StreamClass::Document, &span);
            }
            PlanRoot::Root => {
                // A top-level condition over a document region: held as
                // a unit, like a top-level output.
                if let Some(dtd) = self.dtd {
                    if path_is_bounded(dtd, p, plan) {
                        self.raise(StreamClass::PerItem, &span);
                        return;
                    }
                }
                self.raise(StreamClass::Subtree, &span);
            }
        }
    }
}

impl IrVisitor for Classifier<'_> {
    fn enter_instr(&mut self, p: &Program, id: InstrId, ctx: &WalkCtx) -> bool {
        match p.instr(id) {
            Instr::For { var, path, .. } => {
                let name = format!("${}", p.var_name(var));
                self.binding(p, path, &name, ctx);
                true
            }
            Instr::OutputPath(path) => {
                self.emission(p, path, ctx);
                true
            }
            Instr::Aggregate { func, path } => {
                self.aggregate(p, func, path, ctx);
                true
            }
            Instr::HashJoin(j) => {
                // Classified as a unit: the preserved fallback would
                // re-report the same loop.
                let plan = p.join(j);
                let span = p.path_display(plan.path);
                self.lint(
                    "GCX-JOIN",
                    Severity::Warning,
                    &span,
                    "value join over a document-level sequence",
                    "the equality pairs bindings from different document regions; the indexed side stays buffered until the document ends",
                );
                self.report(
                    &format!("${}", p.var_name(plan.var)),
                    &span,
                    StreamClass::Document,
                    "value join: the keyed index retains document-level candidates",
                );
                false
            }
            _ => true,
        }
    }

    fn visit_path(&mut self, p: &Program, id: PathId, use_: PathUse, ctx: &WalkCtx) {
        match use_ {
            // Bindings, outputs and aggregates are classified from
            // `enter_instr` (they need the instruction's context);
            // signOffs are buffer-local and free.
            PathUse::Binding | PathUse::Output | PathUse::Aggregate | PathUse::SignOff => {}
            PathUse::Exists | PathUse::Operand => self.probe(p, id, use_, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::compile as compile_query;

    fn analyzed(q: &str) -> QueryAnalysis {
        analyzed_with(q, None)
    }

    fn analyzed_with(q: &str, dtd: Option<&Dtd>) -> QueryAnalysis {
        let query = compile_query(q).expect("query compiles");
        let analysis = gcx_projection::analyze(&query);
        let p = Program::compile(&query, &analysis);
        let (opt, _) = gcx_ir::optimize(&p);
        analyze_program(&opt, dtd)
    }

    #[test]
    fn static_output_is_constant() {
        let a = analyzed("<a>{ \"hi\" }</a>");
        assert_eq!(a.class, StreamClass::Constant);
        assert_eq!(a.bound, "O(1)");
        assert!(a.lints.is_empty(), "{:?}", a.lints);
    }

    #[test]
    fn streamed_loop_is_per_item() {
        let a = analyzed("for $b in /site/people/person return $b/name");
        assert_eq!(a.class, StreamClass::PerItem);
        assert!(a.bound.contains("person"), "{}", a.bound);
        assert_eq!(a.bindings.len(), 1);
        assert!(a.lints.is_empty(), "{:?}", a.lints);
    }

    #[test]
    fn nested_var_rooted_loops_stay_per_item() {
        let a =
            analyzed("for $b in /site/regions return for $i in $b//item return <i>{ $i/name }</i>");
        assert_eq!(a.class, StreamClass::PerItem);
        assert_eq!(a.bindings.len(), 2);
    }

    #[test]
    fn var_rooted_positional_stays_per_item() {
        // Q2's shape: the positional sits below the binding, bounded by
        // one item's subtree.
        let a = analyzed(
            "for $b in /site/open_auctions/open_auction return \
               <i>{ $b/bidder[1]/increase/text() }</i>",
        );
        assert_eq!(a.class, StreamClass::PerItem);
    }

    #[test]
    fn root_positional_is_document() {
        let a = analyzed("for $b in /site/people/person[2] return $b/name");
        assert_eq!(a.class, StreamClass::Document);
        assert!(a.lints.iter().any(|l| l.code == "GCX-POS"), "{:?}", a.lints);
    }

    #[test]
    fn join_shape_is_document_with_gcx_join() {
        let a = analyzed(
            "for $p in /site/people/person return \
               for $t in /site/closed_auctions/closed_auction return \
                 if ($t/buyer/@person = $p/@id) then $t/itemref else ()",
        );
        assert_eq!(a.class, StreamClass::Document);
        assert_eq!(a.bound, "O(|document|)");
        assert!(
            a.lints.iter().any(|l| l.code == "GCX-JOIN"),
            "{:?}",
            a.lints
        );
        // The join loop appears in the binding reports as Document.
        assert!(a
            .bindings
            .iter()
            .any(|b| b.name == "$t" && b.class == StreamClass::Document));
    }

    #[test]
    fn count_over_document_region_is_subtree() {
        let a = analyzed("<count>{ count(/site/regions//item) }</count>");
        assert_eq!(a.class, StreamClass::Subtree);
        assert!(a.bound.contains("region"), "{}", a.bound);
        assert!(a.lints.iter().any(|l| l.code == "GCX-SUBTREE"));
    }

    #[test]
    fn sum_over_document_sequence_is_document() {
        let a = analyzed("<s>{ sum(/site/open_auctions/open_auction/current) }</s>");
        assert_eq!(a.class, StreamClass::Document);
        assert!(a.lints.iter().any(|l| l.code == "GCX-AGG"), "{:?}", a.lints);
    }

    #[test]
    fn loop_body_reentering_root_is_document() {
        let a = analyzed("for $p in /site/people/person return /site/regions");
        assert_eq!(a.class, StreamClass::Document);
        assert!(
            a.lints.iter().any(|l| l.code == "GCX-ROOT"),
            "{:?}",
            a.lints
        );
    }

    #[test]
    fn dtd_tightens_bounded_region_to_per_item() {
        let dtd = Dtd::parse("<!ELEMENT r (a)><!ELEMENT a (b?)><!ELEMENT b (#PCDATA)>").unwrap();
        let with = analyzed_with("<n>{ count(/r/a) }</n>", Some(&dtd));
        assert_eq!(with.class, StreamClass::PerItem);
        assert!(
            with.lints.iter().any(|l| l.code == "GCX-DTD"),
            "{:?}",
            with.lints
        );
        // Without the DTD the same query is Subtree-class.
        let without = analyzed("<n>{ count(/r/a) }</n>");
        assert_eq!(without.class, StreamClass::Subtree);
    }

    #[test]
    fn dtd_does_not_tighten_unbounded_regions() {
        let dtd = Dtd::parse("<!ELEMENT r (a*)><!ELEMENT a (b?)><!ELEMENT b (#PCDATA)>").unwrap();
        let a = analyzed_with("<n>{ count(/r/a) }</n>", Some(&dtd));
        assert_eq!(a.class, StreamClass::Subtree);
        assert!(!a.lints.iter().any(|l| l.code == "GCX-DTD"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let a = analyzed("for $b in /site/people/person return $b/name");
        let json = a.to_json();
        assert!(json.starts_with("{\"class\":\"per-item\""), "{json}");
        for key in ["\"bound\"", "\"bindings\"", "\"lints\"", "\"reason\""] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
    }

    #[test]
    fn paper_query_classes_match_measured_behavior() {
        // The pinned expectations behind the soundness suite: nine
        // streaming queries, the counting ablation, and the join.
        let expect = [
            ("Q1", StreamClass::PerItem),
            ("Q6", StreamClass::PerItem),
            ("Q8", StreamClass::Document),
            ("Q13", StreamClass::PerItem),
            ("Q20", StreamClass::PerItem),
            ("Q2", StreamClass::PerItem),
            ("Q3", StreamClass::PerItem),
            ("Q14", StreamClass::PerItem),
            ("Q17", StreamClass::PerItem),
            ("Q19", StreamClass::PerItem),
            ("Q6_COUNT", StreamClass::Subtree),
        ];
        let queries = gcx_xmark::queries::paper_queries();
        assert_eq!(queries.len(), expect.len());
        for ((name, q), (ename, eclass)) in queries.iter().zip(expect) {
            assert_eq!(*name, ename);
            let a = analyzed(q);
            assert_eq!(a.class, eclass, "{name} classified {:?}", a.class);
        }
    }
}
