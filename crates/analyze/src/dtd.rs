//! DTD-driven tightening: content-model cardinality can prove that a
//! Root-rooted path selects a constant-size region, which downgrades a
//! `Subtree` (or aggregate `Document`) contribution to `PerItem`.
//!
//! The check is deliberately conservative: every step must be
//! `child::name`, every traversed content model must cap the next
//! name's occurrence count (no `*`/`+`, no `ANY`, no mixed content
//! naming it), and the finally selected element's whole subtree must be
//! bounded (star-free content models, no recursion, text-only leaves).
//! "Bounded" counts *nodes*, matching the engine's `peak_live`
//! accounting — a single text node of any length is one node.

use gcx_ir::{AttrPlan, EAxis, ETest, PathPlan, PlanRoot, Program};
use gcx_schema::{ContentExpr, ContentModel, Dtd, Rep};

/// True when the DTD proves the node set selected by `plan` has
/// constant size (independent of the document's length).
pub(crate) fn path_is_bounded(dtd: &Dtd, p: &Program, plan: PathPlan) -> bool {
    if plan.root != PlanRoot::Root {
        return false;
    }
    let mut names = Vec::with_capacity(plan.step_len as usize);
    for s in p.path_steps(plan) {
        match (s.axis, s.test) {
            (EAxis::Child, ETest::Name(sym)) => names.push(p.symbols().resolve(sym)),
            // Descendant axes and wildcard tests select open-ended
            // sets; give up.
            _ => return false,
        }
    }
    let Some((&first, rest)) = names.split_first() else {
        return false;
    };
    if let Some(root) = dtd.root() {
        if first != root {
            // In a document governed by this DTD the first step misses
            // the (unique) document element: the path selects nothing.
            return true;
        }
    }
    // Whether or not the DTD names its root, a well-formed document has
    // exactly one document element, so the first child step from the
    // root context matches at most one node.
    let mut cur = first;
    for &next in rest {
        let Some(decl) = dtd.get(cur) else {
            return false;
        };
        match model_max_occurs(&decl.model, next) {
            None => return false,
            // The model cannot produce this child at all: the path
            // selects nothing, which is as bounded as it gets.
            Some(0) => return true,
            Some(_) => cur = next,
        }
    }
    if plan.attr != AttrPlan::None {
        // One attribute node per selected element.
        return true;
    }
    subtree_bounded(dtd, cur, &mut Vec::new())
}

/// Max occurrences of `name` as a direct child under `model`; `None`
/// means unbounded.
fn model_max_occurs(model: &ContentModel, name: &str) -> Option<u32> {
    match model {
        ContentModel::Empty => Some(0),
        ContentModel::Any => None,
        ContentModel::Mixed(names) => {
            // Mixed content repeats freely: any named element can occur
            // arbitrarily often.
            if names.iter().any(|n| n == name) {
                None
            } else {
                Some(0)
            }
        }
        ContentModel::Children(e) => expr_max_occurs(e, name),
    }
}

fn expr_max_occurs(e: &ContentExpr, name: &str) -> Option<u32> {
    match e {
        ContentExpr::Name(n) => Some(u32::from(n == name)),
        ContentExpr::Seq(items) => items.iter().try_fold(0u32, |acc, c| {
            Some(acc.saturating_add(expr_max_occurs(c, name)?))
        }),
        ContentExpr::Choice(items) => items
            .iter()
            .try_fold(0u32, |acc, c| Some(acc.max(expr_max_occurs(c, name)?))),
        ContentExpr::Repeat(inner, rep) => {
            let n = expr_max_occurs(inner, name)?;
            match rep {
                Rep::Opt => Some(n),
                Rep::Star | Rep::Plus => {
                    if n == 0 {
                        Some(0)
                    } else {
                        None
                    }
                }
            }
        }
    }
}

/// True when every document subtree rooted at an element named `name`
/// has a bounded node count: star-free content models, non-recursive,
/// with text-only or empty leaves.
fn subtree_bounded<'a>(dtd: &'a Dtd, name: &'a str, visiting: &mut Vec<&'a str>) -> bool {
    if visiting.contains(&name) {
        // Recursive content nests unboundedly.
        return false;
    }
    let Some(decl) = dtd.get(name) else {
        return false;
    };
    match &decl.model {
        ContentModel::Empty => true,
        ContentModel::Any => false,
        // `(#PCDATA)` alone: one text node. Mixed content with element
        // names repeats freely.
        ContentModel::Mixed(names) => names.is_empty(),
        ContentModel::Children(e) => {
            if !expr_star_free(e) {
                return false;
            }
            visiting.push(name);
            let mut kids = Vec::new();
            expr_names(e, &mut kids);
            let ok = kids.iter().all(|k| subtree_bounded(dtd, k, visiting));
            visiting.pop();
            ok
        }
    }
}

/// No `*` or `+` particle anywhere in the expression.
fn expr_star_free(e: &ContentExpr) -> bool {
    match e {
        ContentExpr::Name(_) => true,
        ContentExpr::Seq(items) | ContentExpr::Choice(items) => items.iter().all(expr_star_free),
        ContentExpr::Repeat(inner, rep) => *rep == Rep::Opt && expr_star_free(inner),
    }
}

/// Collect every element name mentioned in the expression.
fn expr_names<'a>(e: &'a ContentExpr, out: &mut Vec<&'a str>) {
    match e {
        ContentExpr::Name(n) => out.push(n),
        ContentExpr::Seq(items) | ContentExpr::Choice(items) => {
            for c in items {
                expr_names(c, out);
            }
        }
        ContentExpr::Repeat(inner, _) => expr_names(inner, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::compile as compile_query;

    fn bounded(dtd_text: &str, q: &str) -> bool {
        let dtd = Dtd::parse(dtd_text).unwrap();
        let query = compile_query(q).expect("query compiles");
        let analysis = gcx_projection::analyze(&query);
        let p = Program::compile(&query, &analysis);
        // The first Root-rooted path in the plan table is the one under
        // test (these probe queries have exactly one).
        let plan = (0..p.path_count())
            .map(|i| p.path(gcx_ir::PathId(i as u32)))
            .find(|plan| plan.root == PlanRoot::Root && plan.has_steps())
            .expect("query has a root path");
        path_is_bounded(&dtd, &p, plan)
    }

    const TOY: &str = "<!ELEMENT r (a)><!ELEMENT a (b?)><!ELEMENT b (#PCDATA)>";

    #[test]
    fn fixed_cardinality_chain_is_bounded() {
        assert!(bounded(TOY, "for $x in /r/a return <n/>"));
        assert!(bounded(TOY, "for $x in /r/a/b return <n/>"));
    }

    #[test]
    fn starred_children_are_unbounded() {
        let dtd = "<!ELEMENT r (a*)><!ELEMENT a (b?)><!ELEMENT b (#PCDATA)>";
        assert!(!bounded(dtd, "for $x in /r/a return <n/>"));
    }

    #[test]
    fn recursive_content_is_unbounded() {
        let dtd = "<!ELEMENT r (a)><!ELEMENT a (a?)>";
        assert!(!bounded(dtd, "for $x in /r/a return <n/>"));
    }

    #[test]
    fn descendant_axis_gives_up() {
        assert!(!bounded(TOY, "for $x in /r//b return <n/>"));
    }

    #[test]
    fn undeclared_child_selects_nothing_and_is_bounded() {
        assert!(bounded(TOY, "for $x in /r/z return <n/>"));
    }

    #[test]
    fn choice_and_opt_stay_bounded() {
        let dtd = "<!ELEMENT r ((a | b), c?)><!ELEMENT a EMPTY>\
                   <!ELEMENT b EMPTY><!ELEMENT c (#PCDATA)>";
        assert!(bounded(dtd, "for $x in /r/a return <n/>"));
        assert!(bounded(dtd, "for $x in /r/c return <n/>"));
    }
}
