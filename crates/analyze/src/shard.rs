//! Shard-safety analysis over the optimized IR.
//!
//! Decides, per compiled query, whether partition-parallel evaluation can
//! reproduce the serial output byte for byte — and if so, what the merge
//! has to do. The analysis never looks at the document; it produces
//! *guard paths* that gcx-par's splitter later checks against the
//! concrete ancestor chain of every candidate split point.
//!
//! Shard safety is a corollary of the streamability lattice: a
//! [`Document`](crate::StreamClass::Document)-class query retains
//! cross-item state (a value join, an unbounded aggregate, a positional
//! predicate, a root re-entry) that no partition of the input can
//! preserve, so [`analyze`] short-circuits to `Unsafe` with the
//! classifier's own diagnostic before any structural matching runs. The
//! structural walk below then only has to recognize the *shape* that
//! partitions — it can assume document-level state is already ruled out.
//!
//! ## The safe shape
//!
//! A query is shard-safe when, after peeling static wrappers, it is a
//! chain of `for` loops whose composed binding path is rooted at the
//! document root, with a body confined to the innermost binding:
//!
//! ```text
//! <w1><w2> {                        static wrappers (prefix/suffix)
//!   for $a in /s1/s2 return        spine: Root-rooted,
//!     for $b in $a//s3 return      chained through the previous var
//!       BODY($b)                   every path rooted at $b (or vars
//! } </w2></w1>                     bound from it); no joins
//! ```
//!
//! Run over a sub-document that contains a *contiguous, complete* subset
//! of the spine bindings (plus re-opened ancestors that the guard check
//! proves can never themselves be bindings), such a query emits exactly
//! `prefix · (its bindings' output) · suffix` — so shard outputs
//! concatenate, in shard order, into the serial output. `signOff`
//! statements anywhere are exempt from confinement: they only touch the
//! shard-local buffer, never the output.
//!
//! Innermost bindings must stay whole, but an *intermediate* spine
//! binding (Q6's `regions`) may be divided: its body is the rest of the
//! spine, whose per-fragment outputs concatenate back in order. That
//! holds only while bindings of one level cannot nest: XQuery orders
//! output by binding — the outer binding's whole group before the
//! nested one's — so dividing a binding whose subtree holds another
//! binding of its own level would splice the nested group into the
//! middle of the outer's. (Today's streaming engine flattens nested
//! groups — each node is consumed by its outermost binding, unlike the
//! dom/full reference engines — which happens to make such a division
//! byte-invisible; shard safety must not lean on that attribution
//! quirk.) A spine level reached purely by `child` steps has a fixed
//! match depth and can never nest; any `descendant` step on the
//! composed prefix can (`//a` under `<a><a>…`), so such prefixes become
//! guards of their own (`spine`) and the splitter refuses to cut
//! through their bindings.
//!
//! Whole-document `count(...)` aggregates take the two-phase route
//! instead: each shard counts its own matches and the merge sums — exact,
//! because count is associative over a partition of the match set (no
//! float re-association, unlike `sum`/`avg`, which stay serial).
//!
//! Everything else — cross-shard joins (Q8's `HashJoin`), bodies that
//! re-enter the document root, positional predicates on the spine,
//! multiple dynamic items per level (output interleaving would change) —
//! reports `Unsafe` and the runtime falls back to the serial path.

use gcx_ir::{
    walk_from, AttrPlan, EAxis, ETest, EvalStep, Instr, InstrId, IrVisitor, PathId, PathUse,
    PlanRoot, Program, WalkCtx,
};
use gcx_query::ast::VarId;

use crate::{analyze_program, Severity, StreamClass};

/// How shard results recombine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Concatenate shard cores between the static prefix/suffix.
    Concat,
    /// Parse each shard core as an integer count and emit the sum.
    SumCount,
}

/// One static wrapper element peeled off the query root.
#[derive(Debug, Clone)]
pub struct Wrapper {
    /// Element name (raw program string).
    pub name: String,
    /// Literal attributes, in emission order (raw, unescaped).
    pub attrs: Vec<(String, String)>,
}

/// A guard step: an [`EvalStep`] with its name test resolved to a string,
/// so the splitter can match it against raw document bytes.
#[derive(Debug, Clone)]
pub struct GStep {
    /// Axis.
    pub axis: EAxis,
    /// Resolved node test.
    pub test: GTest,
}

/// Resolved node test of a guard step.
#[derive(Debug, Clone)]
pub enum GTest {
    /// Element with this name.
    Name(String),
    /// Any element.
    Star,
    /// Any text node (never matches an element).
    Text,
    /// Any node.
    AnyNode,
}

/// One guard path: a split point is unsafe if any element left open at
/// the split (any ancestor of the cut) could be selected by this path —
/// its subtree, or its attributes, would then be divided or duplicated
/// across shards.
#[derive(Debug, Clone)]
pub struct GuardPath {
    /// Element steps, root-context first.
    pub steps: Vec<GStep>,
}

impl GuardPath {
    /// Whether two elements selected by this path can be nested in one
    /// another. `child`/`self` steps pin every match to one fixed depth,
    /// so matches are siblings-or-cousins and can never nest; any
    /// descendant step lets the path select both `<a>` and an `<a>`
    /// inside it.
    pub fn can_nest(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s.axis, EAxis::Descendant | EAxis::DescendantOrSelf))
    }
}

/// The analysis result for a shard-safe query.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Merge mode.
    pub mode: ShardMode,
    /// Static wrappers, outermost first.
    pub wrappers: Vec<Wrapper>,
    /// Guard paths the splitter must respect.
    pub guards: Vec<GuardPath>,
}

/// Whether (and how) a program can run partition-parallel.
#[derive(Debug, Clone)]
pub enum Analysis {
    /// Shard-safe; the plan drives splitting and merging.
    Safe(ShardPlan),
    /// Not shard-safe, with the human-readable reason the CLI reports.
    Unsafe(String),
}

/// Analyze an optimized program for shard safety.
pub fn analyze(p: &Program) -> Analysis {
    // Lattice first: Document-class retention can never partition, and
    // the classifier's diagnostic names the construct responsible.
    let classes = analyze_program(p, None);
    if classes.class == StreamClass::Document {
        let reason = classes
            .lints
            .iter()
            .find(|l| l.severity == Severity::Warning)
            .map(|l| l.message.clone())
            .unwrap_or_else(|| "the query retains document-level state".to_string());
        return Analysis::Unsafe(reason);
    }
    match analyze_inner(p) {
        Ok(plan) => Analysis::Safe(plan),
        Err(reason) => Analysis::Unsafe(reason.to_string()),
    }
}

type AResult<T> = Result<T, &'static str>;

fn analyze_inner(p: &Program) -> AResult<ShardPlan> {
    let mut wrappers = Vec::new();
    let mut cur = p.root();
    // Peel static wrappers: constructed elements and sequences whose
    // other items are output-free (signOffs, the optimizer's Nops).
    let core = loop {
        match p.instr(cur) {
            Instr::Seq { first, len } => {
                cur =
                    single_dynamic_item(p, first, len)?.ok_or("the query emits nothing dynamic")?;
            }
            Instr::Element {
                name,
                attrs_first,
                attrs_len,
                content,
            } => {
                wrappers.push(Wrapper {
                    name: p.str_(name).to_string(),
                    attrs: p
                        .attr_pairs(attrs_first, attrs_len)
                        .iter()
                        .map(|&(k, v)| (p.str_(k).to_string(), p.str_(v).to_string()))
                        .collect(),
                });
                cur = content;
            }
            Instr::For { .. } | Instr::OutputPath(_) | Instr::Aggregate { .. } => break cur,
            Instr::Nop | Instr::SignOff { .. } => return Err("the query emits nothing dynamic"),
            Instr::Text(_) => return Err("static text at the query root"),
            Instr::If { .. } => return Err("a top-level conditional over the whole document"),
            Instr::HashJoin(_) => return Err("a join over the whole document"),
        }
    };
    match p.instr(core) {
        Instr::For { .. } => {
            let guards = spine(p, core)?;
            Ok(ShardPlan {
                mode: ShardMode::Concat,
                wrappers,
                guards,
            })
        }
        Instr::OutputPath(path) => {
            let guard = root_guard(p, path)?;
            Ok(ShardPlan {
                mode: ShardMode::Concat,
                wrappers,
                guards: vec![guard],
            })
        }
        Instr::Aggregate { func, path } => {
            if func != gcx_query::ast::AggFunc::Count {
                return Err("only count() aggregates partition exactly");
            }
            let guard = root_guard(p, path)?;
            Ok(ShardPlan {
                mode: ShardMode::SumCount,
                wrappers,
                guards: vec![guard],
            })
        }
        _ => unreachable!("peel loop only breaks on For/OutputPath/Aggregate"),
    }
}

/// Of a Seq's items, the single one that can produce output. `Ok(None)`
/// when every item is output-free; `Err` when two could emit (their
/// outputs would interleave differently across a shard seam).
fn single_dynamic_item(p: &Program, first: u32, len: u32) -> AResult<Option<InstrId>> {
    let mut dynamic = None;
    for &item in p.seq_items(first, len) {
        match p.instr(item) {
            Instr::Nop | Instr::SignOff { .. } => {}
            _ => {
                if dynamic.replace(item).is_some() {
                    return Err("two output-producing items at the same level");
                }
            }
        }
    }
    Ok(dynamic)
}

/// Follow the chain of `for`s from the query core: the first must bind a
/// Root-rooted path, each next one the previous variable; the final body
/// must be confined to the innermost binding. Returns the guards for the
/// spine: the fully composed path (innermost bindings must never be cut)
/// plus every intermediate composed prefix whose matches could nest
/// (see the module docs — dividing a binding that contains another
/// binding of its own level reorders the serial per-binding groups).
fn spine(p: &Program, head: InstrId) -> AResult<Vec<GuardPath>> {
    let mut composed: Vec<EvalStep> = Vec::new();
    let mut guards: Vec<GuardPath> = Vec::new();
    let mut innermost: Option<VarId> = None;
    let mut cur = head;
    loop {
        let Instr::For {
            var, path, body, ..
        } = p.instr(cur)
        else {
            unreachable!("spine() is only called on For instructions");
        };
        let plan = p.path(path);
        match (plan.root, innermost) {
            (PlanRoot::Root, None) => {}
            (PlanRoot::Var(v), Some(inner)) if v == inner => {}
            _ => return Err("a loop binds a path off the shard spine"),
        }
        composed.extend_from_slice(p.path_steps(plan));
        innermost = Some(var);
        let binds_attrs = plan.attr != AttrPlan::None;
        // The body: either extends the spine with one more For over the
        // fresh variable, or is a general body confined to it.
        let next = match p.instr(body) {
            Instr::Seq { first, len } => single_dynamic_item(p, first, len)?,
            Instr::Nop | Instr::SignOff { .. } => None,
            _ => Some(body),
        };
        match next {
            Some(next_for)
                if !binds_attrs
                    && matches!(
                        p.instr(next_for),
                        Instr::For { path: np, .. }
                            if p.path(np).root == PlanRoot::Var(var)
                    ) =>
            {
                // `var` is an intermediate binding: the spine continues
                // below it, so the splitter may divide its subtree —
                // unless bindings of this level can nest, in which case
                // the composed prefix becomes a guard of its own.
                let prefix = finish_guard(composed.clone(), p)?;
                if prefix.can_nest() {
                    guards.push(prefix);
                }
                cur = next_for;
            }
            Some(other) => {
                confined(p, other, var)?;
                break;
            }
            None => break,
        }
    }
    guards.push(finish_guard(composed, p)?);
    Ok(guards)
}

/// Guard for a Root-rooted output/aggregate path at the query core.
fn root_guard(p: &Program, path: PathId) -> AResult<GuardPath> {
    let plan = p.path(path);
    if plan.root != PlanRoot::Root {
        return Err("a core path not rooted at the document");
    }
    finish_guard(p.path_steps(plan).to_vec(), p)
}

fn finish_guard(steps: Vec<EvalStep>, p: &Program) -> AResult<GuardPath> {
    if steps.is_empty() {
        return Err("the query binds the document root itself");
    }
    if steps.iter().any(|s| s.pos.is_some()) {
        return Err("a positional predicate on the spine path");
    }
    let steps = steps
        .iter()
        .map(|s| GStep {
            axis: s.axis,
            test: match s.test {
                ETest::Name(sym) => GTest::Name(p.symbols().resolve(sym).to_string()),
                ETest::Star => GTest::Star,
                ETest::Text => GTest::Text,
                ETest::AnyNode => GTest::AnyNode,
            },
        })
        .collect();
    Ok(GuardPath { steps })
}

/// Check that every path an instruction subtree evaluates is rooted at a
/// variable bound (transitively) from the spine's innermost binding —
/// i.e. the body never re-enters the document outside its binding's
/// subtree. signOffs are exempt: they mutate the shard-local buffer only.
fn confined(p: &Program, id: InstrId, base: VarId) -> AResult<()> {
    struct Confined {
        base: VarId,
        err: Option<&'static str>,
    }
    impl IrVisitor for Confined {
        fn enter_instr(&mut self, p: &Program, id: InstrId, _ctx: &WalkCtx) -> bool {
            if self.err.is_some() {
                return false;
            }
            if matches!(p.instr(id), Instr::HashJoin(_)) {
                self.err = Some("a join against the whole document inside a loop body");
                return false;
            }
            true
        }

        fn visit_path(&mut self, p: &Program, id: PathId, use_: PathUse, ctx: &WalkCtx) {
            if self.err.is_some() || use_ == PathUse::SignOff {
                return;
            }
            // The walk's frames carry exactly the loops opened inside
            // the body, so a path is confined iff its root is the
            // spine's innermost binding or a variable bound below it.
            // Frames pop when a loop body is left, so a sibling item in
            // an enclosing Seq never passes on the strength of them.
            match p.path(id).root {
                PlanRoot::Var(v) if v == self.base || ctx.in_scope(v) => {}
                _ => self.err = Some("a loop body reads outside its binding's subtree"),
            }
        }
    }
    let mut v = Confined { base, err: None };
    walk_from(p, id, &mut v);
    match v.err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(q: &str) -> Analysis {
        let query = gcx_query::compile(q).expect("query compiles");
        let analysis = gcx_projection::analyze(&query);
        let p = Program::compile(&query, &analysis);
        let (opt, _) = gcx_ir::optimize(&p);
        analyze(&opt)
    }

    fn expect_safe(q: &str) -> ShardPlan {
        match analyzed(q) {
            Analysis::Safe(plan) => plan,
            Analysis::Unsafe(reason) => panic!("expected shard-safe, got: {reason}"),
        }
    }

    fn expect_unsafe(q: &str) -> String {
        match analyzed(q) {
            Analysis::Unsafe(reason) => reason,
            Analysis::Safe(_) => panic!("expected unsafe: {q}"),
        }
    }

    #[test]
    fn simple_spine_is_concat_with_one_guard() {
        let plan = expect_safe("for $p in /site/people/person return $p/name");
        assert_eq!(plan.mode, ShardMode::Concat);
        assert!(plan.wrappers.is_empty());
        assert_eq!(plan.guards.len(), 1);
        assert_eq!(plan.guards[0].steps.len(), 3);
    }

    #[test]
    fn wrappers_are_peeled_outermost_first() {
        let plan =
            expect_safe("<out><list>{ for $p in /site/people/person return $p/name }</list></out>");
        let names: Vec<_> = plan.wrappers.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, ["out", "list"]);
    }

    #[test]
    fn descendant_intermediate_binding_adds_prefix_guard() {
        let plan = expect_safe("for $r in /site/regions return for $i in $r//item return $i/name");
        // The composed prefix `/site/regions` is child-only (cannot
        // nest), so only the full spine path guards.
        assert_eq!(plan.guards.len(), 1);
        assert!(plan.guards[0].can_nest());
    }

    #[test]
    fn count_aggregate_goes_two_phase() {
        let plan = expect_safe("<count>{ count(/site/regions//item) }</count>");
        assert_eq!(plan.mode, ShardMode::SumCount);
        assert_eq!(plan.wrappers.len(), 1);
    }

    #[test]
    fn value_join_is_unsafe_via_document_class() {
        // Q8's shape: the classifier calls this Document (value join),
        // which short-circuits the structural walk.
        let reason = expect_unsafe(
            "for $p in /site/people/person return \
               for $t in /site/closed_auctions/closed_auction return \
                 if ($t/buyer/@person = $p/@id) then $p/name else ()",
        );
        assert!(!reason.is_empty());
    }

    #[test]
    fn sum_aggregate_is_unsafe() {
        let reason = expect_unsafe("<s>{ sum(/site/open_auctions/open_auction/current) }</s>");
        assert!(!reason.is_empty());
    }

    #[test]
    fn body_escaping_its_binding_is_unsafe() {
        let reason = expect_unsafe(
            "for $p in /site/people/person return \
               if (exists(/site/regions)) then $p/name else ()",
        );
        assert!(!reason.is_empty());
    }

    #[test]
    fn nested_body_loops_stay_confined() {
        expect_safe(
            "for $p in /site/people/person return \
               for $w in $p/watches/watch return $w/@open_auction",
        );
    }
}
