#![deny(unsafe_code)]
//! # gcx-memtrack — heap high-watermark tracking allocator
//!
//! The paper's Figure 5 reports "the high watermark of non-swapped memory
//! consumption" per engine run. This crate provides a drop-in global
//! allocator that wraps the system allocator with three atomic counters:
//! bytes currently allocated, the peak since the last reset, and the total
//! ever allocated. Benchmark binaries install it and reset the watermark
//! between runs:
//!
//! ```
//! // In a benchmark binary:
//! // #[global_allocator]
//! // static ALLOC: gcx_memtrack::TrackingAllocator = gcx_memtrack::TrackingAllocator::new();
//! gcx_memtrack::reset_peak();
//! let v = vec![0u8; 1 << 16];
//! drop(v);
//! assert!(gcx_memtrack::peak_bytes() >= (1 << 16) || gcx_memtrack::peak_bytes() == 0);
//! ```
//!
//! (The assertion is `||`-guarded in the doctest because the doctest binary
//! does not install the allocator; the unit tests do.)
//!
//! Overhead is a handful of relaxed atomic operations per allocation — low
//! enough to leave timing comparisons meaningful, but benchmark binaries
//! that only measure time should not install it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that tracks live bytes and their peak.
pub struct TrackingAllocator;

impl TrackingAllocator {
    /// Const constructor for `#[global_allocator]` position.
    pub const fn new() -> TrackingAllocator {
        TrackingAllocator
    }
}

impl Default for TrackingAllocator {
    fn default() -> Self {
        TrackingAllocator::new()
    }
}

fn on_alloc(size: usize) {
    let live = CURRENT.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    TOTAL.fetch_add(size as u64, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    // Lock-free peak update.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size as u64, Ordering::Relaxed);
}

// SAFETY: delegates directly to `System`; the bookkeeping never allocates.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Bytes currently allocated.
pub fn live_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// High watermark of live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Total bytes ever allocated.
pub fn total_bytes() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Total number of allocation events (allocs + grow-side reallocs) ever
/// performed. The difference of two readings bounds the allocations a code
/// region performed — the steady-state "allocations per token ≈ 0"
/// assertions are built on this.
pub fn total_allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Reset the high watermark to the current live volume. Call between runs.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Format a byte count the way the paper's table does (e.g. `1.2MB`).
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.1}GB", b / GB)
    } else if b >= MB {
        format!("{:.1}MB", b / MB)
    } else if b >= KB {
        format!("{:.0}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Install the allocator for the test binary so counters move.
    #[global_allocator]
    static ALLOC: TrackingAllocator = TrackingAllocator::new();

    // A single serial test: the counters are process-global, so parallel
    // test threads would race on `reset_peak`.
    #[test]
    fn tracks_allocations() {
        // Peak rises with a large allocation.
        reset_peak();
        let before = live_bytes();
        let v = vec![0u8; 1 << 20];
        assert!(peak_bytes() >= before + (1 << 20));
        assert!(live_bytes() >= before + (1 << 20));
        drop(v);
        assert!(live_bytes() < before + (1 << 20));

        // Total only ever grows.
        let t0 = total_bytes();
        let v2 = vec![1u8; 4096];
        assert!(total_bytes() >= t0 + 4096);
        drop(v2);
        assert!(total_bytes() >= t0 + 4096);

        // Allocation events are counted.
        let a0 = total_allocs();
        let v3 = vec![0u8; 64];
        assert!(total_allocs() > a0);
        drop(v3);

        // Realloc paths (Vec growth) keep live consistent.
        let mut grow = Vec::new();
        for i in 0..10_000u32 {
            grow.push(i);
        }
        let live_with = live_bytes();
        drop(grow);
        assert!(live_bytes() < live_with);
    }

    #[test]
    fn formats_byte_counts() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2KB");
        assert_eq!(fmt_bytes(1_258_291), "1.2MB");
        assert_eq!(fmt_bytes(2_147_483_648), "2.0GB");
    }
}
