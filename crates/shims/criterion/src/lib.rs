#![deny(unsafe_code)]
//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset this workspace's benches use: groups, throughput
//! annotation, `Bencher::iter`, `BenchmarkId`, and the two
//! `criterion_group!` forms. Each benchmark runs one warmup iteration and
//! then `sample_size` timed samples; mean/min/max wall-clock per iteration
//! and derived throughput go to stdout. No statistics, plotting, or
//! baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: scales the printed rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark id, printed as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the timed samples, filled by `iter`.
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`: one warmup call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        self.elapsed.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.elapsed.push(start.elapsed());
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let mbps = b as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mbps:10.1} MiB/s")
        }
        Some(Throughput::Elements(e)) => {
            let eps = e as f64 / mean.as_secs_f64();
            format!("  {eps:10.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "{name:<40} mean {:>10}  min {:>10}  max {:>10}{rate}",
        fmt_dur(mean),
        fmt_dur(min),
        fmt_dur(max)
    );
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Vec::new(),
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            &b.elapsed,
            self.throughput,
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Vec::new(),
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            &b.elapsed,
            self.throughput,
        );
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level harness state.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Set the default number of timed samples (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.to_string(),
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Vec::new(),
        };
        f(&mut b);
        report(&id.to_string(), &b.elapsed, None);
        self
    }
}

/// Declare a benchmark group function. Both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_runner_work() {
        benches();
    }
}
