#![deny(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — seeded
//! [`rngs::StdRng`], [`Rng::gen_range`] over literal `Range` bounds and
//! [`Rng::gen_bool`] — on top of a splitmix64 generator. Deterministic per
//! seed; not the real `rand` value stream and not cryptographic.

use std::ops::Range;

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Sample from `lo..hi` (half-open) using `bits`.
    fn sample_range(lo: Self, hi: Self, bits: u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(lo: Self, hi: Self, bits: u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                assert!(span > 0, "gen_range called with an empty range");
                let off = (bits as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(lo: Self, hi: Self, bits: u64) -> Self {
                assert!(hi > lo, "gen_range called with an empty range");
                // 53 explicit mantissa bits worth of uniformity is plenty.
                let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(range.start, range.end, self.next_u64())
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64). API-compatible with
    /// `rand::rngs::StdRng` for the methods this workspace uses; the value
    /// stream differs from the real crate.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            let f = r.gen_range(1.0..300.0);
            assert!((1.0..300.0).contains(&f));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
