//! Hand-rolled parser for DTD element declarations.
//!
//! The input is either the body of an external DTD file (`--schema FILE`)
//! or the internal subset captured from a `<!DOCTYPE ... [ ... ]>`
//! declaration by the tokenizer. Only `<!ELEMENT ...>` declarations feed
//! the schema model; `<!ATTLIST>`, `<!ENTITY>` and `<!NOTATION>` are
//! skipped quote-aware, comments and processing instructions are skipped
//! whole. Parameter-entity references are rejected with a typed error —
//! the analyses must not run on a half-expanded grammar.

use crate::{ContentExpr, ContentModel, ElementDecl, Rep, SchemaError};

/// Parse a sequence of markup declarations into element declarations.
pub(crate) fn parse_subset(input: &str) -> Result<Vec<ElementDecl>, SchemaError> {
    let mut p = Parser {
        s: input.as_bytes(),
        pos: 0,
    };
    let mut decls = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            return Ok(decls);
        }
        if p.eat_str("<!--") {
            p.skip_until("-->")?;
        } else if p.eat_str("<?") {
            p.skip_until("?>")?;
        } else if p.eat_str("<!ELEMENT") {
            decls.push(p.element_decl()?);
        } else if p.eat_str("<!ATTLIST") || p.eat_str("<!ENTITY") || p.eat_str("<!NOTATION") {
            p.skip_decl()?;
        } else if p.peek() == Some(b'%') {
            return Err(p.err("parameter-entity references are not supported"));
        } else {
            return Err(p.err("expected a markup declaration"));
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> SchemaError {
        SchemaError::new(msg, self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.s.len()
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, lit: &str) -> bool {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), SchemaError> {
        match self.s[self.pos..]
            .windows(end.len())
            .position(|w| w == end.as_bytes())
        {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err("unterminated declaration")),
        }
    }

    /// Skip the remainder of a declaration we don't model, honouring
    /// quoted strings (an ATTLIST default may contain `>`).
    fn skip_decl(&mut self) -> Result<(), SchemaError> {
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated declaration")),
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(q @ (b'"' | b'\'')) => {
                    self.pos += 1;
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == q {
                            break;
                        }
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn name(&mut self) -> Result<String, SchemaError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        // The subset slice is valid UTF-8 (it came from a validated
        // document or file) and the accepted bytes are ASCII.
        Ok(std::str::from_utf8(&self.s[start..self.pos])
            .expect("names are ASCII")
            .to_string())
    }

    fn element_decl(&mut self) -> Result<ElementDecl, SchemaError> {
        self.skip_ws();
        let name = self.name()?;
        self.skip_ws();
        let model = if self.eat_str("EMPTY") {
            ContentModel::Empty
        } else if self.eat_str("ANY") {
            ContentModel::Any
        } else if self.peek() == Some(b'(') {
            self.group_model()?
        } else {
            return Err(self.err("expected EMPTY, ANY or a content group"));
        };
        self.skip_ws();
        if !self.eat(b'>') {
            return Err(self.err("expected '>' closing the element declaration"));
        }
        Ok(ElementDecl { name, model })
    }

    /// A parenthesised content spec: mixed content or a children model.
    fn group_model(&mut self) -> Result<ContentModel, SchemaError> {
        // Lookahead for mixed content: '(' S? '#PCDATA' ...
        let save = self.pos;
        self.pos += 1; // '('
        self.skip_ws();
        if self.eat_str("#PCDATA") {
            let mut names = Vec::new();
            loop {
                self.skip_ws();
                if self.eat(b')') {
                    break;
                }
                if !self.eat(b'|') {
                    return Err(self.err("expected '|' or ')' in mixed content"));
                }
                self.skip_ws();
                names.push(self.name()?);
            }
            // "(#PCDATA)*" and "(#PCDATA)" are both legal; with element
            // alternatives the trailing '*' is mandatory.
            if !self.eat(b'*') && !names.is_empty() {
                return Err(self.err("mixed content with elements requires a trailing '*'"));
            }
            return Ok(ContentModel::Mixed(names));
        }
        self.pos = save;
        let expr = self.cp()?;
        Ok(ContentModel::Children(expr))
    }

    /// One content particle: name or group, with an optional repetition.
    fn cp(&mut self) -> Result<ContentExpr, SchemaError> {
        self.skip_ws();
        let base = if self.eat(b'(') {
            self.group()?
        } else {
            ContentExpr::Name(self.name()?)
        };
        let rep = if self.eat(b'?') {
            Some(Rep::Opt)
        } else if self.eat(b'*') {
            Some(Rep::Star)
        } else if self.eat(b'+') {
            Some(Rep::Plus)
        } else {
            None
        };
        Ok(match rep {
            Some(r) => ContentExpr::Repeat(Box::new(base), r),
            None => base,
        })
    }

    /// The inside of a group (after '('): a choice or a sequence.
    fn group(&mut self) -> Result<ContentExpr, SchemaError> {
        let first = self.cp()?;
        self.skip_ws();
        let sep = match self.peek() {
            Some(b')') => {
                self.pos += 1;
                return Ok(first);
            }
            Some(s @ (b'|' | b',')) => s,
            _ => return Err(self.err("expected '|', ',' or ')' in content group")),
        };
        let mut items = vec![first];
        while self.eat(sep) {
            items.push(self.cp()?);
            self.skip_ws();
        }
        if !self.eat(b')') {
            return Err(self.err("expected ')' closing the content group"));
        }
        Ok(if sep == b'|' {
            ContentExpr::Choice(items)
        } else {
            ContentExpr::Seq(items)
        })
    }
}
