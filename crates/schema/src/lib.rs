#![deny(unsafe_code)]
//! # gcx-schema — DTD model and schema analyses for GCX
//!
//! GCX's projection is schema-blind: the matcher must keep data alive
//! against matches the DTD provably forbids, and the evaluator must wait
//! for a parent's close tag before it can be sure no further sibling
//! match arrives. This crate supplies the schema knowledge that removes
//! both sources of slack (in the spirit of FluX's schema-based buffer
//! minimization and of earliest query answering over streamed trees):
//!
//! 1. **Projection pruning** — [`Dtd::prune`] intersects each compiled
//!    projection path with the DTD's content models and drops paths the
//!    schema proves unsatisfiable, so the matcher tracks fewer states and
//!    the buffer admits fewer roles.
//! 2. **Descendant reachability** — [`Dtd::reach_filter`] closes the
//!    world below each declared element; the matcher uses it to stop
//!    propagating descendant-axis states into subtrees where their test
//!    can never match (see `gcx_projection::ReachFilter`).
//! 3. **Sibling orders** — [`Dtd::ord_table`] extracts, from content
//!    models that are pure sequences (`(location, quantity, name, ...)`),
//!    a per-parent child ordinal table. The engine uses it to derive "no
//!    further `name` child can arrive once a later sibling started" facts
//!    and to emit / sign off / purge at that point instead of waiting for
//!    the parent's close tag.
//!
//! All three are **sound for schema-valid input**: on valid documents
//! outputs and role assignments are unchanged while buffer peaks can only
//! shrink. On documents violating the DTD, behaviour may differ — a
//! schema is a promise about the input.
//!
//! The DTD itself is parsed from the internal subset of a `<!DOCTYPE>`
//! declaration (the tokenizer captures it verbatim) or from an external
//! DTD file (`--schema FILE`); [`Dtd::xmark`] bundles a DTD matching the
//! `gcx-xmark` generator exactly.

use gcx_projection::{CompiledPaths, ReachFilter, StepView, TestView};
use gcx_query::ast::{Axis, RoleId};
use gcx_xml::{Symbol, SymbolTable};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

mod parse;

/// The bundled DTD for `gcx-xmark` generator output (`--schema xmark`).
pub const XMARK_DTD: &str = include_str!("xmark.dtd");

/// Error from DTD parsing or doctype interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    msg: String,
    pos: usize,
}

impl SchemaError {
    pub(crate) fn new(msg: &str, pos: usize) -> SchemaError {
        SchemaError {
            msg: msg.to_string(),
            pos,
        }
    }

    /// What went wrong.
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// Byte offset into the DTD text where the error was detected.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DTD error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for SchemaError {}

/// Repetition suffix of a content particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rep {
    /// `?` — zero or one.
    Opt,
    /// `*` — zero or more.
    Star,
    /// `+` — one or more.
    Plus,
}

/// A children content expression (the inside of a `(...)` group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentExpr {
    /// An element name.
    Name(String),
    /// `(a, b, c)` — sequence.
    Seq(Vec<ContentExpr>),
    /// `(a | b | c)` — choice.
    Choice(Vec<ContentExpr>),
    /// A particle with a repetition suffix.
    Repeat(Box<ContentExpr>, Rep),
}

/// The content model of one element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY` — no children, no text.
    Empty,
    /// `ANY` — unconstrained content.
    Any,
    /// `(#PCDATA | a | b)*` — text interleaved with the listed elements.
    Mixed(Vec<String>),
    /// An element-content group.
    Children(ContentExpr),
}

/// One `<!ELEMENT name model>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// Its content model.
    pub model: ContentModel,
}

/// Per-declaration facts derived once at [`Dtd`] construction.
#[derive(Debug, Clone, Default)]
struct ElemFacts {
    /// Names referenced as possible children (elements only, deduped).
    child_refs: Vec<String>,
    /// Direct text children possible (`#PCDATA` or `ANY`).
    pcdata: bool,
    /// Content is `ANY` or references an undeclared element: the world
    /// below is open.
    child_open: bool,
    /// Declared elements reachable as proper descendants (decl indices).
    desc_decls: Vec<usize>,
    /// Undeclared names reachable as proper descendants.
    desc_undecl: Vec<String>,
    /// Some reachable subtree is open — the descendant world cannot be
    /// closed for this element.
    desc_open: bool,
    /// A text node can appear among proper descendants.
    desc_text: bool,
    /// `child name -> ordinal` when the content model is a pure top-level
    /// sequence of (possibly repeated) names; the engine's cutoff facts.
    orders: Option<Vec<(String, u32)>>,
}

/// A parsed DTD with derived analyses.
#[derive(Debug, Clone)]
pub struct Dtd {
    /// Document element name, when known (from the DOCTYPE declaration).
    root: Option<String>,
    decls: Vec<ElementDecl>,
    index: HashMap<String, usize>,
    facts: Vec<ElemFacts>,
}

impl Dtd {
    /// Parse a bare DTD (markup declarations only — an external DTD file
    /// or an internal subset without its `DOCTYPE` wrapper).
    pub fn parse(text: &str) -> Result<Dtd, SchemaError> {
        Dtd::build(None, parse::parse_subset(text)?)
    }

    /// Interpret a captured `DOCTYPE` declaration given its parsed parts:
    /// the document element name and the internal subset, if any. A
    /// DOCTYPE without an internal subset (e.g. `SYSTEM "..."` only)
    /// yields a [`Dtd`] that knows the root name but constrains nothing.
    pub fn from_doctype_parts(name: &str, subset: Option<&str>) -> Result<Dtd, SchemaError> {
        let decls = match subset {
            Some(s) => parse::parse_subset(s)?,
            None => Vec::new(),
        };
        Dtd::build(Some(name.to_string()), decls)
    }

    /// The bundled XMark DTD (matches the `gcx-xmark` generator).
    pub fn xmark() -> Arc<Dtd> {
        static CELL: OnceLock<Arc<Dtd>> = OnceLock::new();
        Arc::clone(CELL.get_or_init(|| {
            let mut dtd = Dtd::parse(XMARK_DTD).expect("bundled XMark DTD parses");
            dtd.root = Some("site".to_string());
            Arc::new(dtd)
        }))
    }

    fn build(root: Option<String>, decls: Vec<ElementDecl>) -> Result<Dtd, SchemaError> {
        let mut index = HashMap::new();
        for (i, d) in decls.iter().enumerate() {
            if index.insert(d.name.clone(), i).is_some() {
                return Err(SchemaError::new(
                    &format!("element '{}' declared twice", d.name),
                    0,
                ));
            }
        }
        let mut dtd = Dtd {
            root,
            decls,
            index,
            facts: Vec::new(),
        };
        dtd.derive_facts();
        Ok(dtd)
    }

    /// Document element name, when the DOCTYPE supplied one.
    pub fn root(&self) -> Option<&str> {
        self.root.as_deref()
    }

    /// Number of element declarations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True when the DTD declares nothing (all analyses are no-ops).
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Look up one declaration.
    pub fn get(&self, name: &str) -> Option<&ElementDecl> {
        self.index.get(name).map(|&i| &self.decls[i])
    }

    /// The sequence ordinals of `name`'s children, when its content model
    /// is a pure top-level sequence (`child name -> ordinal`).
    pub fn sequence_orders(&self, name: &str) -> Option<&[(String, u32)]> {
        let &i = self.index.get(name)?;
        self.facts[i].orders.as_deref()
    }

    // ---- derived facts ------------------------------------------------

    fn derive_facts(&mut self) {
        let n = self.decls.len();
        let mut facts: Vec<ElemFacts> = Vec::with_capacity(n);
        for d in &self.decls {
            let mut f = ElemFacts::default();
            match &d.model {
                ContentModel::Empty => {}
                ContentModel::Any => {
                    f.pcdata = true;
                    f.child_open = true;
                }
                ContentModel::Mixed(names) => {
                    f.pcdata = true;
                    for nm in names {
                        push_unique(&mut f.child_refs, nm);
                    }
                }
                ContentModel::Children(expr) => collect_names(expr, &mut f.child_refs),
            }
            f.child_open |= f.child_refs.iter().any(|nm| !self.index.contains_key(nm));
            f.orders = sequence_orders_of(&d.model);
            facts.push(f);
        }
        // Fixpoint closure for descendant sets. DTDs can be recursive, so
        // iterate until stable; the universe is tiny (tens of decls).
        let mut desc: Vec<Vec<bool>> = vec![vec![false; n]; n];
        let mut open: Vec<bool> = facts.iter().map(|f| f.child_open).collect();
        let mut text: Vec<bool> = facts.iter().map(|f| f.pcdata).collect();
        loop {
            let mut changed = false;
            for e in 0..n {
                for nm in &facts[e].child_refs {
                    let Some(&c) = self.index.get(nm) else {
                        continue;
                    };
                    if !desc[e][c] {
                        desc[e][c] = true;
                        changed = true;
                    }
                    if c != e {
                        // Split borrow: rows c (read) and e (written).
                        let row_c = std::mem::take(&mut desc[c]);
                        for (g, d) in desc[e].iter_mut().enumerate() {
                            if row_c[g] && !*d {
                                *d = true;
                                changed = true;
                            }
                        }
                        desc[c] = row_c;
                    }
                    if open[c] && !open[e] {
                        open[e] = true;
                        changed = true;
                    }
                    if text[c] && !text[e] {
                        text[e] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for e in 0..n {
            facts[e].desc_decls = (0..n).filter(|&g| desc[e][g]).collect();
            facts[e].desc_open = open[e];
            facts[e].desc_text = text[e];
            // Undeclared names below: own refs plus those of reachable decls.
            let mut undecl = Vec::new();
            let sources = std::iter::once(e).chain(facts[e].desc_decls.iter().copied());
            for src in sources {
                for nm in &facts[src].child_refs {
                    if !self.index.contains_key(nm) {
                        push_unique(&mut undecl, nm);
                    }
                }
            }
            facts[e].desc_undecl = undecl;
        }
        self.facts = facts;
    }

    // ---- analysis 1: projection-path satisfiability -------------------

    /// Intersect every compiled projection path with the content models
    /// and drop the unsatisfiable ones. Zero-step (document root) paths
    /// are always kept. Returns the filtered paths plus what was pruned,
    /// for `explain` and the stats report.
    pub fn prune(&self, paths: &CompiledPaths, symbols: &SymbolTable) -> Prune {
        let total = paths.len();
        let mut keep = vec![true; total];
        let mut pruned = Vec::new();
        if !self.is_empty() {
            for (p, kept) in keep.iter_mut().enumerate() {
                let steps: Vec<StepView> = paths.steps_of(p).collect();
                if steps.is_empty() {
                    continue;
                }
                if !self.satisfiable(&steps, symbols) {
                    *kept = false;
                    pruned.push((paths.role_of(p), render_path(&steps, symbols)));
                }
            }
        }
        Prune {
            paths: paths.filtered(&keep),
            pruned,
            total,
        }
    }

    /// Can `steps` (an absolute path from the document root) select any
    /// node in a document valid against this DTD?
    fn satisfiable(&self, steps: &[StepView], symbols: &SymbolTable) -> bool {
        // Context: the set of nodes the already-consumed prefix may have
        // landed on. `None` elems + open=false would mean "nowhere".
        let mut virtual_root = true;
        let mut elems: Vec<usize> = Vec::new();
        let mut open = false;
        for (si, step) in steps.iter().enumerate() {
            let mut nelems: Vec<usize> = Vec::new();
            let mut nopen = false;
            let mut text_possible = false;
            let collect = |set: &mut Vec<usize>, idx: usize| {
                if !set.contains(&idx) {
                    set.push(idx);
                }
            };
            // Candidate element/text targets per axis, from each context.
            let from_children = |refs: &[String],
                                 child_open: bool,
                                 pcdata: bool,
                                 nelems: &mut Vec<usize>,
                                 nopen: &mut bool,
                                 text_possible: &mut bool| {
                match step.test {
                    TestView::Name(s) => {
                        let name = symbols.resolve(s);
                        if child_open || refs.iter().any(|r| r == name) {
                            match self.index.get(name) {
                                Some(&i) => collect(nelems, i),
                                None => *nopen = true,
                            }
                        }
                    }
                    TestView::Star | TestView::AnyNode => {
                        for r in refs {
                            match self.index.get(r) {
                                Some(&i) => collect(nelems, i),
                                None => *nopen = true,
                            }
                        }
                        *nopen |= child_open;
                    }
                    TestView::Text => {}
                }
                if matches!(step.test, TestView::Text | TestView::AnyNode) {
                    *text_possible |= pcdata || child_open;
                }
            };
            let from_self = |idx: usize, nelems: &mut Vec<usize>| match step.test {
                TestView::Name(s) => {
                    if self.decls[idx].name == symbols.resolve(s) {
                        collect(nelems, idx);
                    }
                }
                TestView::Star | TestView::AnyNode => collect(nelems, idx),
                TestView::Text => {}
            };
            if virtual_root {
                // Children of the virtual root: the document element.
                let doc_elems: Vec<usize> = match &self.root {
                    Some(r) => match self.index.get(r) {
                        Some(&i) => vec![i],
                        None => Vec::new(),
                    },
                    None => (0..self.decls.len()).collect(),
                };
                let root_open = match &self.root {
                    Some(r) => !self.index.contains_key(r),
                    // No root name: any declared element (or an undeclared
                    // one) could be the document element.
                    None => true,
                };
                let refs: Vec<String> = doc_elems
                    .iter()
                    .map(|&i| self.decls[i].name.clone())
                    .collect();
                match step.axis {
                    Axis::Child | Axis::SelfAxis => {
                        // `self` on the virtual root only matters for the
                        // leading descendant-or-self::node() of subtree
                        // roles, which AnyNode handles below; a plain self
                        // step from the root behaves like staying put.
                        if step.axis == Axis::SelfAxis {
                            // Stay on the virtual root; only node() passes.
                            if matches!(step.test, TestView::AnyNode) {
                                continue;
                            }
                            return false;
                        }
                        from_children(
                            &refs,
                            root_open,
                            false,
                            &mut nelems,
                            &mut nopen,
                            &mut text_possible,
                        );
                    }
                    Axis::Descendant | Axis::DescendantOrSelf => {
                        if step.axis == Axis::DescendantOrSelf
                            && matches!(step.test, TestView::AnyNode)
                        {
                            // May also stay on the virtual root itself.
                            // Approximate by keeping the root context AND
                            // all element targets: the union is what the
                            // matcher's closure does.
                            // (Handled by falling through: targets below
                            // plus continuing from the root is equivalent
                            // to nopen when the root world is open.)
                        }
                        from_children(
                            &refs,
                            root_open,
                            false,
                            &mut nelems,
                            &mut nopen,
                            &mut text_possible,
                        );
                        for &d in &doc_elems {
                            let f = &self.facts[d];
                            let drefs: Vec<String> = f
                                .desc_decls
                                .iter()
                                .map(|&g| self.decls[g].name.clone())
                                .chain(f.desc_undecl.iter().cloned())
                                .collect();
                            from_children(
                                &drefs,
                                f.desc_open,
                                f.desc_text,
                                &mut nelems,
                                &mut nopen,
                                &mut text_possible,
                            );
                        }
                        if step.axis == Axis::DescendantOrSelf
                            && matches!(step.test, TestView::AnyNode)
                        {
                            // Self part: next step still starts at the root.
                            if si + 1 < steps.len() {
                                // Conservatively keep satisfiability by
                                // checking the suffix from the root too.
                                if self.satisfiable(&steps[si + 1..], symbols) {
                                    return true;
                                }
                            } else {
                                return true;
                            }
                        }
                    }
                    Axis::Attribute => return true,
                }
                virtual_root = false;
            } else {
                match step.axis {
                    Axis::Child => {
                        for &e in &elems {
                            let f = &self.facts[e];
                            from_children(
                                &f.child_refs,
                                f.child_open,
                                f.pcdata,
                                &mut nelems,
                                &mut nopen,
                                &mut text_possible,
                            );
                        }
                        if open {
                            from_children(
                                &[],
                                true,
                                true,
                                &mut nelems,
                                &mut nopen,
                                &mut text_possible,
                            );
                        }
                    }
                    Axis::Descendant | Axis::DescendantOrSelf => {
                        for &e in &elems {
                            let f = &self.facts[e];
                            let drefs: Vec<String> = f
                                .desc_decls
                                .iter()
                                .map(|&g| self.decls[g].name.clone())
                                .chain(f.desc_undecl.iter().cloned())
                                .collect();
                            from_children(
                                &drefs,
                                f.desc_open,
                                f.desc_text,
                                &mut nelems,
                                &mut nopen,
                                &mut text_possible,
                            );
                            if step.axis == Axis::DescendantOrSelf {
                                from_self(e, &mut nelems);
                            }
                        }
                        if open {
                            from_children(
                                &[],
                                true,
                                true,
                                &mut nelems,
                                &mut nopen,
                                &mut text_possible,
                            );
                        }
                        nopen |= open && step.axis == Axis::DescendantOrSelf;
                    }
                    Axis::SelfAxis => {
                        for &e in &elems {
                            from_self(e, &mut nelems);
                        }
                        nopen |= open;
                        if matches!(step.test, TestView::Text | TestView::AnyNode) && open {
                            text_possible = true;
                        }
                    }
                    Axis::Attribute => return true,
                }
            }
            if nelems.is_empty() && !nopen && !text_possible {
                return false;
            }
            elems = nelems;
            open = nopen;
        }
        true
    }

    // ---- analysis 2: descendant reachability --------------------------

    /// Build the matcher's descendant-reachability filter. Interns every
    /// DTD name into `symbols` (before any document bytes arrive) so the
    /// filter and the stream speak the same symbols.
    pub fn reach_filter(&self, symbols: &mut SymbolTable) -> ReachFilter {
        let elem_syms: Vec<Symbol> = self.decls.iter().map(|d| symbols.intern(&d.name)).collect();
        // Also intern undeclared-but-referenced names: they are legal
        // descendants and must be present in the closed worlds.
        let undecl_syms: Vec<Vec<Symbol>> = self
            .facts
            .iter()
            .map(|f| f.desc_undecl.iter().map(|n| symbols.intern(n)).collect())
            .collect();
        let mut filter = ReachFilter::new(symbols.len());
        for (e, f) in self.facts.iter().enumerate() {
            if f.desc_open {
                continue;
            }
            let mut names: Vec<Symbol> = f.desc_decls.iter().map(|&g| elem_syms[g]).collect();
            names.extend(&undecl_syms[e]);
            filter.close(elem_syms[e], &names, f.desc_text);
        }
        filter
    }

    // ---- analysis 3: sibling orders -----------------------------------

    /// Build the engine's sibling-order table. Interns the participating
    /// names into `symbols` (must happen before document bytes arrive so
    /// symbols agree with the stream).
    pub fn ord_table(&self, symbols: &mut SymbolTable) -> OrdTable {
        let mut per_parent: Vec<Option<OrdRow>> = Vec::new();
        let mut n_parents = 0usize;
        for (d, f) in self.decls.iter().zip(&self.facts) {
            let Some(orders) = &f.orders else { continue };
            let parent = symbols.intern(&d.name);
            let mut row: Vec<(Symbol, u32)> = orders
                .iter()
                .map(|(nm, ord)| (symbols.intern(nm), *ord))
                .collect();
            row.sort_unstable_by_key(|&(s, _)| s);
            if parent.index() >= per_parent.len() {
                per_parent.resize(parent.index() + 1, None);
            }
            per_parent[parent.index()] = Some(row.into_boxed_slice());
            n_parents += 1;
        }
        OrdTable {
            per_parent,
            n_parents,
        }
    }

    /// One-line summary for `explain` and logs.
    pub fn summary(&self) -> String {
        let sequenced = self.facts.iter().filter(|f| f.orders.is_some()).count();
        let closed = self.facts.iter().filter(|f| !f.desc_open).count();
        format!(
            "{} element declaration(s), root {}, {} with sequenced children, {} with closed descendant world",
            self.decls.len(),
            self.root.as_deref().unwrap_or("(unknown)"),
            sequenced,
            closed,
        )
    }
}

/// Outcome of [`Dtd::prune`].
#[derive(Debug, Clone)]
pub struct Prune {
    /// The surviving paths, to build the matcher from.
    pub paths: CompiledPaths,
    /// What was dropped: role and rendered path.
    pub pruned: Vec<(RoleId, String)>,
    /// Paths examined (pruned + kept).
    pub total: usize,
}

impl Prune {
    /// Number of surviving paths.
    pub fn kept(&self) -> usize {
        self.total - self.pruned.len()
    }
}

/// One parent's child names with their sequence ordinals, sorted by symbol.
type OrdRow = Box<[(Symbol, u32)]>;

/// Per-parent child sequence ordinals, keyed by [`Symbol`]. Built once per
/// run by [`Dtd::ord_table`]; the engine consults it on every start tag.
#[derive(Debug, Clone, Default)]
pub struct OrdTable {
    per_parent: Vec<Option<OrdRow>>,
    n_parents: usize,
}

impl OrdTable {
    /// True when no element has usable orders.
    pub fn is_empty(&self) -> bool {
        self.n_parents == 0
    }

    /// Does `parent` have a sequenced content model at all?
    #[inline]
    pub fn has_parent(&self, parent: Symbol) -> bool {
        matches!(self.per_parent.get(parent.index()), Some(Some(_)))
    }

    /// The sequence ordinal of a `child` element under `parent`, when the
    /// parent's content model is a pure sequence and the child appears in
    /// it.
    #[inline]
    pub fn ord(&self, parent: Symbol, child: Symbol) -> Option<u32> {
        let row = self.per_parent.get(parent.index())?.as_deref()?;
        row.binary_search_by_key(&child, |&(s, _)| s)
            .ok()
            .map(|i| row[i].1)
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

fn collect_names(expr: &ContentExpr, out: &mut Vec<String>) {
    match expr {
        ContentExpr::Name(n) => push_unique(out, n),
        ContentExpr::Seq(items) | ContentExpr::Choice(items) => {
            for i in items {
                collect_names(i, out);
            }
        }
        ContentExpr::Repeat(inner, _) => collect_names(inner, out),
    }
}

/// `child name -> ordinal` for pure top-level sequences of (possibly
/// repeated) names; `None` for anything with choices or nested groups.
fn sequence_orders_of(model: &ContentModel) -> Option<Vec<(String, u32)>> {
    let particle_name = |e: &ContentExpr| -> Option<String> {
        match e {
            ContentExpr::Name(n) => Some(n.clone()),
            ContentExpr::Repeat(inner, _) => match inner.as_ref() {
                ContentExpr::Name(n) => Some(n.clone()),
                _ => None,
            },
            _ => None,
        }
    };
    let items: Vec<String> = match model {
        ContentModel::Children(ContentExpr::Seq(items)) => {
            items.iter().map(&particle_name).collect::<Option<_>>()?
        }
        ContentModel::Children(other) => vec![particle_name(other)?],
        _ => return None,
    };
    let mut orders: Vec<(String, u32)> = Vec::with_capacity(items.len());
    for (i, nm) in items.into_iter().enumerate() {
        // A name in several particles keeps its LAST ordinal: it stays
        // arrivable until the last particle containing it has passed.
        match orders.iter_mut().find(|(n, _)| *n == nm) {
            Some((_, o)) => *o = i as u32,
            None => orders.push((nm, i as u32)),
        }
    }
    Some(orders)
}

/// Render a compiled path for explain output (`/site/people/person`).
fn render_path(steps: &[StepView], symbols: &SymbolTable) -> String {
    let mut out = String::new();
    for s in steps {
        out.push('/');
        match s.axis {
            Axis::Child => {}
            Axis::Descendant => out.push_str("descendant::"),
            Axis::DescendantOrSelf => out.push_str("descendant-or-self::"),
            Axis::SelfAxis => out.push_str("self::"),
            Axis::Attribute => out.push('@'),
        }
        match s.test {
            TestView::Name(n) => out.push_str(symbols.resolve(n)),
            TestView::Star => out.push('*'),
            TestView::Text => out.push_str("text()"),
            TestView::AnyNode => out.push_str("node()"),
        }
        if let Some(k) = s.pos {
            out.push_str(&format!("[{k}]"));
        }
    }
    if out.is_empty() {
        out.push('/');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_projection::analyze;

    fn compiled_for(query: &str) -> (CompiledPaths, SymbolTable) {
        let q = gcx_query::compile(query).unwrap();
        let a = analyze(&q);
        let mut symbols = SymbolTable::new();
        let paths = CompiledPaths::compile(&a.roles, &mut symbols);
        (paths, symbols)
    }

    #[test]
    fn parses_the_bundled_xmark_dtd() {
        let dtd = Dtd::xmark();
        assert_eq!(dtd.root(), Some("site"));
        assert!(dtd.len() > 40, "got {}", dtd.len());
        assert!(dtd.get("person").is_some());
        assert!(dtd.get("homepage").is_none());
    }

    #[test]
    fn xmark_person_orders() {
        let dtd = Dtd::xmark();
        let orders = dtd.sequence_orders("person").expect("person is a sequence");
        let ord = |n: &str| orders.iter().find(|(m, _)| m == n).map(|&(_, o)| o);
        assert_eq!(ord("name"), Some(0));
        assert_eq!(ord("emailaddress"), Some(1));
        assert_eq!(ord("watches"), Some(6));
        assert_eq!(ord("homepage"), None);
        // Starred lists are still sequences.
        assert!(dtd.sequence_orders("people").is_some());
        // Mixed/EMPTY content has no orders.
        assert!(dtd.sequence_orders("name").is_none());
        assert!(dtd.sequence_orders("incategory").is_none());
    }

    #[test]
    fn prune_drops_schema_impossible_paths() {
        let dtd = Dtd::xmark();
        // person has no `item` child: the binding path is unsatisfiable.
        let (paths, symbols) =
            compiled_for("for $p in /site/people/person return for $i in $p/item return $i");
        let prune = dtd.prune(&paths, &symbols);
        assert!(
            !prune.pruned.is_empty(),
            "at least the $p/item paths must go"
        );
        assert!(prune.kept() < prune.total);
        assert!(
            prune.pruned.iter().any(|(_, p)| p.contains("item")),
            "{:?}",
            prune.pruned
        );
    }

    #[test]
    fn prune_keeps_satisfiable_paper_shapes() {
        let dtd = Dtd::xmark();
        for q in [
            "for $p in /site/people/person return $p/name",
            "for $i in /site/regions/australia/item return $i/name",
            "for $b in /site/regions return $b//item/name",
            "for $i in //item return $i/name",
            "for $p in /site/people/person return if (exists($p/address)) then $p/name else ()",
        ] {
            let (paths, symbols) = compiled_for(q);
            let prune = dtd.prune(&paths, &symbols);
            assert!(
                prune.pruned.is_empty(),
                "query {q} lost paths: {:?}",
                prune.pruned
            );
        }
    }

    #[test]
    fn prune_is_inert_without_declarations() {
        let dtd = Dtd::from_doctype_parts("site", None).unwrap();
        let (paths, symbols) = compiled_for("for $x in /nowhere/at/all return $x");
        let prune = dtd.prune(&paths, &symbols);
        assert!(prune.pruned.is_empty());
        assert_eq!(prune.kept(), prune.total);
    }

    #[test]
    fn q17_homepage_is_pruned() {
        let dtd = Dtd::xmark();
        let (paths, symbols) = compiled_for(
            "for $p in /site/people/person return \
             if (not(exists($p/homepage))) then $p/name else ()",
        );
        let prune = dtd.prune(&paths, &symbols);
        assert!(
            prune.pruned.iter().any(|(_, p)| p.contains("/homepage")),
            "{:?}",
            prune.pruned
        );
    }

    #[test]
    fn reach_filter_closes_xmark_worlds() {
        let dtd = Dtd::xmark();
        let mut symbols = SymbolTable::new();
        let filter = dtd.reach_filter(&mut symbols);
        // Every XMark element has closed content (mail is declared).
        assert_eq!(filter.closed_count(), dtd.len());
        assert!(symbols.get("emailaddress").is_some());
    }

    #[test]
    fn ord_table_round_trips_symbols() {
        let dtd = Dtd::xmark();
        let mut symbols = SymbolTable::new();
        let t = dtd.ord_table(&mut symbols);
        assert!(!t.is_empty());
        let person = symbols.get("person").unwrap();
        let name = symbols.get("name").unwrap();
        let email = symbols.get("emailaddress").unwrap();
        assert_eq!(t.ord(person, name), Some(0));
        assert_eq!(t.ord(person, email), Some(1));
        assert!(t.has_parent(person));
        let site = symbols.get("site").unwrap();
        assert_eq!(t.ord(site, symbols.get("people").unwrap()), Some(3));
        // Unknown pairs answer None.
        assert_eq!(t.ord(name, person), None);
    }

    #[test]
    fn doctype_without_subset_knows_only_the_root() {
        let dtd = Dtd::from_doctype_parts("site", None).unwrap();
        assert_eq!(dtd.root(), Some("site"));
        assert!(dtd.is_empty());
        let mut symbols = SymbolTable::new();
        assert!(dtd.ord_table(&mut symbols).is_empty());
        assert_eq!(dtd.reach_filter(&mut symbols).closed_count(), 0);
    }

    #[test]
    fn parse_errors_are_typed_not_panics() {
        for bad in [
            "<!ELEMENT a (b,>",
            "<!ELEMENT a",
            "<!ELEMENT a (#PCDATA | b)>",
            "%param;",
            "<!BOGUS x>",
            "<!ELEMENT a (b) junk>",
        ] {
            let err = Dtd::parse(bad).expect_err(bad);
            assert!(!err.message().is_empty());
        }
    }

    #[test]
    fn recursive_dtds_reach_fixpoint() {
        // a -> b -> a cycles must terminate and close correctly.
        let dtd =
            Dtd::parse("<!ELEMENT a (b*)> <!ELEMENT b (a*, c?)> <!ELEMENT c (#PCDATA)>").unwrap();
        let mut symbols = SymbolTable::new();
        let f = dtd.reach_filter(&mut symbols);
        assert_eq!(f.closed_count(), 3);
        let (paths, qsyms) = {
            let q = gcx_query::compile("for $x in /a//c return $x").unwrap();
            let a = analyze(&q);
            let mut s = SymbolTable::new();
            (CompiledPaths::compile(&a.roles, &mut s), s)
        };
        // c is reachable from a through the cycle: nothing pruned.
        let prune = dtd.prune(&paths, &qsyms);
        assert!(prune.pruned.is_empty(), "{:?}", prune.pruned);
    }
}
