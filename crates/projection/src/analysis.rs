//! Projection-path extraction, role derivation and signOff insertion.
//!
//! ## Role derivation (paper §2, §3 "Static analysis")
//!
//! Walking the normalized query with an environment mapping variables to the
//! absolute paths they were bound from:
//!
//! * the document root gets role r1 (path `/`);
//! * every for-loop contributes a **binding role** on its absolute source
//!   path (the paper's r2, r3, r6);
//! * a path in output position contributes a role on
//!   `path/descendant-or-self::node()` — whole subtrees must remain
//!   emittable (r5, r7);
//! * an `exists` argument contributes a **first-witness** role: `[1]` is
//!   appended to the final child step (r4);
//! * comparison operands and aggregate arguments contribute value-retention
//!   roles (subtree text; attribute-terminated paths only retain the owner
//!   element, since attributes travel with their start tag).
//!
//! ## signOff placement
//!
//! A role's signOff is **anchored** at a variable `$v` when the statement
//! `signOff($v/rel, r)` placed at the end of `$v`'s loop body executes
//! exactly once per binding of `$v`. That holds when the loop binding `$v`
//! is *unique*: its statement runs exactly once per binding of its source
//! root, transitively up to the query root, and is not under a conditional.
//! Loops that re-execute (the inner side of a join — their source is rooted
//! at a variable bound further out than the immediately enclosing loop) and
//! loops under `if` branches anchor at the nearest unique ancestor on their
//! source chain, or at query end. This is what makes XMark Q8's buffer grow
//! while Q1/Q6/Q13/Q20 stay flat — exactly the behaviour in the paper's
//! Figures 4 and 5.
//!
//! ## Balance invariant
//!
//! The runtime decrements role instances with derivation multiplicities
//! (see `gcx-core`): over a whole run, every role instance assigned by the
//! stream matcher is removed by exactly one signOff execution. Tests in
//! `gcx-core` assert the buffer drains to the virtual root.

use crate::roles::{Anchor, RoleOrigin, RoleTable};
use gcx_query::ast::*;

/// Result of static analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The role table (projection paths).
    pub roles: RoleTable,
    /// The query with signOff statements inserted.
    pub rewritten: Query,
    /// Binding role per variable (every for-variable has one).
    pub binding_roles: Vec<Option<RoleId>>,
}

impl Analysis {
    /// The paper-style mapping listing: roles and their paths.
    pub fn roles_listing(&self) -> String {
        self.roles.listing()
    }
}

/// Analyze a normalized query: derive roles and insert signOff statements.
pub fn analyze(query: &Query) -> Analysis {
    let n = query.var_names.len();
    let mut cx = Cx {
        roles: RoleTable::new(),
        vars: vec![None; n],
        var_names: query.var_names.clone(),
        binding_roles: vec![None; n],
        query_end: Vec::new(),
        loop_stack: Vec::new(),
        cond_depth: 0,
    };
    // r1: the document root.
    let r1 = cx.roles.push(
        Vec::new(),
        RoleOrigin::DocumentRoot,
        Anchor::QueryEnd,
        Vec::new(),
    );
    cx.query_end.push((root_path(Vec::new()), r1));

    let rewritten_root = cx.expr(&query.root);
    // Append the query-end signOffs after the whole query.
    let mut items = vec![rewritten_root];
    let signoffs = std::mem::take(&mut cx.query_end);
    items.extend(
        signoffs
            .into_iter()
            .map(|(target, role)| Expr::SignOff { target, role }),
    );
    let rewritten = Query {
        root: Expr::seq(items),
        var_names: query.var_names.clone(),
        uses_aggregates: query.uses_aggregates,
    };
    Analysis {
        roles: cx.roles,
        rewritten,
        binding_roles: cx.binding_roles,
    }
}

/// Per-variable info established when its loop is entered.
#[derive(Debug, Clone)]
struct VarInfo {
    /// Absolute path from the document root.
    abs: Vec<Step>,
    /// True when the loop body runs exactly once per bound node over the
    /// whole evaluation.
    unique: bool,
    /// Variable the source path is rooted at (None = document root).
    source_root: Option<VarId>,
    /// signOffs to append at the end of this loop's body, in order.
    signoffs: Vec<(PathExpr, RoleId)>,
}

struct Cx {
    roles: RoleTable,
    vars: Vec<Option<VarInfo>>,
    var_names: Vec<String>,
    binding_roles: Vec<Option<RoleId>>,
    query_end: Vec<(PathExpr, RoleId)>,
    /// Enclosing loops, innermost last, with the conditional depth at which
    /// each body started.
    loop_stack: Vec<(VarId, u32)>,
    /// Number of enclosing `if` branches.
    cond_depth: u32,
}

fn root_path(steps: Vec<Step>) -> PathExpr {
    PathExpr {
        root: PathRoot::Root,
        steps,
        span: Span::default(),
    }
}

/// How a syntactic use turns into a role path.
enum UseKind {
    Output,
    Exists,
    Comparison,
    Aggregate(AggFunc),
}

impl Cx {
    fn info(&self, v: VarId) -> &VarInfo {
        self.vars[v.index()]
            .as_ref()
            .expect("variable used before its loop was analyzed")
    }

    /// Absolute path of a path expression.
    fn abs_of(&self, p: &PathExpr) -> Vec<Step> {
        let mut abs = match &p.root {
            PathRoot::Root => Vec::new(),
            PathRoot::Var(v) => self.info(v.id).abs.clone(),
        };
        abs.extend(p.steps.iter().cloned());
        abs
    }

    /// Find the anchor for a role rooted at `root`: the nearest variable on
    /// the source chain whose loop is unique, else query end.
    fn anchor_of(&self, root: Option<VarId>) -> Anchor {
        let mut cur = root;
        loop {
            match cur {
                None => return Anchor::QueryEnd,
                Some(v) => {
                    let info = self.info(v);
                    if info.unique {
                        return Anchor::Var(v);
                    }
                    cur = info.source_root;
                }
            }
        }
    }

    /// Register a role with its signOff at the right anchor.
    fn add_role(&mut self, abs: Vec<Step>, origin: RoleOrigin, rooted_at: Option<VarId>) -> RoleId {
        let anchor = self.anchor_of(rooted_at);
        let (rel, target) = match anchor {
            Anchor::QueryEnd => (abs.clone(), root_path(abs.clone())),
            Anchor::Var(v) => {
                let prefix_len = self.info(v).abs.len();
                debug_assert!(
                    prefix_len <= abs.len(),
                    "anchor path must prefix the role path"
                );
                let rel: Vec<Step> = abs[prefix_len..].to_vec();
                let target = PathExpr {
                    root: PathRoot::Var(Var {
                        name: self.var_names[v.index()].clone(),
                        id: v,
                    }),
                    steps: rel.clone(),
                    span: Span::default(),
                };
                (rel, target)
            }
        };
        let id = self.roles.push(abs, origin, anchor, rel);
        match anchor {
            Anchor::QueryEnd => self.query_end.push((target, id)),
            Anchor::Var(v) => {
                self.vars[v.index()]
                    .as_mut()
                    .unwrap()
                    .signoffs
                    .push((target, id));
            }
        }
        id
    }

    /// Derive the role path for a use of `p` and register it.
    /// Returns `None` when no role is needed (bare variable in a context
    /// already covered by its binding role).
    fn add_use_role(&mut self, p: &PathExpr, kind: UseKind) -> Option<RoleId> {
        let rooted_at = match &p.root {
            PathRoot::Root => None,
            PathRoot::Var(v) => Some(v.id),
        };
        let mut abs = self.abs_of(p);
        let origin = match kind {
            UseKind::Output => RoleOrigin::Output,
            UseKind::Exists => RoleOrigin::ExistsWitness,
            UseKind::Comparison => RoleOrigin::ComparisonOperand,
            UseKind::Aggregate(_) => RoleOrigin::AggregateArg,
        };
        if p.ends_in_attribute() {
            // Attributes travel with their element's start tag: retaining
            // the owner element suffices for every kind of use.
            abs.pop();
            return Some(self.add_role(abs, origin, rooted_at));
        }
        match kind {
            UseKind::Output
            | UseKind::Comparison
            | UseKind::Aggregate(AggFunc::Sum)
            | UseKind::Aggregate(AggFunc::Min)
            | UseKind::Aggregate(AggFunc::Max)
            | UseKind::Aggregate(AggFunc::Avg) => {
                // Whole-subtree retention — unless the path already selects
                // text nodes, whose value is themselves.
                let ends_in_text = matches!(
                    abs.last(),
                    Some(Step {
                        test: NodeTest::Text,
                        ..
                    })
                );
                if !ends_in_text {
                    abs.push(Step::descendant_or_self_node());
                }
                Some(self.add_role(abs, origin, rooted_at))
            }
            UseKind::Exists => {
                if abs.is_empty() {
                    // exists($root) / exists(/) is constant true; no role.
                    return None;
                }
                // First witness suffices: add `[1]` to a final child step.
                if let Some(last) = abs.last_mut() {
                    if last.axis == Axis::Child && last.pred.is_none() {
                        last.pred = Some(Pred::Position(1));
                    }
                }
                Some(self.add_role(abs, origin, rooted_at))
            }
            UseKind::Aggregate(AggFunc::Count) => {
                // Counting needs each matching node, not its subtree.
                Some(self.add_role(abs, origin, rooted_at))
            }
        }
    }

    fn cond(&mut self, c: &Cond) -> Cond {
        match c {
            Cond::True => Cond::True,
            Cond::False => Cond::False,
            Cond::Exists(p) => {
                self.add_use_role(p, UseKind::Exists);
                Cond::Exists(p.clone())
            }
            Cond::Not(inner) => Cond::Not(Box::new(self.cond(inner))),
            Cond::And(a, b) => Cond::And(Box::new(self.cond(a)), Box::new(self.cond(b))),
            Cond::Or(a, b) => Cond::Or(Box::new(self.cond(a)), Box::new(self.cond(b))),
            Cond::Compare { op, lhs, rhs } => {
                for operand in [lhs, rhs] {
                    if let Operand::Path(p) = operand {
                        self.add_use_role(p, UseKind::Comparison);
                    }
                }
                Cond::Compare {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                }
            }
            Cond::StringFn {
                func,
                haystack,
                needle,
            } => {
                for operand in [haystack, needle] {
                    if let Operand::Path(p) = operand {
                        self.add_use_role(p, UseKind::Comparison);
                    }
                }
                Cond::StringFn {
                    func: *func,
                    haystack: haystack.clone(),
                    needle: needle.clone(),
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Empty => Expr::Empty,
            Expr::StringLit(s) => Expr::StringLit(s.clone()),
            Expr::NumberLit(v) => Expr::NumberLit(*v),
            Expr::Sequence(items) => Expr::seq(items.iter().map(|i| self.expr(i)).collect()),
            Expr::Element {
                name,
                attrs,
                content,
            } => Expr::Element {
                name: name.clone(),
                attrs: attrs.clone(),
                content: Box::new(self.expr(content)),
            },
            Expr::Path(p) => {
                self.add_use_role(p, UseKind::Output);
                Expr::Path(p.clone())
            }
            Expr::Aggregate { func, arg } => {
                self.add_use_role(arg, UseKind::Aggregate(*func));
                Expr::Aggregate {
                    func: *func,
                    arg: arg.clone(),
                }
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.cond(cond);
                self.cond_depth += 1;
                let then_branch = self.expr(then_branch);
                let else_branch = self.expr(else_branch);
                self.cond_depth -= 1;
                Expr::If {
                    cond,
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                }
            }
            Expr::For {
                var,
                source,
                where_clause,
                body,
            } => {
                debug_assert!(where_clause.is_none(), "normalization desugars where");
                let source_root = match &source.root {
                    PathRoot::Root => None,
                    PathRoot::Var(v) => Some(v.id),
                };
                // Unique = statement executes exactly once per binding of
                // its source root: the source root's loop must be the
                // immediately enclosing loop (itself unique), with no
                // conditional in between.
                let unique = match source_root {
                    None => self.loop_stack.is_empty() && self.cond_depth == 0,
                    Some(u) => match self.loop_stack.last() {
                        Some(&(top, body_cond_depth)) => {
                            top == u && self.info(u).unique && self.cond_depth == body_cond_depth
                        }
                        None => false,
                    },
                };
                let abs = self.abs_of(source);
                self.vars[var.id.index()] = Some(VarInfo {
                    abs: abs.clone(),
                    unique,
                    source_root,
                    signoffs: Vec::new(),
                });
                // Binding role, anchored via the variable itself: if the
                // loop is unique this yields the paper's per-iteration
                // `signOff($x, rN)`; otherwise it anchors further out.
                let role = self.add_role_for_binding(abs, var.id);
                self.binding_roles[var.id.index()] = Some(role);

                self.loop_stack.push((var.id, self.cond_depth));
                let body = self.expr(body);
                self.loop_stack.pop();

                // Append this variable's signOffs at the end of its body.
                let pending =
                    std::mem::take(&mut self.vars[var.id.index()].as_mut().unwrap().signoffs);
                let mut items = vec![body];
                items.extend(
                    pending
                        .into_iter()
                        .map(|(target, role)| Expr::SignOff { target, role }),
                );
                Expr::For {
                    var: var.clone(),
                    source: source.clone(),
                    where_clause: None,
                    body: Box::new(Expr::seq(items)),
                }
            }
            Expr::SignOff { .. } => {
                unreachable!("signOff cannot appear in a normalized user query")
            }
        }
    }

    /// Register the binding role of `var`, anchored at `var` itself when its
    /// loop is unique (paper-style `signOff($x, rN)`), else up the chain.
    fn add_role_for_binding(&mut self, abs: Vec<Step>, var: VarId) -> RoleId {
        self.add_role(abs, RoleOrigin::ForBinding(var), Some(var))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::compile;

    const PAPER_QUERY: &str = r#"
        <r> {
          for $bib in /bib return
            (for $x in $bib/* return
               if (not(exists($x/price))) then $x else (),
             for $b in $bib/book return $b/title)
        } </r>
    "#;

    fn analyze_str(q: &str) -> Analysis {
        analyze(&compile(q).unwrap())
    }

    #[test]
    fn paper_roles_derived_exactly() {
        let a = analyze_str(PAPER_QUERY);
        assert_eq!(
            a.roles_listing(),
            "\
r1: /
r2: /bib
r3: /bib/*
r4: /bib/*/price[1]
r5: /bib/*/descendant-or-self::node()
r6: /bib/book
r7: /bib/book/title/descendant-or-self::node()
"
        );
    }

    #[test]
    fn paper_signoffs_inserted_at_preemption_points() {
        let a = analyze_str(PAPER_QUERY);
        let printed = a.rewritten.to_string();
        // The three per-iteration signOffs of the $x loop.
        assert!(printed.contains("signOff($x, r3)"), "{printed}");
        assert!(printed.contains("signOff($x/price[1], r4)"), "{printed}");
        assert!(
            printed.contains("signOff($x/descendant-or-self::node(), r5)"),
            "{printed}"
        );
        // The $b loop's signOffs.
        assert!(printed.contains("signOff($b, r6)"), "{printed}");
        assert!(
            printed.contains("signOff($b/title/descendant-or-self::node(), r7)"),
            "{printed}"
        );
        // The outer loop's own binding role.
        assert!(printed.contains("signOff($bib, r2)"), "{printed}");
        // The document-root role is signed off at query end.
        assert!(printed.contains("signOff(/, r1)"), "{printed}");
    }

    #[test]
    fn rewritten_query_reparses() {
        let a = analyze_str(PAPER_QUERY);
        let printed = a.rewritten.to_string();
        gcx_query::parse(&printed)
            .unwrap_or_else(|e| panic!("rewritten query does not reparse: {e}\n{printed}"));
    }

    #[test]
    fn binding_roles_recorded_per_var() {
        let a = analyze_str(PAPER_QUERY);
        // vars: bib=0, x=1, b=2
        assert_eq!(a.binding_roles[0], Some(RoleId(1))); // r2
        assert_eq!(a.binding_roles[1], Some(RoleId(2))); // r3
        assert_eq!(a.binding_roles[2], Some(RoleId(5))); // r6
    }

    #[test]
    fn chained_loops_are_unique_and_anchor_locally() {
        let a = analyze_str("for $a in /x return for $b in $a/y return $b");
        let printed = a.rewritten.to_string();
        assert!(printed.contains("signOff($b, r3)"), "{printed}");
        assert!(printed.contains("signOff($a, r2)"), "{printed}");
    }

    #[test]
    fn join_inner_loop_anchors_at_outer_unique_context() {
        // The person loop re-executes the auction loop: auction roles must
        // not be anchored inside the person loop.
        let a = analyze_str(
            "for $s in /site return
               for $p in $s/person return
                 for $t in $s/auction return
                   if ($t/buyer = $p/name) then $t",
        );
        // Role of $t's binding must anchor at $s (its source root), not $t.
        let t_bind = a.binding_roles[2].unwrap();
        assert_eq!(a.roles.get(t_bind).anchor, Anchor::Var(VarId(0)));
        let printed = a.rewritten.to_string();
        // The signOff for the auction binding role appears as $s/auction.
        assert!(printed.contains("signOff($s/auction,"), "{printed}");
        // And it is inside $s's body (after the person loop), not the
        // person loop body: the person binding role signs off per person.
        assert!(printed.contains("signOff($p, "), "{printed}");
    }

    #[test]
    fn absolute_path_loop_nested_in_loop_anchors_at_query_end() {
        let a = analyze_str(
            "for $p in /site/person return
               for $t in /site/auction return
                 if ($t/buyer = $p/name) then $t",
        );
        let t_bind = a.binding_roles[1].unwrap();
        assert_eq!(a.roles.get(t_bind).anchor, Anchor::QueryEnd);
        let printed = a.rewritten.to_string();
        assert!(printed.contains("signOff(/site/auction,"), "{printed}");
    }

    #[test]
    fn loop_under_conditional_is_not_unique() {
        let a = analyze_str(
            "for $a in /x return
               if (exists($a/flag)) then
                 for $b in $a/y return $b",
        );
        let b_bind = a.binding_roles[1].unwrap();
        // $b's loop is conditional: anchored at $a, not at $b.
        assert_eq!(a.roles.get(b_bind).anchor, Anchor::Var(VarId(0)));
    }

    #[test]
    fn exists_gets_first_witness_predicate() {
        let a = analyze_str("for $a in /x return if (exists($a/p)) then 'y'");
        let listing = a.roles_listing();
        assert!(listing.contains("/x/p[1]"), "{listing}");
    }

    #[test]
    fn exists_with_descendant_step_keeps_path_as_is() {
        let a = analyze_str("for $a in /x return if (exists($a//p)) then 'y'");
        let listing = a.roles_listing();
        assert!(listing.contains("/x/descendant::p\n"), "{listing}");
    }

    #[test]
    fn attribute_paths_retain_owner_element() {
        let a = analyze_str(
            "for $p in /site/person return if ($p/profile/@income > 5000) then $p/name",
        );
        let listing = a.roles_listing();
        // The comparison role is on .../profile, not on the attribute.
        assert!(listing.contains("/site/person/profile\n"), "{listing}");
        assert!(!listing.contains("@income"), "{listing}");
    }

    #[test]
    fn text_terminated_output_does_not_add_subtree_role() {
        let a = analyze_str("for $b in /bib/book return $b/title/text()");
        let listing = a.roles_listing();
        assert!(listing.contains("/bib/book/title/text()\n"), "{listing}");
    }

    #[test]
    fn count_aggregate_retains_nodes_not_subtrees() {
        let a = analyze_str("count(/site/people/person)");
        let listing = a.roles_listing();
        assert!(listing.contains("/site/people/person\n"), "{listing}");
        assert!(!listing.contains("person/descendant-or-self"), "{listing}");
    }

    #[test]
    fn sum_aggregate_retains_subtrees() {
        let a = analyze_str("sum(/site/auction/price)");
        let listing = a.roles_listing();
        assert!(
            listing.contains("/site/auction/price/descendant-or-self::node()"),
            "{listing}"
        );
    }

    #[test]
    fn root_role_always_first() {
        let a = analyze_str("'hello'");
        assert_eq!(a.roles.len(), 1);
        assert_eq!(a.roles.get(RoleId(0)).path_display(), "/");
    }

    #[test]
    fn comparison_between_two_paths_makes_two_roles() {
        let a = analyze_str("for $a in /x return for $b in $a/y return if ($b/l = $a/r) then $b");
        let listing = a.roles_listing();
        assert!(
            listing.contains("/x/y/l/descendant-or-self::node()"),
            "{listing}"
        );
        assert!(
            listing.contains("/x/r/descendant-or-self::node()"),
            "{listing}"
        );
    }
}
