#![deny(unsafe_code)]
//! # gcx-projection — static analysis for the GCX engine
//!
//! This crate implements the compile-time half of *active garbage
//! collection* (Schmidt, Scherzinger, Koch, ICDE'07; demonstrated in the
//! VLDB'07 GCX paper):
//!
//! 1. [`analyze`] walks a normalized query and derives its **projection
//!    paths**. Every path defines a **role** — "a metaphor for the future
//!    relevance of a node". For the paper's running example the derived
//!    roles are exactly its `r1`–`r7`.
//! 2. The same pass rewrites the query, inserting **`signOff`
//!    statements** at preemption points: the latest-safe, earliest-possible
//!    moments at which buffered nodes lose role instances. For *unique*
//!    loops (bodies that run exactly once per bound node) the signOff sits
//!    at the end of that loop body, as in the paper; for re-executed loops
//!    (e.g. the inner side of a join like XMark Q8) the signOff is anchored
//!    at the nearest enclosing unique context so roles are never removed
//!    while a later re-iteration still needs the nodes.
//! 3. [`CompiledPaths`] + [`StreamMatcher`] form the runtime matcher: an
//!    NFA over interned names that the stream preprojector runs while
//!    reading input. It decides which tokens are buffered at all and which
//!    role instances each buffered node receives — with multiplicities,
//!    because descendant axes can assign one role to one node through
//!    several derivations.

mod analysis;
mod matcher;
mod reach;
mod roles;

pub use analysis::{analyze, Analysis};
pub use matcher::{
    CompiledPaths, ElementOutcome, QueryTag, StepView, StreamMatcher, TaggedMatcher, TaggedOutcome,
    TaggedPaths, TaggedRole, TestView,
};
pub use reach::ReachFilter;
pub use roles::{Anchor, RoleInfo, RoleOrigin, RoleTable};
