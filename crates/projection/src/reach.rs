//! Schema-derived descendant reachability for the streaming matcher.
//!
//! A DTD fixes, for each declared element, the set of names that can ever
//! appear in its subtree. The matcher's descendant axes are speculative:
//! a `descendant::t` state propagates into *every* kept subtree in case a
//! `t` shows up deeper. With a [`ReachFilter`] the propagation is gated —
//! if the schema proves no `t` can occur below the entered element, the
//! state is dropped, the frame can come up empty, and the whole subtree is
//! skipped instead of buffered speculatively.
//!
//! The filter is **closed-world per element**: an element with an entry
//! lists exactly the names (and whether text) reachable below it; elements
//! without an entry (undeclared, `ANY`, or reaching such content) allow
//! everything. Dropping a propagation is sound for schema-valid input —
//! the dropped state could only have matched nodes the DTD forbids — so
//! outputs and role assignments are unchanged while buffer peaks can only
//! shrink.
//!
//! The table is keyed by [`Symbol`] and built against the same symbol
//! table the paths were compiled with (`gcx-schema` interns the DTD names
//! on top before any document bytes arrive).

use gcx_xml::Symbol;

/// What can appear among the proper descendants of one declared element.
#[derive(Debug, Clone)]
pub(crate) struct ReachInfo {
    /// Bitset over symbol indices: element names reachable below.
    names: Box<[u64]>,
    /// True when a text node can appear below.
    text: bool,
    /// True when at least one element name is reachable below.
    any_elem: bool,
}

impl ReachInfo {
    #[inline]
    fn contains(&self, name: Symbol) -> bool {
        let idx = name.index();
        match self.names.get(idx / 64) {
            Some(word) => word & (1u64 << (idx % 64)) != 0,
            // A symbol interned after the filter was built: the document
            // uses a name the schema never mentions, which a closed
            // content model cannot produce.
            None => false,
        }
    }
}

/// Per-element descendant reachability, indexed by element [`Symbol`].
///
/// `None` for an element means "no information — allow everything"; the
/// matcher behaves exactly as without a schema there.
#[derive(Debug, Clone, Default)]
pub struct ReachFilter {
    per_elem: Vec<Option<ReachInfo>>,
    /// Number of symbols the name bitsets cover.
    n_syms: usize,
}

impl ReachFilter {
    /// An empty filter covering `n_syms` interned symbols. All elements
    /// start unconstrained.
    pub fn new(n_syms: usize) -> ReachFilter {
        ReachFilter {
            per_elem: vec![None; n_syms],
            n_syms,
        }
    }

    /// Close the world for `elem`: exactly `names` (plus text iff `text`)
    /// can appear among its proper descendants.
    pub fn close(&mut self, elem: Symbol, names: &[Symbol], text: bool) {
        let words = self.n_syms.div_ceil(64).max(1);
        let mut bits = vec![0u64; words].into_boxed_slice();
        for &n in names {
            let idx = n.index();
            debug_assert!(idx < self.n_syms, "reach name interned after build");
            if idx / 64 < bits.len() {
                bits[idx / 64] |= 1u64 << (idx % 64);
            }
        }
        if elem.index() >= self.per_elem.len() {
            self.per_elem.resize(elem.index() + 1, None);
        }
        self.per_elem[elem.index()] = Some(ReachInfo {
            names: bits,
            text,
            any_elem: !names.is_empty(),
        });
    }

    /// Reach info for `elem`, if its world is closed.
    #[inline]
    pub(crate) fn info(&self, elem: Symbol) -> Option<&ReachInfo> {
        self.per_elem.get(elem.index())?.as_ref()
    }

    /// Number of elements with a closed world.
    pub fn closed_count(&self) -> usize {
        self.per_elem.iter().filter(|e| e.is_some()).count()
    }
}

/// Can a state whose next step carries this compiled test still match
/// somewhere below an element with reach info `ri`?
#[inline]
pub(crate) fn test_reachable(ri: &ReachInfo, test: crate::matcher::CTest) -> bool {
    use crate::matcher::CTest;
    match test {
        CTest::Name(s) => ri.contains(s),
        CTest::Star => ri.any_elem,
        CTest::Text => ri.text,
        CTest::AnyNode => ri.any_elem || ri.text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_xml::SymbolTable;

    #[test]
    fn closed_world_contains_only_listed_names() {
        let mut sy = SymbolTable::new();
        let a = sy.intern("a");
        let b = sy.intern("b");
        let c = sy.intern("c");
        let mut f = ReachFilter::new(sy.len());
        f.close(a, &[b], false);
        let ri = f.info(a).unwrap();
        assert!(ri.contains(b));
        assert!(!ri.contains(c));
        assert!(!ri.text);
        assert!(ri.any_elem);
        assert!(f.info(b).is_none(), "b's world is open");
        assert_eq!(f.closed_count(), 1);
    }

    #[test]
    fn empty_closure_blocks_everything() {
        let mut sy = SymbolTable::new();
        let leaf = sy.intern("leaf");
        let x = sy.intern("x");
        let mut f = ReachFilter::new(sy.len());
        f.close(leaf, &[], false);
        let ri = f.info(leaf).unwrap();
        assert!(!ri.contains(x));
        assert!(!ri.any_elem && !ri.text);
    }

    #[test]
    fn late_interned_symbols_are_outside_every_closed_world() {
        let mut sy = SymbolTable::new();
        let a = sy.intern("a");
        let mut f = ReachFilter::new(sy.len());
        f.close(a, &[a], true);
        // Simulates a document name first seen after the filter was built.
        let late = sy.intern("late");
        assert!(!f.info(a).unwrap().contains(late));
    }
}
