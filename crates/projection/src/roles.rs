//! The role table: one role per projection path, with provenance.

use gcx_query::ast::{RoleId, Step, VarId};
use std::fmt;

/// Why a role exists — provenance for `explain()` and for the evaluator's
/// signOff semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleOrigin {
    /// The document root role (the paper's `r1: /`).
    DocumentRoot,
    /// Binding role of a for-loop: keeps nodes alive until iterated.
    ForBinding(VarId),
    /// A path emitted in output position (subtree retention).
    Output,
    /// An `exists(...)` witness (first-match retention).
    ExistsWitness,
    /// A comparison operand (string-value retention).
    ComparisonOperand,
    /// An aggregate argument (extension).
    AggregateArg,
}

impl fmt::Display for RoleOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoleOrigin::DocumentRoot => write!(f, "document root"),
            RoleOrigin::ForBinding(v) => write!(f, "for-binding of var #{}", v.0),
            RoleOrigin::Output => write!(f, "output"),
            RoleOrigin::ExistsWitness => write!(f, "exists witness"),
            RoleOrigin::ComparisonOperand => write!(f, "comparison operand"),
            RoleOrigin::AggregateArg => write!(f, "aggregate argument"),
        }
    }
}

/// Where a role's signOff statement is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// End of the body of the loop binding this variable: the signOff
    /// executes once per binding of that variable.
    Var(VarId),
    /// End of the whole query (used for paths rooted at the document and
    /// for roles that would otherwise be signed off inside a re-executed
    /// loop).
    QueryEnd,
}

/// Everything the engine knows about one role.
#[derive(Debug, Clone)]
pub struct RoleInfo {
    /// The role id (`r1` is `RoleId(0)`).
    pub id: RoleId,
    /// Absolute projection path from the document root. This is what the
    /// stream matcher runs.
    pub abs: Vec<Step>,
    /// Provenance.
    pub origin: RoleOrigin,
    /// Where its signOff executes.
    pub anchor: Anchor,
    /// Path of the signOff target relative to the anchor (empty = the
    /// anchor binding itself, as in `signOff($x, r3)`).
    pub rel: Vec<Step>,
}

impl RoleInfo {
    /// Format the absolute path the way the paper prints roles
    /// (e.g. `/bib/*/price[1]`, `/bib/*/descendant-or-self::node()`).
    pub fn path_display(&self) -> String {
        if self.abs.is_empty() {
            return "/".to_string();
        }
        let mut out = String::new();
        for step in &self.abs {
            out.push('/');
            out.push_str(&step.to_string());
        }
        out
    }
}

/// All roles of a query, indexed by [`RoleId`].
#[derive(Debug, Clone, Default)]
pub struct RoleTable {
    roles: Vec<RoleInfo>,
}

impl RoleTable {
    /// Create an empty table.
    pub fn new() -> Self {
        RoleTable::default()
    }

    /// Register a role; returns its id.
    pub fn push(
        &mut self,
        abs: Vec<Step>,
        origin: RoleOrigin,
        anchor: Anchor,
        rel: Vec<Step>,
    ) -> RoleId {
        let id = RoleId(self.roles.len() as u32);
        self.roles.push(RoleInfo {
            id,
            abs,
            origin,
            anchor,
            rel,
        });
        id
    }

    /// Number of roles.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True when no roles are registered.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Look up one role.
    pub fn get(&self, id: RoleId) -> &RoleInfo {
        &self.roles[id.index()]
    }

    /// Iterate roles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &RoleInfo> {
        self.roles.iter()
    }

    /// The paper-style role listing (Figure "r1: / ... r7: ..."):
    /// one `rN: /path` line per role.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for role in &self.roles {
            out.push_str(&format!("{}: {}\n", role.id, role.path_display()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::ast::{Axis, NodeTest, Pred};

    #[test]
    fn listing_matches_paper_format() {
        let mut t = RoleTable::new();
        t.push(vec![], RoleOrigin::DocumentRoot, Anchor::QueryEnd, vec![]);
        t.push(
            vec![Step::child("bib")],
            RoleOrigin::ForBinding(VarId(0)),
            Anchor::Var(VarId(0)),
            vec![],
        );
        t.push(
            vec![
                Step::child("bib"),
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Star,
                    pred: None,
                },
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Name("price".into()),
                    pred: Some(Pred::Position(1)),
                },
            ],
            RoleOrigin::ExistsWitness,
            Anchor::Var(VarId(1)),
            vec![Step {
                axis: Axis::Child,
                test: NodeTest::Name("price".into()),
                pred: Some(Pred::Position(1)),
            }],
        );
        assert_eq!(t.listing(), "r1: /\nr2: /bib\nr3: /bib/*/price[1]\n");
    }

    #[test]
    fn desc_or_self_prints_like_paper() {
        let mut t = RoleTable::new();
        let id = t.push(
            vec![
                Step::child("bib"),
                Step::child("book"),
                Step::descendant_or_self_node(),
            ],
            RoleOrigin::Output,
            Anchor::QueryEnd,
            vec![],
        );
        assert_eq!(
            t.get(id).path_display(),
            "/bib/book/descendant-or-self::node()"
        );
    }

    #[test]
    fn ids_are_dense() {
        let mut t = RoleTable::new();
        for i in 0..5 {
            let id = t.push(vec![], RoleOrigin::Output, Anchor::QueryEnd, vec![]);
            assert_eq!(id, RoleId(i));
        }
        assert_eq!(t.len(), 5);
    }
}
