//! Streaming projection-path matcher.
//!
//! The stream preprojector runs this NFA over the tag stream to decide,
//! with one token of lookahead (paper §3), (a) whether a token is matched
//! by any projection path and must be buffered, and (b) which role
//! instances the buffered node receives.
//!
//! ## State model
//!
//! A state `(path, i)` on a node `n` means: one derivation has matched the
//! first `i` steps of `path`, with `n` as the context node for step `i`.
//! States carry **counts** — the number of distinct derivations — because a
//! descendant axis can reach the same node several ways, and the paper's
//! role semantics is a multiset ("a role can be assigned to a node multiple
//! times").
//!
//! * `child::t` consumes the step when a matching child is entered;
//! * `descendant::t` both propagates (deeper descendants) and consumes;
//! * `descendant-or-self::t` / `self::t` additionally consume *in place*
//!   (epsilon closure) — this is how `descendant-or-self::node()` roles
//!   land on every node of a subtree;
//! * a state `(path, len)` is a completed match: the node receives
//!   `path`'s role with the state's count;
//! * positional predicates (`[k]`, child axis only) are counted per parent
//!   frame, so `price[1]` matches only the first price child (the paper's
//!   first-witness role r4).
//!
//! A token whose pre-closure state set is empty can be skipped **together
//! with its entire subtree** — no projection path can match inside. The
//! preprojector uses this for constant-time skipping of irrelevant regions.

use crate::reach::{test_reachable, ReachFilter};
use crate::roles::RoleTable;
use gcx_query::ast::{Axis, NodeTest, Pred, RoleId};
use gcx_xml::{Symbol, SymbolTable};
use std::sync::Arc;

/// A node test compiled against the symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CTest {
    Name(Symbol),
    Star,
    Text,
    AnyNode,
}

impl CTest {
    /// Does an element with tag `name` pass?
    #[inline]
    fn matches_element(self, name: Symbol) -> bool {
        match self {
            CTest::Name(s) => s == name,
            CTest::Star | CTest::AnyNode => true,
            CTest::Text => false,
        }
    }

    /// Does a text node pass?
    #[inline]
    fn matches_text(self) -> bool {
        matches!(self, CTest::Text | CTest::AnyNode)
    }
}

/// One compiled step.
#[derive(Debug, Clone, Copy)]
struct CStep {
    axis: Axis,
    test: CTest,
    /// 1-based position for `[k]` predicates (child axis only).
    pos: Option<u32>,
}

/// All projection paths of a query, compiled against a symbol table.
#[derive(Debug, Clone)]
pub struct CompiledPaths {
    /// Steps of all paths, flattened.
    steps: Vec<CStep>,
    /// `paths[p] = (first_step, len, role)`.
    paths: Vec<(u32, u32, RoleId)>,
}

/// Dense state id: index of the *next* step to match. A state equal to the
/// path's end offset is a completed match.
type StateId = u32;

impl CompiledPaths {
    /// Compile the role table's absolute paths, interning names.
    ///
    /// Attribute steps never reach the matcher: the analysis strips them
    /// (roles land on the owning element).
    pub fn compile(roles: &RoleTable, symbols: &mut SymbolTable) -> CompiledPaths {
        let mut steps = Vec::new();
        let mut paths = Vec::new();
        for role in roles.iter() {
            let first = steps.len() as u32;
            for step in &role.abs {
                assert_ne!(
                    step.axis,
                    Axis::Attribute,
                    "attribute steps are stripped by analysis"
                );
                let test = match &step.test {
                    NodeTest::Name(n) => CTest::Name(symbols.intern(n)),
                    NodeTest::Star => CTest::Star,
                    NodeTest::Text => CTest::Text,
                    NodeTest::AnyNode => CTest::AnyNode,
                };
                let pos = step.pred.map(|Pred::Position(k)| k);
                steps.push(CStep {
                    axis: step.axis,
                    test,
                    pos,
                });
            }
            paths.push((first, role.abs.len() as u32, role.id));
        }
        CompiledPaths { steps, paths }
    }

    /// Number of compiled paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when there are no paths (degenerate queries).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The role assigned by path `p`.
    pub fn role_of(&self, p: usize) -> RoleId {
        self.paths[p].2
    }

    /// Read-only view of path `p`'s steps, for external analyses
    /// (`gcx-schema` intersects them with DTD content models).
    pub fn steps_of(&self, p: usize) -> impl Iterator<Item = StepView> + '_ {
        let (first, len, _) = self.paths[p];
        self.steps[first as usize..(first + len) as usize]
            .iter()
            .map(|s| StepView {
                axis: s.axis,
                test: match s.test {
                    CTest::Name(n) => TestView::Name(n),
                    CTest::Star => TestView::Star,
                    CTest::Text => TestView::Text,
                    CTest::AnyNode => TestView::AnyNode,
                },
                pos: s.pos,
            })
    }

    /// A copy retaining only the paths whose `keep` flag is true (indexed
    /// like [`CompiledPaths::role_of`]). Dead steps stay in the shared
    /// arena — the matcher never visits steps of dropped paths.
    pub fn filtered(&self, keep: &[bool]) -> CompiledPaths {
        assert_eq!(keep.len(), self.paths.len(), "keep mask length mismatch");
        CompiledPaths {
            steps: self.steps.clone(),
            paths: self
                .paths
                .iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(&p, _)| p)
                .collect(),
        }
    }
}

/// Read-only node-test view for external analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestView {
    /// A name test, resolved against the compile-time symbol table.
    Name(Symbol),
    /// `*`.
    Star,
    /// `text()`.
    Text,
    /// `node()`.
    AnyNode,
}

/// Read-only view of one compiled step.
#[derive(Debug, Clone, Copy)]
pub struct StepView {
    /// The axis navigated.
    pub axis: Axis,
    /// The node test.
    pub test: TestView,
    /// 1-based `[k]` position, when present.
    pub pos: Option<u32>,
}

/// Identifies which query of a merged batch a path/role belongs to.
pub type QueryTag = u32;

/// One role completion with its owning query and derivation count.
pub type TaggedRole = (QueryTag, RoleId, u32);

/// One path of a merged batch: step range, role, owning query.
#[derive(Debug, Clone, Copy)]
struct PathInfo {
    first: u32,
    len: u32,
    role: RoleId,
    tag: QueryTag,
}

/// The union of several queries' [`CompiledPaths`], sharing one step
/// arena. Every path remembers the query it came from, so one NFA pass
/// over the stream produces per-query outcomes.
///
/// All parts must have been compiled against the **same** symbol table —
/// name tests compare interned [`Symbol`]s.
#[derive(Debug, Clone)]
pub struct TaggedPaths {
    steps: Vec<CStep>,
    paths: Vec<PathInfo>,
    n_tags: u32,
}

impl TaggedPaths {
    /// Union the per-query path sets; part `i` gets tag `i`.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a CompiledPaths>) -> TaggedPaths {
        let mut steps = Vec::new();
        let mut paths = Vec::new();
        let mut n_tags = 0;
        for (tag, part) in parts.into_iter().enumerate() {
            let base = steps.len() as u32;
            steps.extend_from_slice(&part.steps);
            for &(first, len, role) in &part.paths {
                paths.push(PathInfo {
                    first: base + first,
                    len,
                    role,
                    tag: tag as QueryTag,
                });
            }
            n_tags += 1;
        }
        TaggedPaths {
            steps,
            paths,
            n_tags,
        }
    }

    /// Number of queries merged in.
    pub fn n_tags(&self) -> u32 {
        self.n_tags
    }

    /// Total number of paths across all queries.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no query contributed any path.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Per-element outcome of the merged matcher. Reused across calls: the
/// caller allocates one with [`TaggedOutcome::for_tags`] and passes it to
/// every [`TaggedMatcher::enter_element`].
#[derive(Debug, Clone)]
pub struct TaggedOutcome {
    /// True when at least one query wants this element (a frame was
    /// pushed). False: *no* query can match inside — skip the subtree and
    /// do not call `leave_element`.
    pub any_keep: bool,
    /// `kept[q]`: query `q` buffers this element (had at least one NFA
    /// state survive the transition — exactly the standalone matcher's
    /// `keep`). Only meaningful when `any_keep`.
    pub kept: Vec<bool>,
    /// Completed roles, deduplicated, sorted by `(tag, role)`.
    pub roles: Vec<TaggedRole>,
}

impl TaggedOutcome {
    /// An outcome buffer for a batch of `n` queries.
    pub fn for_tags(n: u32) -> TaggedOutcome {
        TaggedOutcome {
            any_keep: false,
            kept: vec![false; n as usize],
            roles: Vec::new(),
        }
    }

    /// Roles of one query, in `(role, count)` form.
    pub fn roles_of(&self, tag: QueryTag) -> impl Iterator<Item = (RoleId, u32)> + '_ {
        self.roles_slice_of(tag).iter().map(|&(_, r, c)| (r, c))
    }

    /// Roles of one query as a subslice (the roles are sorted by tag, so
    /// this is a binary search, not a scan — the driver calls it once per
    /// query per element).
    pub fn roles_slice_of(&self, tag: QueryTag) -> &[TaggedRole] {
        let lo = self.roles.partition_point(|&(t, _, _)| t < tag);
        let hi = self.roles.partition_point(|&(t, _, _)| t <= tag);
        &self.roles[lo..hi]
    }

    fn reset(&mut self) {
        self.any_keep = false;
        self.kept.iter_mut().for_each(|k| *k = false);
        self.roles.clear();
    }
}

/// Role instances granted to one node.
pub type RoleAssignment = Vec<(RoleId, u32)>;

/// Outcome of entering an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementOutcome {
    /// False: no projection path can match this element or anything below
    /// it — the caller must skip the whole subtree (and must NOT call
    /// `leave_element`).
    pub keep: bool,
    /// Role instances for the node (empty for speculative keeps).
    pub roles: RoleAssignment,
}

/// A state with its derivation count: `(path index, state id, count)`.
#[derive(Debug, Clone, Copy)]
struct St {
    path: u32,
    sid: StateId,
    count: u32,
}

/// Per-open-element matcher frame.
#[derive(Debug, Default, Clone)]
struct Frame {
    /// Post-closure states whose next step can still consume children.
    states: Vec<St>,
    /// Predicate counters: (state id of the predicated step, matches seen).
    pred_seen: Vec<(StateId, u32)>,
}

/// The merged streaming matcher: one NFA pass over the tag stream,
/// per-query outcomes. [`StreamMatcher`] is its single-query face; the
/// shared-stream driver (`gcx-multi`) runs it over a whole batch.
///
/// Because every path carries its owning query's tag, and states never
/// interact across paths (counts merge only on identical `(path, state)`
/// pairs), the states with tag `q` evolve exactly as they would in a
/// standalone matcher built from query `q`'s paths alone. Per-query
/// projection and role multiplicities are therefore preserved verbatim —
/// the property suite in `crates/multi` asserts this.
#[derive(Debug)]
pub struct TaggedMatcher {
    /// The merged automaton, shareable across matcher instances: a
    /// prepared batch ([`gcx-multi`]'s `BatchPlan`) compiles once and
    /// stamps out a fresh matcher per run from the same `Arc`.
    compiled: Arc<TaggedPaths>,
    frames: Vec<Frame>,
    /// Scratch for building child state sets.
    scratch: Vec<St>,
    /// Recycled frames: popping a frame would otherwise drop (and entering
    /// one allocate) two `Vec`s per kept element.
    frame_pool: Vec<Frame>,
    /// Schema-derived descendant reachability (None: schema-blind).
    reach: Option<Arc<ReachFilter>>,
    /// Descendant-state propagations the reach filter suppressed.
    reach_cuts: u64,
}

impl TaggedMatcher {
    /// Create the matcher and compute the document root's roles (paths
    /// with zero steps, e.g. the paper's `r1: /`, per query).
    pub fn new(compiled: TaggedPaths) -> (TaggedMatcher, Vec<TaggedRole>) {
        TaggedMatcher::with_reach(compiled, None)
    }

    /// [`TaggedMatcher::new`] with a schema-derived reachability filter:
    /// descendant-axis states are not propagated into subtrees where the
    /// DTD proves their test can never match. Sound for schema-valid
    /// input; on other input the filter may skip subtrees the schema-blind
    /// matcher would have buffered.
    pub fn with_reach(
        compiled: TaggedPaths,
        reach: Option<Arc<ReachFilter>>,
    ) -> (TaggedMatcher, Vec<TaggedRole>) {
        TaggedMatcher::from_shared(Arc::new(compiled), reach)
    }

    /// [`TaggedMatcher::with_reach`] over an already-shared automaton:
    /// only the per-run frame state is allocated, the compiled paths are
    /// refcounted. This is the repeated-batch fast path — prepare the
    /// merge once, stamp out a matcher per document.
    pub fn from_shared(
        compiled: Arc<TaggedPaths>,
        reach: Option<Arc<ReachFilter>>,
    ) -> (TaggedMatcher, Vec<TaggedRole>) {
        let mut root = Frame::default();
        let mut root_roles = Vec::new();
        for (p, info) in compiled.paths.iter().enumerate() {
            if info.len == 0 {
                root_roles.push((info.tag, info.role, 1));
            } else {
                root.states.push(St {
                    path: p as u32,
                    sid: info.first,
                    count: 1,
                });
            }
        }
        // The document root is a node: run closure for leading
        // self/descendant-or-self steps (e.g. role `/descendant-or-self...`).
        let mut m = TaggedMatcher {
            compiled,
            frames: vec![root],
            scratch: Vec::new(),
            frame_pool: Vec::new(),
            reach,
            reach_cuts: 0,
        };
        m.closure_with_name(0, None, &mut root_roles);
        dedupe_tagged(&mut root_roles);
        (m, root_roles)
    }

    /// Current nesting depth (document root frame excluded).
    pub fn depth(&self) -> usize {
        self.frames.len() - 1
    }

    /// Descendant-state propagations the reach filter suppressed so far.
    pub fn reach_cuts(&self) -> u64 {
        self.reach_cuts
    }

    /// Run the epsilon closure on `frames[idx]`: `self::`/
    /// `descendant-or-self::` steps that match the element consume in
    /// place. Completed paths are appended to `out` as tagged roles.
    /// `name` is the element's tag (None for the virtual document root,
    /// which only `node()` tests can match).
    fn closure_with_name(&mut self, idx: usize, name: Option<Symbol>, out: &mut Vec<TaggedRole>) {
        let mut i = 0;
        while i < self.frames[idx].states.len() {
            let st = self.frames[idx].states[i];
            let info = self.compiled.paths[st.path as usize];
            if st.sid == info.first + info.len {
                // Completed match: assign the role, drop the state.
                out.push((info.tag, info.role, st.count));
                self.frames[idx].states.swap_remove(i);
                continue;
            }
            let step = self.compiled.steps[st.sid as usize];
            let consumes_in_place = match step.axis {
                Axis::SelfAxis | Axis::DescendantOrSelf => match name {
                    Some(n) => step.test.matches_element(n),
                    // The virtual document root: only node() matches it.
                    None => step.test == CTest::AnyNode,
                },
                _ => false,
            };
            if consumes_in_place {
                // Self steps are consumed (state replaced); desc-or-self
                // steps both consume and persist for deeper matches.
                let advanced = St {
                    path: st.path,
                    sid: st.sid + 1,
                    count: st.count,
                };
                if step.axis == Axis::SelfAxis {
                    self.frames[idx].states[i] = advanced;
                    // Re-examine the same slot (it may complete or chain).
                    continue;
                } else {
                    push_state(&mut self.frames[idx].states, advanced);
                    i += 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Process an element start tag, filling `out` (which must have been
    /// created with [`TaggedOutcome::for_tags`] for this batch size). When
    /// `out.any_keep` is false the caller skips the subtree and must not
    /// call [`TaggedMatcher::leave_element`] for it.
    pub fn enter_element(&mut self, name: Symbol, out: &mut TaggedOutcome) {
        out.reset();
        self.scratch.clear();
        // Closed-world reach info for this element, when the schema has
        // any: descendant propagations are gated on it below.
        let rinfo = self.reach.as_deref().and_then(|r| r.info(name));
        let parent = self.frames.len() - 1;
        // Transitions from the parent's states to this child.
        // Split borrows: iterate over a temporary copy of indices to allow
        // predicate counting on the parent frame.
        for si in 0..self.frames[parent].states.len() {
            let st = self.frames[parent].states[si];
            let step = self.compiled.steps[st.sid as usize];
            match step.axis {
                Axis::Child => {
                    if step.test.matches_element(name) {
                        let passes = match step.pos {
                            None => true,
                            Some(k) => {
                                let seen = bump_pred(&mut self.frames[parent].pred_seen, st.sid);
                                seen == k
                            }
                        };
                        if passes {
                            self.scratch.push(St {
                                path: st.path,
                                sid: st.sid + 1,
                                count: st.count,
                            });
                        }
                    }
                }
                Axis::Descendant => {
                    // Propagate for deeper descendants — unless the schema
                    // proves the test can never match below this element.
                    match rinfo {
                        Some(ri) if !test_reachable(ri, step.test) => self.reach_cuts += 1,
                        _ => self.scratch.push(st),
                    }
                    // ...and consume if this child matches.
                    if step.test.matches_element(name) {
                        self.scratch.push(St {
                            path: st.path,
                            sid: st.sid + 1,
                            count: st.count,
                        });
                    }
                }
                Axis::DescendantOrSelf => {
                    // The self part was handled by the parent's closure;
                    // here the "descendant" part propagates, and the state
                    // must also survive for this element's own closure
                    // (which consumes the self part against `name`), so
                    // the reach gate additionally admits a self match.
                    let self_match = step.test.matches_element(name);
                    match rinfo {
                        Some(ri) if !self_match && !test_reachable(ri, step.test) => {
                            self.reach_cuts += 1
                        }
                        _ => self.scratch.push(st),
                    }
                }
                Axis::SelfAxis => {
                    // Fully handled by closure on the parent; nothing
                    // transitions to children.
                }
                Axis::Attribute => unreachable!("attribute steps stripped by analysis"),
            }
        }
        if self.scratch.is_empty() {
            return;
        }
        // Transitions were pushed without duplicate merging (a per-push
        // linear scan would make per-element work quadratic in the merged
        // batch's state count); restore the merged-frame invariant —
        // predicate counting depends on one state per (path, sid) — with
        // one sort+merge pass.
        merge_duplicate_states(&mut self.scratch);
        out.any_keep = true;
        // Per-query keep: which queries still hold a state (pre-closure) —
        // exactly the standalone matcher's `keep` decision per query.
        for st in &self.scratch {
            out.kept[self.compiled.paths[st.path as usize].tag as usize] = true;
        }
        // Recycle a pooled frame; the swap hands its (empty, but sized)
        // states vector back to `scratch`, so capacities circulate instead
        // of being allocated and dropped once per kept element.
        let mut frame = self.frame_pool.pop().unwrap_or_default();
        std::mem::swap(&mut frame.states, &mut self.scratch);
        self.frames.push(frame);
        let idx = self.frames.len() - 1;
        self.closure_with_name(idx, Some(name), &mut out.roles);
        dedupe_tagged(&mut out.roles);
    }

    /// Process the end tag of a kept element.
    pub fn leave_element(&mut self) {
        debug_assert!(self.frames.len() > 1, "leave_element on document root");
        let mut frame = self.frames.pop().expect("checked above");
        frame.states.clear();
        frame.pred_seen.clear();
        self.frame_pool.push(frame);
    }

    /// Roles for a text child of the current element, appended to `out`
    /// (cleared first). Text nodes have no children, so no frame is
    /// pushed; per query, an empty result means the text is irrelevant.
    pub fn text_into(&mut self, out: &mut Vec<TaggedRole>) {
        out.clear();
        let parent = self.frames.len() - 1;
        for si in 0..self.frames[parent].states.len() {
            let st = self.frames[parent].states[si];
            let info = self.compiled.paths[st.path as usize];
            let step = self.compiled.steps[st.sid as usize];
            // A text node can only complete a path whose FINAL step it
            // matches: any continuation would need children.
            let is_final = st.sid + 1 == info.first + info.len;
            let completes = match step.axis {
                Axis::Child => {
                    step.test.matches_text() && is_final && {
                        match step.pos {
                            None => true,
                            Some(k) => {
                                let seen = bump_pred(&mut self.frames[parent].pred_seen, st.sid);
                                seen == k
                            }
                        }
                    }
                }
                Axis::Descendant | Axis::DescendantOrSelf => step.test.matches_text() && is_final,
                Axis::SelfAxis => false,
                Axis::Attribute => unreachable!(),
            };
            if completes {
                out.push((info.tag, info.role, st.count));
            }
        }
        dedupe_tagged(out);
    }
}

/// The single-query streaming matcher: the [`TaggedMatcher`] specialized
/// to one query (tag 0), with the original untagged API. One instance per
/// engine run.
#[derive(Debug)]
pub struct StreamMatcher {
    inner: TaggedMatcher,
    /// Reused outcome buffer for `enter_element`.
    scratch: TaggedOutcome,
    /// Reused buffer for `text`.
    text_scratch: Vec<TaggedRole>,
}

impl StreamMatcher {
    /// Create the matcher and compute the document root's roles (paths with
    /// zero steps, e.g. the paper's `r1: /`). The compiled paths are
    /// borrowed: they live in the shared compiled-query artifact
    /// (`gcx-ir`'s program), and only the mutable per-run frame state is
    /// instantiated here.
    pub fn new(compiled: &CompiledPaths) -> (StreamMatcher, RoleAssignment) {
        StreamMatcher::with_reach(compiled, None)
    }

    /// [`StreamMatcher::new`] with a schema-derived reachability filter
    /// (see [`TaggedMatcher::with_reach`]).
    pub fn with_reach(
        compiled: &CompiledPaths,
        reach: Option<Arc<ReachFilter>>,
    ) -> (StreamMatcher, RoleAssignment) {
        let (inner, tagged_roots) =
            TaggedMatcher::with_reach(TaggedPaths::merge([compiled]), reach);
        let root_roles = tagged_roots.into_iter().map(|(_, r, c)| (r, c)).collect();
        (
            StreamMatcher {
                inner,
                scratch: TaggedOutcome::for_tags(1),
                text_scratch: Vec::new(),
            },
            root_roles,
        )
    }

    /// Current nesting depth (document root frame excluded).
    pub fn depth(&self) -> usize {
        self.inner.depth()
    }

    /// Descendant-state propagations the reach filter suppressed so far.
    pub fn reach_cuts(&self) -> u64 {
        self.inner.reach_cuts()
    }

    /// Process an element start tag. When the result's `keep` is false the
    /// caller skips the subtree and must not call [`StreamMatcher::leave_element`]
    /// for it.
    pub fn enter_element(&mut self, name: Symbol) -> ElementOutcome {
        let mut roles = Vec::new();
        let keep = self.enter_element_into(name, &mut roles);
        ElementOutcome { keep, roles }
    }

    /// Allocation-free variant of [`StreamMatcher::enter_element`]: the
    /// element's roles are appended to `roles_out` (cleared first) and the
    /// keep decision is returned. The preprojector's hot loop uses this
    /// with a reused scratch vector.
    pub fn enter_element_into(&mut self, name: Symbol, roles_out: &mut Vec<(RoleId, u32)>) -> bool {
        self.inner.enter_element(name, &mut self.scratch);
        roles_out.clear();
        roles_out.extend(self.scratch.roles.iter().map(|&(_, r, c)| (r, c)));
        self.scratch.any_keep
    }

    /// Process the end tag of a kept element.
    pub fn leave_element(&mut self) {
        self.inner.leave_element();
    }

    /// Roles for a text child of the current element. Text nodes have no
    /// children, so no frame is pushed; an empty result means the text is
    /// irrelevant and is not buffered.
    pub fn text(&mut self) -> RoleAssignment {
        let mut roles = Vec::new();
        self.text_into(&mut roles);
        roles
    }

    /// Allocation-free variant of [`StreamMatcher::text`]: roles are
    /// appended to `out` (cleared first).
    pub fn text_into(&mut self, out: &mut Vec<(RoleId, u32)>) {
        let mut tagged = std::mem::take(&mut self.text_scratch);
        self.inner.text_into(&mut tagged);
        out.clear();
        out.extend(tagged.iter().map(|&(_, r, c)| (r, c)));
        self.text_scratch = tagged;
    }
}

/// Sum counts of duplicate (path, sid) states — the frame invariant that
/// predicate counting relies on (each predicated step bumps once per
/// document child, however many derivations reach it).
fn merge_duplicate_states(states: &mut Vec<St>) {
    if states.len() < 2 {
        return;
    }
    states.sort_unstable_by_key(|s| (s.path, s.sid));
    let mut w = 0;
    for i in 0..states.len() {
        if w > 0 && states[w - 1].path == states[i].path && states[w - 1].sid == states[i].sid {
            states[w - 1].count += states[i].count;
        } else {
            states[w] = states[i];
            w += 1;
        }
    }
    states.truncate(w);
}

/// Add a state, merging counts with an existing equal (path, sid) state.
/// Used on the closure path, where insertions are few; bulk transition
/// collection uses [`merge_duplicate_states`] instead.
fn push_state(states: &mut Vec<St>, st: St) {
    for existing in states.iter_mut() {
        if existing.path == st.path && existing.sid == st.sid {
            existing.count += st.count;
            return;
        }
    }
    states.push(st);
}

/// Increment and return the match count for a predicated step in a frame.
fn bump_pred(pred_seen: &mut Vec<(StateId, u32)>, sid: StateId) -> u32 {
    for (s, n) in pred_seen.iter_mut() {
        if *s == sid {
            *n += 1;
            return *n;
        }
    }
    pred_seen.push((sid, 1));
    1
}

/// Sum counts of duplicate (tag, role) pairs; sort by (tag, role).
fn dedupe_tagged(roles: &mut Vec<TaggedRole>) {
    if roles.len() < 2 {
        return;
    }
    roles.sort_unstable_by_key(|&(t, r, _)| (t, r));
    let mut w = 0;
    for i in 0..roles.len() {
        if w > 0 && roles[w - 1].0 == roles[i].0 && roles[w - 1].1 == roles[i].1 {
            roles[w - 1].2 += roles[i].2;
        } else {
            roles[w] = roles[i];
            w += 1;
        }
    }
    roles.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use gcx_query::compile;

    /// Build a matcher for the projection paths of `query`.
    fn matcher_for(query: &str) -> (StreamMatcher, RoleAssignment, SymbolTable, RoleTable) {
        let q = compile(query).unwrap();
        let a = analyze(&q);
        let mut symbols = SymbolTable::new();
        let compiled = CompiledPaths::compile(&a.roles, &mut symbols);
        let (m, root_roles) = StreamMatcher::new(&compiled);
        (m, root_roles, symbols, a.roles)
    }

    const PAPER_QUERY: &str = r#"
        <r> {
          for $bib in /bib return
            (for $x in $bib/* return
               if (not(exists($x/price))) then $x else (),
             for $b in $bib/book return $b/title)
        } </r>
    "#;

    /// Roles as a sorted display list like `["r2*1", ...]`.
    fn fmt_roles(roles: &RoleAssignment) -> Vec<String> {
        let mut v: Vec<String> = roles.iter().map(|(r, c)| format!("{r}*{c}")).collect();
        v.sort();
        v
    }

    #[test]
    fn paper_figure1_role_assignment() {
        // Input prefix: <bib><book><title/><author/></book>
        let (mut m, root_roles, mut sy, _) = matcher_for(PAPER_QUERY);
        assert_eq!(fmt_roles(&root_roles), ["r1*1"]);

        let bib = m.enter_element(sy.intern("bib"));
        assert!(bib.keep);
        assert_eq!(fmt_roles(&bib.roles), ["r2*1"]);

        let book = m.enter_element(sy.intern("book"));
        assert!(book.keep);
        // The paper's Figure 1(a): book{r3, r5, r6}.
        assert_eq!(fmt_roles(&book.roles), ["r3*1", "r5*1", "r6*1"]);

        let title = m.enter_element(sy.intern("title"));
        // title{r5, r7}.
        assert_eq!(fmt_roles(&title.roles), ["r5*1", "r7*1"]);
        m.leave_element();

        let author = m.enter_element(sy.intern("author"));
        // author{r5}.
        assert_eq!(fmt_roles(&author.roles), ["r5*1"]);
        m.leave_element();

        m.leave_element(); // book
        m.leave_element(); // bib
        assert_eq!(m.depth(), 0);
    }

    #[test]
    fn price_first_witness_only() {
        let (mut m, _, mut sy, _) = matcher_for(PAPER_QUERY);
        m.enter_element(sy.intern("bib"));
        m.enter_element(sy.intern("article"));
        let p1 = m.enter_element(sy.intern("price"));
        // First price: r4 (witness) + r5 (subtree).
        assert_eq!(fmt_roles(&p1.roles), ["r4*1", "r5*1"]);
        m.leave_element();
        let p2 = m.enter_element(sy.intern("price"));
        // Second price: only r5.
        assert_eq!(fmt_roles(&p2.roles), ["r5*1"]);
        m.leave_element();
    }

    #[test]
    fn irrelevant_subtrees_are_skippable() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x/y return $a");
        m.enter_element(sy.intern("x"));
        let z = m.enter_element(sy.intern("z"));
        assert!(!z.keep, "no projection path can match under /x/z");
        // Caller would skip; no leave_element for z.
        let y = m.enter_element(sy.intern("y"));
        assert!(y.keep);
    }

    #[test]
    fn text_nodes_matched_by_subtree_roles() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x return $a");
        m.enter_element(sy.intern("x"));
        let roles = m.text();
        assert_eq!(roles.len(), 1, "descendant-or-self::node() matches text");
    }

    #[test]
    fn text_nodes_not_matched_without_text_roles() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x/y return $a");
        m.enter_element(sy.intern("x"));
        let roles = m.text();
        assert!(
            roles.is_empty(),
            "text under /x is not on any projection path"
        );
    }

    #[test]
    fn explicit_text_step() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x return $a/text()");
        m.enter_element(sy.intern("x"));
        let roles = m.text();
        // binding role of $a does not land on text; the text() role does.
        assert_eq!(roles.len(), 1);
    }

    #[test]
    fn descendant_axis_multiplicity() {
        // /descendant::a/descendant::b: b under two nested a's gets the
        // binding role twice (two derivations).
        let (mut m, _, mut sy, _) = matcher_for("for $v in //a//b return if ($v/m = 1) then 'x'");
        let a1 = m.enter_element(sy.intern("a"));
        assert!(a1.keep);
        let a2 = m.enter_element(sy.intern("a"));
        assert!(a2.keep);
        let b = m.enter_element(sy.intern("b"));
        let binding = b
            .roles
            .iter()
            .find(|(r, _)| *r == gcx_query::ast::RoleId(1))
            .unwrap();
        assert_eq!(binding.1, 2, "two derivations through the two a-ancestors");
    }

    #[test]
    fn descendant_or_self_assigns_to_whole_subtree() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x return $a");
        // Role r3 = /x/descendant-or-self::node() must hit x, child, grandchild.
        let x = m.enter_element(sy.intern("x"));
        assert!(
            fmt_roles(&x.roles).iter().any(|s| s.starts_with("r3")),
            "{:?}",
            x.roles
        );
        let c = m.enter_element(sy.intern("c"));
        assert_eq!(fmt_roles(&c.roles), ["r3*1"]);
        let g = m.enter_element(sy.intern("g"));
        assert_eq!(fmt_roles(&g.roles), ["r3*1"]);
    }

    #[test]
    fn star_matches_any_element() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x/* return 'y'");
        m.enter_element(sy.intern("x"));
        assert!(m.enter_element(sy.intern("anything")).keep);
        m.leave_element();
        assert!(m.enter_element(sy.intern("other")).keep);
    }

    #[test]
    fn root_only_query_keeps_nothing() {
        // A query using no input at all: only r1 on the root; every element
        // is skippable.
        let (mut m, root_roles, mut sy, _) = matcher_for("'constant'");
        assert_eq!(root_roles.len(), 1);
        let e = m.enter_element(sy.intern("anything"));
        assert!(!e.keep);
    }

    #[test]
    fn deep_nesting_stays_linear() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in //deep return $a");
        let d = sy.intern("d");
        for _ in 0..10_000 {
            let o = m.enter_element(d);
            assert!(o.keep, "descendant search keeps probing");
        }
        for _ in 0..10_000 {
            m.leave_element();
        }
        assert_eq!(m.depth(), 0);
    }
}
