//! Streaming projection-path matcher.
//!
//! The stream preprojector runs this NFA over the tag stream to decide,
//! with one token of lookahead (paper §3), (a) whether a token is matched
//! by any projection path and must be buffered, and (b) which role
//! instances the buffered node receives.
//!
//! ## State model
//!
//! A state `(path, i)` on a node `n` means: one derivation has matched the
//! first `i` steps of `path`, with `n` as the context node for step `i`.
//! States carry **counts** — the number of distinct derivations — because a
//! descendant axis can reach the same node several ways, and the paper's
//! role semantics is a multiset ("a role can be assigned to a node multiple
//! times").
//!
//! * `child::t` consumes the step when a matching child is entered;
//! * `descendant::t` both propagates (deeper descendants) and consumes;
//! * `descendant-or-self::t` / `self::t` additionally consume *in place*
//!   (epsilon closure) — this is how `descendant-or-self::node()` roles
//!   land on every node of a subtree;
//! * a state `(path, len)` is a completed match: the node receives
//!   `path`'s role with the state's count;
//! * positional predicates (`[k]`, child axis only) are counted per parent
//!   frame, so `price[1]` matches only the first price child (the paper's
//!   first-witness role r4).
//!
//! A token whose pre-closure state set is empty can be skipped **together
//! with its entire subtree** — no projection path can match inside. The
//! preprojector uses this for constant-time skipping of irrelevant regions.

use crate::roles::RoleTable;
use gcx_query::ast::{Axis, NodeTest, Pred, RoleId};
use gcx_xml::{Symbol, SymbolTable};

/// A node test compiled against the symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CTest {
    Name(Symbol),
    Star,
    Text,
    AnyNode,
}

impl CTest {
    /// Does an element with tag `name` pass?
    #[inline]
    fn matches_element(self, name: Symbol) -> bool {
        match self {
            CTest::Name(s) => s == name,
            CTest::Star | CTest::AnyNode => true,
            CTest::Text => false,
        }
    }

    /// Does a text node pass?
    #[inline]
    fn matches_text(self) -> bool {
        matches!(self, CTest::Text | CTest::AnyNode)
    }
}

/// One compiled step.
#[derive(Debug, Clone, Copy)]
struct CStep {
    axis: Axis,
    test: CTest,
    /// 1-based position for `[k]` predicates (child axis only).
    pos: Option<u32>,
}

/// All projection paths of a query, compiled against a symbol table.
#[derive(Debug, Clone)]
pub struct CompiledPaths {
    /// Steps of all paths, flattened.
    steps: Vec<CStep>,
    /// `paths[p] = (first_step, len, role)`.
    paths: Vec<(u32, u32, RoleId)>,
}

/// Dense state id: index of the *next* step to match. A state equal to the
/// path's end offset is a completed match.
type StateId = u32;

impl CompiledPaths {
    /// Compile the role table's absolute paths, interning names.
    ///
    /// Attribute steps never reach the matcher: the analysis strips them
    /// (roles land on the owning element).
    pub fn compile(roles: &RoleTable, symbols: &mut SymbolTable) -> CompiledPaths {
        let mut steps = Vec::new();
        let mut paths = Vec::new();
        for role in roles.iter() {
            let first = steps.len() as u32;
            for step in &role.abs {
                assert_ne!(
                    step.axis,
                    Axis::Attribute,
                    "attribute steps are stripped by analysis"
                );
                let test = match &step.test {
                    NodeTest::Name(n) => CTest::Name(symbols.intern(n)),
                    NodeTest::Star => CTest::Star,
                    NodeTest::Text => CTest::Text,
                    NodeTest::AnyNode => CTest::AnyNode,
                };
                let pos = step.pred.map(|Pred::Position(k)| k);
                steps.push(CStep {
                    axis: step.axis,
                    test,
                    pos,
                });
            }
            paths.push((first, role.abs.len() as u32, role.id));
        }
        CompiledPaths { steps, paths }
    }

    /// Number of compiled paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when there are no paths (degenerate queries).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Role instances granted to one node.
pub type RoleAssignment = Vec<(RoleId, u32)>;

/// Outcome of entering an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementOutcome {
    /// False: no projection path can match this element or anything below
    /// it — the caller must skip the whole subtree (and must NOT call
    /// `leave_element`).
    pub keep: bool,
    /// Role instances for the node (empty for speculative keeps).
    pub roles: RoleAssignment,
}

/// A state with its derivation count: `(path index, state id, count)`.
#[derive(Debug, Clone, Copy)]
struct St {
    path: u32,
    sid: StateId,
    count: u32,
}

/// Per-open-element matcher frame.
#[derive(Debug, Default, Clone)]
struct Frame {
    /// Post-closure states whose next step can still consume children.
    states: Vec<St>,
    /// Predicate counters: (state id of the predicated step, matches seen).
    pred_seen: Vec<(StateId, u32)>,
}

/// The streaming matcher. One instance per engine run.
#[derive(Debug)]
pub struct StreamMatcher {
    compiled: CompiledPaths,
    frames: Vec<Frame>,
    /// Scratch for building child state sets.
    scratch: Vec<St>,
}

impl StreamMatcher {
    /// Create the matcher and compute the document root's roles (paths with
    /// zero steps, e.g. the paper's `r1: /`).
    pub fn new(compiled: CompiledPaths) -> (StreamMatcher, RoleAssignment) {
        let mut root = Frame::default();
        let mut root_roles = Vec::new();
        for (p, &(first, len, role)) in compiled.paths.iter().enumerate() {
            if len == 0 {
                root_roles.push((role, 1));
            } else {
                root.states.push(St {
                    path: p as u32,
                    sid: first,
                    count: 1,
                });
            }
        }
        // The document root is a node: run closure for leading
        // self/descendant-or-self steps (e.g. role `/descendant-or-self...`).
        let mut m = StreamMatcher {
            compiled,
            frames: vec![root],
            scratch: Vec::new(),
        };
        let mut completions = Vec::new();
        m.close_element_states(0, &mut completions);
        merge_roles(&mut root_roles, completions);
        (m, root_roles)
    }

    /// Current nesting depth (document root frame excluded).
    pub fn depth(&self) -> usize {
        self.frames.len() - 1
    }

    /// Epsilon-closure of the frame at `frames[idx]` treating it as an
    /// element node: `self::`/`descendant-or-self::` steps that match an
    /// element consume in place. Completed paths are appended to `out`.
    fn close_element_states(&mut self, idx: usize, out: &mut Vec<(RoleId, u32)>) {
        // The frame's element name is not needed: the only tests that can
        // consume in place on an element are Star/AnyNode (name-tested
        // self steps would need the name; the closure below receives it
        // from the caller via `enter_element` for the initial transition —
        // for in-place closure we must know the name, so it is threaded
        // through `closure_with_name` instead). This method handles the
        // virtual document root, which only `node()` tests can match.
        self.closure_with_name(idx, None, out);
    }

    /// Run the epsilon closure on `frames[idx]`. `name` is the element's
    /// tag (None for the virtual document root, Some for real elements).
    fn closure_with_name(
        &mut self,
        idx: usize,
        name: Option<Symbol>,
        out: &mut Vec<(RoleId, u32)>,
    ) {
        let mut i = 0;
        while i < self.frames[idx].states.len() {
            let st = self.frames[idx].states[i];
            let (first, len, role) = self.compiled.paths[st.path as usize];
            if st.sid == first + len {
                // Completed match: assign the role, drop the state.
                out.push((role, st.count));
                self.frames[idx].states.swap_remove(i);
                continue;
            }
            let step = self.compiled.steps[st.sid as usize];
            let consumes_in_place = match step.axis {
                Axis::SelfAxis | Axis::DescendantOrSelf => match name {
                    Some(n) => step.test.matches_element(n),
                    // The virtual document root: only node() matches it.
                    None => step.test == CTest::AnyNode,
                },
                _ => false,
            };
            if consumes_in_place {
                // Self steps are consumed (state replaced); desc-or-self
                // steps both consume and persist for deeper matches.
                let advanced = St {
                    path: st.path,
                    sid: st.sid + 1,
                    count: st.count,
                };
                if step.axis == Axis::SelfAxis {
                    self.frames[idx].states[i] = advanced;
                    // Re-examine the same slot (it may complete or chain).
                    continue;
                } else {
                    push_state(&mut self.frames[idx].states, advanced);
                    i += 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Process an element start tag. When the result's `keep` is false the
    /// caller skips the subtree and must not call [`StreamMatcher::leave_element`]
    /// for it.
    pub fn enter_element(&mut self, name: Symbol) -> ElementOutcome {
        self.scratch.clear();
        let parent = self.frames.len() - 1;
        // Transitions from the parent's states to this child.
        // Split borrows: iterate over a temporary copy of indices to allow
        // predicate counting on the parent frame.
        for si in 0..self.frames[parent].states.len() {
            let st = self.frames[parent].states[si];
            let step = self.compiled.steps[st.sid as usize];
            match step.axis {
                Axis::Child => {
                    if step.test.matches_element(name) {
                        let passes = match step.pos {
                            None => true,
                            Some(k) => {
                                let seen = bump_pred(&mut self.frames[parent].pred_seen, st.sid);
                                seen == k
                            }
                        };
                        if passes {
                            push_state(
                                &mut self.scratch,
                                St {
                                    path: st.path,
                                    sid: st.sid + 1,
                                    count: st.count,
                                },
                            );
                        }
                    }
                }
                Axis::Descendant => {
                    // Propagate for deeper descendants...
                    push_state(&mut self.scratch, st);
                    // ...and consume if this child matches.
                    if step.test.matches_element(name) {
                        push_state(
                            &mut self.scratch,
                            St {
                                path: st.path,
                                sid: st.sid + 1,
                                count: st.count,
                            },
                        );
                    }
                }
                Axis::DescendantOrSelf => {
                    // The self part was handled by the parent's closure;
                    // here only the "descendant" part remains: propagate.
                    push_state(&mut self.scratch, st);
                }
                Axis::SelfAxis => {
                    // Fully handled by closure on the parent; nothing
                    // transitions to children.
                }
                Axis::Attribute => unreachable!("attribute steps stripped by analysis"),
            }
        }
        if self.scratch.is_empty() {
            return ElementOutcome {
                keep: false,
                roles: Vec::new(),
            };
        }
        let mut frame = Frame::default();
        std::mem::swap(&mut frame.states, &mut self.scratch);
        self.frames.push(frame);
        let idx = self.frames.len() - 1;
        let mut roles = Vec::new();
        self.closure_with_name(idx, Some(name), &mut roles);
        dedupe_roles(&mut roles);
        ElementOutcome { keep: true, roles }
    }

    /// Process the end tag of a kept element.
    pub fn leave_element(&mut self) {
        debug_assert!(self.frames.len() > 1, "leave_element on document root");
        self.frames.pop();
    }

    /// Roles for a text child of the current element. Text nodes have no
    /// children, so no frame is pushed; an empty result means the text is
    /// irrelevant and is not buffered.
    pub fn text(&mut self) -> RoleAssignment {
        let parent = self.frames.len() - 1;
        let mut roles: Vec<(RoleId, u32)> = Vec::new();
        for si in 0..self.frames[parent].states.len() {
            let st = self.frames[parent].states[si];
            let (first, len, role) = self.compiled.paths[st.path as usize];
            let step = self.compiled.steps[st.sid as usize];
            // A text node can only complete a path whose FINAL step it
            // matches: any continuation would need children.
            let is_final = st.sid + 1 == first + len;
            let completes = match step.axis {
                Axis::Child => {
                    step.test.matches_text() && is_final && {
                        match step.pos {
                            None => true,
                            Some(k) => {
                                let seen = bump_pred(&mut self.frames[parent].pred_seen, st.sid);
                                seen == k
                            }
                        }
                    }
                }
                Axis::Descendant | Axis::DescendantOrSelf => step.test.matches_text() && is_final,
                Axis::SelfAxis => false,
                Axis::Attribute => unreachable!(),
            };
            if completes {
                roles.push((role, st.count));
            }
        }
        dedupe_roles(&mut roles);
        roles
    }
}

/// Add a state, merging counts with an existing equal (path, sid) state.
fn push_state(states: &mut Vec<St>, st: St) {
    for existing in states.iter_mut() {
        if existing.path == st.path && existing.sid == st.sid {
            existing.count += st.count;
            return;
        }
    }
    states.push(st);
}

/// Increment and return the match count for a predicated step in a frame.
fn bump_pred(pred_seen: &mut Vec<(StateId, u32)>, sid: StateId) -> u32 {
    for (s, n) in pred_seen.iter_mut() {
        if *s == sid {
            *n += 1;
            return *n;
        }
    }
    pred_seen.push((sid, 1));
    1
}

/// Sum counts of duplicate roles.
fn dedupe_roles(roles: &mut Vec<(RoleId, u32)>) {
    if roles.len() < 2 {
        return;
    }
    roles.sort_unstable_by_key(|&(r, _)| r);
    let mut w = 0;
    for i in 0..roles.len() {
        if w > 0 && roles[w - 1].0 == roles[i].0 {
            roles[w - 1].1 += roles[i].1;
        } else {
            roles[w] = roles[i];
            w += 1;
        }
    }
    roles.truncate(w);
}

/// Merge role lists, summing counts.
fn merge_roles(into: &mut Vec<(RoleId, u32)>, from: Vec<(RoleId, u32)>) {
    into.extend(from);
    dedupe_roles(into);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use gcx_query::compile;

    /// Build a matcher for the projection paths of `query`.
    fn matcher_for(query: &str) -> (StreamMatcher, RoleAssignment, SymbolTable, RoleTable) {
        let q = compile(query).unwrap();
        let a = analyze(&q);
        let mut symbols = SymbolTable::new();
        let compiled = CompiledPaths::compile(&a.roles, &mut symbols);
        let (m, root_roles) = StreamMatcher::new(compiled);
        (m, root_roles, symbols, a.roles)
    }

    const PAPER_QUERY: &str = r#"
        <r> {
          for $bib in /bib return
            (for $x in $bib/* return
               if (not(exists($x/price))) then $x else (),
             for $b in $bib/book return $b/title)
        } </r>
    "#;

    /// Roles as a sorted display list like `["r2*1", ...]`.
    fn fmt_roles(roles: &RoleAssignment) -> Vec<String> {
        let mut v: Vec<String> = roles.iter().map(|(r, c)| format!("{r}*{c}")).collect();
        v.sort();
        v
    }

    #[test]
    fn paper_figure1_role_assignment() {
        // Input prefix: <bib><book><title/><author/></book>
        let (mut m, root_roles, mut sy, _) = matcher_for(PAPER_QUERY);
        assert_eq!(fmt_roles(&root_roles), ["r1*1"]);

        let bib = m.enter_element(sy.intern("bib"));
        assert!(bib.keep);
        assert_eq!(fmt_roles(&bib.roles), ["r2*1"]);

        let book = m.enter_element(sy.intern("book"));
        assert!(book.keep);
        // The paper's Figure 1(a): book{r3, r5, r6}.
        assert_eq!(fmt_roles(&book.roles), ["r3*1", "r5*1", "r6*1"]);

        let title = m.enter_element(sy.intern("title"));
        // title{r5, r7}.
        assert_eq!(fmt_roles(&title.roles), ["r5*1", "r7*1"]);
        m.leave_element();

        let author = m.enter_element(sy.intern("author"));
        // author{r5}.
        assert_eq!(fmt_roles(&author.roles), ["r5*1"]);
        m.leave_element();

        m.leave_element(); // book
        m.leave_element(); // bib
        assert_eq!(m.depth(), 0);
    }

    #[test]
    fn price_first_witness_only() {
        let (mut m, _, mut sy, _) = matcher_for(PAPER_QUERY);
        m.enter_element(sy.intern("bib"));
        m.enter_element(sy.intern("article"));
        let p1 = m.enter_element(sy.intern("price"));
        // First price: r4 (witness) + r5 (subtree).
        assert_eq!(fmt_roles(&p1.roles), ["r4*1", "r5*1"]);
        m.leave_element();
        let p2 = m.enter_element(sy.intern("price"));
        // Second price: only r5.
        assert_eq!(fmt_roles(&p2.roles), ["r5*1"]);
        m.leave_element();
    }

    #[test]
    fn irrelevant_subtrees_are_skippable() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x/y return $a");
        m.enter_element(sy.intern("x"));
        let z = m.enter_element(sy.intern("z"));
        assert!(!z.keep, "no projection path can match under /x/z");
        // Caller would skip; no leave_element for z.
        let y = m.enter_element(sy.intern("y"));
        assert!(y.keep);
    }

    #[test]
    fn text_nodes_matched_by_subtree_roles() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x return $a");
        m.enter_element(sy.intern("x"));
        let roles = m.text();
        assert_eq!(roles.len(), 1, "descendant-or-self::node() matches text");
    }

    #[test]
    fn text_nodes_not_matched_without_text_roles() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x/y return $a");
        m.enter_element(sy.intern("x"));
        let roles = m.text();
        assert!(
            roles.is_empty(),
            "text under /x is not on any projection path"
        );
    }

    #[test]
    fn explicit_text_step() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x return $a/text()");
        m.enter_element(sy.intern("x"));
        let roles = m.text();
        // binding role of $a does not land on text; the text() role does.
        assert_eq!(roles.len(), 1);
    }

    #[test]
    fn descendant_axis_multiplicity() {
        // /descendant::a/descendant::b: b under two nested a's gets the
        // binding role twice (two derivations).
        let (mut m, _, mut sy, _) = matcher_for("for $v in //a//b return if ($v/m = 1) then 'x'");
        let a1 = m.enter_element(sy.intern("a"));
        assert!(a1.keep);
        let a2 = m.enter_element(sy.intern("a"));
        assert!(a2.keep);
        let b = m.enter_element(sy.intern("b"));
        let binding = b
            .roles
            .iter()
            .find(|(r, _)| *r == gcx_query::ast::RoleId(1))
            .unwrap();
        assert_eq!(binding.1, 2, "two derivations through the two a-ancestors");
    }

    #[test]
    fn descendant_or_self_assigns_to_whole_subtree() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x return $a");
        // Role r3 = /x/descendant-or-self::node() must hit x, child, grandchild.
        let x = m.enter_element(sy.intern("x"));
        assert!(
            fmt_roles(&x.roles).iter().any(|s| s.starts_with("r3")),
            "{:?}",
            x.roles
        );
        let c = m.enter_element(sy.intern("c"));
        assert_eq!(fmt_roles(&c.roles), ["r3*1"]);
        let g = m.enter_element(sy.intern("g"));
        assert_eq!(fmt_roles(&g.roles), ["r3*1"]);
    }

    #[test]
    fn star_matches_any_element() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in /x/* return 'y'");
        m.enter_element(sy.intern("x"));
        assert!(m.enter_element(sy.intern("anything")).keep);
        m.leave_element();
        assert!(m.enter_element(sy.intern("other")).keep);
    }

    #[test]
    fn root_only_query_keeps_nothing() {
        // A query using no input at all: only r1 on the root; every element
        // is skippable.
        let (mut m, root_roles, mut sy, _) = matcher_for("'constant'");
        assert_eq!(root_roles.len(), 1);
        let e = m.enter_element(sy.intern("anything"));
        assert!(!e.keep);
    }

    #[test]
    fn deep_nesting_stays_linear() {
        let (mut m, _, mut sy, _) = matcher_for("for $a in //deep return $a");
        let d = sy.intern("d");
        for _ in 0..10_000 {
            let o = m.enter_element(d);
            assert!(o.keep, "descendant search keeps probing");
        }
        for _ in 0..10_000 {
            m.leave_element();
        }
        assert_eq!(m.depth(), 0);
    }
}
