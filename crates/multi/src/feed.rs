//! The channel side of the fan-out: per-query node events and the
//! [`BufferFeed`] implementation that replays them into a query's own
//! [`BufferTree`].
//!
//! The driver already ran the merged projection NFA, so events carry the
//! final per-query decision: only nodes this query buffers are sent, with
//! their role instances and document ordinals precomputed. The worker side
//! is thus a pure appender — it interns names into the worker's private
//! symbol table and mirrors the preprojector's buffer writes exactly
//! (self-closing elements are appended and immediately closed; `Eof`
//! closes the virtual root so blocked cursors terminate).

use gcx_core::buffer::{AttrBuf, BufferTree, NodeId, Ordinals};
use gcx_core::{BufferFeed, EngineError};
use gcx_query::ast::RoleId;
use gcx_xml::SymbolTable;
use std::sync::mpsc::Receiver;
use std::sync::Arc;

/// One pre-projected node event for one query.
#[derive(Debug, Clone)]
pub enum FeedEvent {
    /// An element this query buffers.
    Start {
        /// Tag name, shared across all keeping queries (cloning an event
        /// for another query is a refcount bump, not a string copy).
        name: Arc<str>,
        /// Attributes in document order, shared across keeping queries.
        attrs: Arc<[(Box<str>, Box<str>)]>,
        /// Role instances from the merged matcher, restricted to this
        /// query's tag.
        roles: Box<[(RoleId, u32)]>,
        /// Document-position ordinals, stamped per query by the driver.
        ordinals: Ordinals,
        /// `<a/>`: append and close in one event (no matching `End`).
        self_closing: bool,
    },
    /// End tag of the innermost open `Start`.
    End,
    /// A text node this query buffers.
    Text {
        /// Character data (entities already resolved), shared across
        /// keeping queries.
        content: Arc<str>,
        /// Role instances restricted to this query's tag (never empty —
        /// role-free text is not sent).
        roles: Box<[(RoleId, u32)]>,
        /// Document-position ordinals.
        ordinals: Ordinals,
    },
    /// Input exhausted; closes the virtual root.
    Eof,
}

/// A [`BufferFeed`] over a channel of [`FeedEvent`] chunks, produced by
/// the shared-stream driver. Events travel in chunks (not one per send)
/// because a parked receiver makes every send pay a thread wake-up —
/// chunking amortizes that across [`crate::BatchOptions::chunk_size`]
/// events. Dropping the feed (e.g. when the evaluator errors) disconnects
/// the channel, which the driver observes as a failed send and stops
/// feeding this query.
pub struct ChannelFeed {
    rx: Receiver<Vec<FeedEvent>>,
    /// Remainder of the chunk currently being drained.
    pending: std::vec::IntoIter<FeedEvent>,
    /// Open element chain; the top is the parent of incoming nodes.
    open: Vec<NodeId>,
    /// Reused attribute scratch (see `BufferTree::append_element_with_attrs`).
    attr_scratch: AttrBuf,
    events: u64,
    finished: bool,
}

impl ChannelFeed {
    /// Wrap a receiver whose sender is a [`crate::SharedRun`] driver.
    pub fn new(rx: Receiver<Vec<FeedEvent>>) -> ChannelFeed {
        ChannelFeed {
            rx,
            pending: Vec::new().into_iter(),
            open: vec![NodeId::ROOT],
            attr_scratch: AttrBuf::new(),
            events: 0,
            finished: false,
        }
    }

    /// Next event, refilling from the channel as chunks drain.
    fn next_event(&mut self) -> Result<FeedEvent, EngineError> {
        loop {
            if let Some(event) = self.pending.next() {
                return Ok(event);
            }
            let chunk = self.rx.recv().map_err(|_| {
                EngineError::Internal("shared-stream driver disconnected mid-document".into())
            })?;
            self.pending = chunk.into_iter();
        }
    }
}

impl BufferFeed for ChannelFeed {
    fn advance(
        &mut self,
        buf: &mut BufferTree,
        symbols: &mut SymbolTable,
    ) -> Result<bool, EngineError> {
        if self.finished {
            return Ok(false);
        }
        let event = self.next_event()?;
        self.events += 1;
        match event {
            FeedEvent::Start {
                name,
                attrs,
                roles,
                ordinals,
                self_closing,
            } => {
                let name = symbols.intern(&name);
                self.attr_scratch.clear();
                for (k, v) in attrs.iter() {
                    let attr_name = symbols.intern(k);
                    self.attr_scratch.push(attr_name, v);
                }
                let parent = *self.open.last().expect("open chain never empty");
                let id = buf.append_element_with_attrs(
                    parent,
                    name,
                    &mut self.attr_scratch,
                    &roles,
                    ordinals,
                );
                if self_closing {
                    buf.close(id);
                } else {
                    self.open.push(id);
                }
            }
            FeedEvent::End => {
                let id = self.open.pop().expect("unbalanced End event");
                debug_assert!(id != NodeId::ROOT, "End event for the virtual root");
                buf.close(id);
            }
            FeedEvent::Text {
                content,
                roles,
                ordinals,
            } => {
                let parent = *self.open.last().expect("open chain never empty");
                buf.append_text(parent, &content, &roles, ordinals);
            }
            FeedEvent::Eof => {
                self.finished = true;
                buf.close(NodeId::ROOT);
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn tokens(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn start(name: &str, roles: &[(RoleId, u32)], self_closing: bool) -> FeedEvent {
        FeedEvent::Start {
            name: name.into(),
            attrs: Arc::from(vec![]),
            roles: roles.to_vec().into_boxed_slice(),
            ordinals: Ordinals::FIRST,
            self_closing,
        }
    }

    #[test]
    fn replays_events_into_buffer() {
        let (tx, rx) = sync_channel(8);
        let r1 = RoleId(1);
        // Mixed chunking: two events, then three, exercising the refill.
        tx.send(vec![
            start("a", &[(r1, 1)], false),
            start("b", &[(r1, 2)], true),
        ])
        .unwrap();
        tx.send(vec![
            FeedEvent::Text {
                content: "hi".into(),
                roles: Box::new([(r1, 1)]),
                ordinals: Ordinals::FIRST,
            },
            FeedEvent::End,
            FeedEvent::Eof,
        ])
        .unwrap();

        let mut feed = ChannelFeed::new(rx);
        let mut buf = BufferTree::new(true);
        let mut symbols = SymbolTable::new();
        while feed.advance(&mut buf, &mut symbols).unwrap() {}
        assert_eq!(feed.tokens(), 5);
        assert_eq!(buf.stats().allocated, 3);
        assert!(buf.is_closed(NodeId::ROOT));
        buf.check_integrity();
    }

    #[test]
    fn disconnect_is_an_error_not_a_hang() {
        let (tx, rx) = sync_channel::<Vec<FeedEvent>>(1);
        drop(tx);
        let mut feed = ChannelFeed::new(rx);
        let mut buf = BufferTree::new(true);
        let mut symbols = SymbolTable::new();
        let err = feed.advance(&mut buf, &mut symbols).unwrap_err();
        assert!(err.to_string().contains("disconnected"));
    }
}
