//! The merged projection matcher: one NFA over the union of a batch's
//! projection paths, with per-query outcomes.
//!
//! Merging is exact, not approximate: path states never interact across
//! queries (derivation counts merge only on identical `(path, state)`
//! pairs, and every path belongs to one query), so restricting the merged
//! matcher's outcome to one query's tag reproduces that query's standalone
//! [`StreamMatcher`](gcx_projection::StreamMatcher) behaviour — keep/skip
//! decisions, role assignments *and* descendant-axis multiplicities. The
//! property suite in `tests/merge_props.rs` asserts this equivalence on
//! randomized documents.

use gcx_core::CompiledQuery;
use gcx_projection::{
    CompiledPaths, QueryTag, ReachFilter, TaggedMatcher, TaggedOutcome, TaggedPaths, TaggedRole,
};
use gcx_xml::{Symbol, SymbolTable};
use std::sync::Arc;

/// A batch's compiled, shareable projection artifacts: the merged NFA
/// plus the symbol table all the batch's path tests were interned
/// against (and the optional DTD reachability filter). Prepared once
/// per batch ([`crate::SharedRun::prepare`]), it makes every further
/// run of the same batch compile nothing: each document stamps out a
/// fresh matcher from the shared `Arc` and a clone of the pre-interned
/// table, so repeated batches (a service, a bench loop) pay only
/// per-run frame state.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    pub(crate) symbols: SymbolTable,
    pub(crate) merged: Arc<TaggedPaths>,
    pub(crate) reach: Option<Arc<ReachFilter>>,
    pub(crate) n_queries: usize,
}

impl BatchPlan {
    /// Compile the batch's paths against one fresh symbol table, merge,
    /// and (with a schema) prune + build the reachability filter.
    pub fn new(queries: &[CompiledQuery], schema: Option<&gcx_schema::Dtd>) -> BatchPlan {
        let mut symbols = SymbolTable::new();
        let (merged, reach) = compile_merged(queries, &mut symbols, schema);
        BatchPlan {
            symbols,
            merged,
            reach,
            n_queries: queries.len(),
        }
    }

    /// Number of queries the plan was prepared for. A plan is only valid
    /// for the exact batch (same queries, same order) it was built from.
    pub fn n_queries(&self) -> usize {
        self.n_queries
    }
}

/// Compile every query's paths against `symbols`, prune against the
/// schema when present, merge into one tagged automaton, and derive the
/// schema's reachability filter.
fn compile_merged(
    queries: &[CompiledQuery],
    symbols: &mut SymbolTable,
    schema: Option<&gcx_schema::Dtd>,
) -> (Arc<TaggedPaths>, Option<Arc<ReachFilter>>) {
    let parts: Vec<CompiledPaths> = queries
        .iter()
        .map(|q| {
            let paths = CompiledPaths::compile(&q.analysis.roles, symbols);
            match schema {
                Some(dtd) => dtd.prune(&paths, symbols).paths,
                None => paths,
            }
        })
        .collect();
    let merged = Arc::new(TaggedPaths::merge(parts.iter()));
    debug_assert_eq!(merged.n_tags() as usize, queries.len());
    let reach = schema.map(|dtd| Arc::new(dtd.reach_filter(symbols)));
    (merged, reach)
}

/// Union-of-batches projection matcher. One instance per shared pass.
#[derive(Debug)]
pub struct MergedMatcher {
    inner: TaggedMatcher,
    outcome: TaggedOutcome,
    text_scratch: Vec<TaggedRole>,
    n_queries: u32,
}

impl MergedMatcher {
    /// Build the merged matcher for a batch. All queries' paths are
    /// compiled against the same `symbols` table (required: the NFA
    /// compares interned names). Returns the matcher and the tagged roles
    /// of the virtual document root (per query; inert for the standard
    /// engine, reported for completeness).
    pub fn build(
        queries: &[CompiledQuery],
        symbols: &mut SymbolTable,
    ) -> (MergedMatcher, Vec<TaggedRole>) {
        MergedMatcher::build_with_schema(queries, symbols, None)
    }

    /// [`MergedMatcher::build`] with an optional DTD the shared input is
    /// promised to be valid against: each query's paths are pruned of
    /// DTD-unsatisfiable ones before merging, and the merged NFA gets the
    /// descendant-reachability filter.
    pub fn build_with_schema(
        queries: &[CompiledQuery],
        symbols: &mut SymbolTable,
        schema: Option<&gcx_schema::Dtd>,
    ) -> (MergedMatcher, Vec<TaggedRole>) {
        let (merged, reach) = compile_merged(queries, symbols, schema);
        MergedMatcher::from_shared(merged, reach)
    }

    /// Stamp a fresh matcher out of an already-compiled automaton (the
    /// prepared-batch fast path): only per-run frame state is allocated.
    pub fn from_plan(plan: &BatchPlan) -> (MergedMatcher, Vec<TaggedRole>) {
        MergedMatcher::from_shared(plan.merged.clone(), plan.reach.clone())
    }

    fn from_shared(
        merged: Arc<TaggedPaths>,
        reach: Option<Arc<ReachFilter>>,
    ) -> (MergedMatcher, Vec<TaggedRole>) {
        let n_queries = merged.n_tags();
        let (inner, root_roles) = TaggedMatcher::from_shared(merged, reach);
        (
            MergedMatcher {
                inner,
                outcome: TaggedOutcome::for_tags(n_queries),
                text_scratch: Vec::new(),
                n_queries,
            },
            root_roles,
        )
    }

    /// Number of queries in the batch.
    pub fn n_queries(&self) -> u32 {
        self.n_queries
    }

    /// Current nesting depth (document root excluded).
    pub fn depth(&self) -> usize {
        self.inner.depth()
    }

    /// Process an element start tag. The returned outcome is valid until
    /// the next call. `any_keep == false` means **no** query can match
    /// this element or anything below it: the caller skips the subtree and
    /// must not call [`MergedMatcher::leave_element`] for it.
    pub fn enter_element(&mut self, name: Symbol) -> &TaggedOutcome {
        self.inner.enter_element(name, &mut self.outcome);
        &self.outcome
    }

    /// Process the end tag of a kept element.
    pub fn leave_element(&mut self) {
        self.inner.leave_element();
    }

    /// Tagged roles for a text child of the current element. A query with
    /// no roles in the result does not buffer the text.
    pub fn text(&mut self) -> &[TaggedRole] {
        let mut scratch = std::mem::take(&mut self.text_scratch);
        self.inner.text_into(&mut scratch);
        self.text_scratch = scratch;
        &self.text_scratch
    }

    /// Roles of query `tag` in the last `enter_element` outcome.
    pub fn roles_of(&self, tag: QueryTag) -> Vec<(gcx_query::ast::RoleId, u32)> {
        self.outcome.roles_of(tag).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_core::CompiledQuery;

    fn build(queries: &[&str]) -> (MergedMatcher, SymbolTable) {
        let compiled: Vec<CompiledQuery> = queries
            .iter()
            .map(|q| CompiledQuery::compile(q).unwrap())
            .collect();
        let mut symbols = SymbolTable::new();
        let (m, _) = MergedMatcher::build(&compiled, &mut symbols);
        (m, symbols)
    }

    #[test]
    fn disjoint_queries_keep_disjoint_subtrees() {
        let (mut m, mut sy) = build(&["for $a in /r/x return $a", "for $b in /r/y return $b"]);
        let r = sy.intern("r");
        let x = sy.intern("x");
        let y = sy.intern("y");
        let o = m.enter_element(r);
        assert!(o.any_keep);
        assert!(o.kept[0] && o.kept[1], "both queries keep the shared root");

        let o = m.enter_element(x);
        assert!(o.any_keep);
        assert!(o.kept[0] && !o.kept[1], "only query 0 wants /r/x");
        m.leave_element();

        let o = m.enter_element(y);
        assert!(!o.kept[0] && o.kept[1], "only query 1 wants /r/y");
        m.leave_element();
    }

    #[test]
    fn subtree_wanted_by_nobody_is_skipped_once() {
        let (mut m, mut sy) = build(&["for $a in /r/x return $a", "for $b in /r/y return $b"]);
        m.enter_element(sy.intern("r"));
        let o = m.enter_element(sy.intern("z"));
        assert!(!o.any_keep, "no query matches under /r/z");
    }

    #[test]
    fn identical_queries_get_independent_tags() {
        let q = "for $a in /r//v return $a";
        let (mut m, mut sy) = build(&[q, q]);
        let o = m.enter_element(sy.intern("r"));
        assert!(o.kept[0] && o.kept[1]);
        let o = m.enter_element(sy.intern("v"));
        let r0: Vec<_> = o.roles_of(0).collect();
        let r1: Vec<_> = o.roles_of(1).collect();
        assert_eq!(r0, r1, "identical queries see identical roles");
        assert!(!r0.is_empty());
    }

    #[test]
    fn text_roles_are_tagged_per_query() {
        let (mut m, mut sy) = build(&["for $a in /r return $a/text()", "for $b in /r/x return $b"]);
        m.enter_element(sy.intern("r"));
        let roles = m.text();
        assert!(roles.iter().any(|&(t, _, _)| t == 0), "query 0 wants text");
        // Query 1 also assigns subtree roles to text under /r? No: its
        // binding subtree role starts at /r/x, so text directly under r
        // carries no query-1 role.
        assert!(
            roles.iter().all(|&(t, _, _)| t == 0),
            "query 1 must not claim text under /r: {roles:?}"
        );
    }
}
