#![deny(unsafe_code)]
//! # gcx-multi — multi-query shared-stream evaluation
//!
//! GCX minimizes buffers for *one* query over *one* stream. A production
//! deployment serves many outstanding queries against the same feed — and
//! tokenizing plus projection-matching the stream once **per query** is
//! then the dominant redundant cost. This crate evaluates a whole batch of
//! compiled queries in a **single pass** over the input:
//!
//! ```text
//!                      ┌───────────────┐  per-query events   ┌──────────────┐
//!   XML ──► Tokenizer ─► MergedMatcher ├──────────┬─────────►│ BufferTree q0│──► out 0
//!            (once)    │ (union NFA,   │          │          │ + evaluator  │
//!                      │ tagged roles) │          └─────────►│ BufferTree q1│──► out 1
//!                      └───────────────┘   bounded channels  │ + evaluator  │
//!                                                            └──────────────┘
//! ```
//!
//! * [`MergedMatcher`] unions the per-query projection NFAs
//!   ([`gcx_projection::TaggedPaths`]) so each token is tokenized and
//!   matched **exactly once** no matter how many queries want it; element
//!   outcomes carry per-query tags.
//! * [`SharedRun`] drives the pass: it stamps per-query ordinals, fans
//!   matched tokens out to per-query worker threads over bounded channels
//!   (backpressure keeps memory proportional to the per-query buffers, not
//!   the stream), and collects outputs. Each worker runs the unmodified
//!   single-query evaluator ([`gcx_core::run_with_feed`]) over a
//!   [`ChannelFeed`], so each query's role multiset, signOff execution and
//!   therefore *buffer minimality* are preserved verbatim.
//! * [`BatchReport`] aggregates throughput, per-query buffer statistics
//!   and the share factor (work that would have been repeated N× but ran
//!   once).
//!
//! Every query's output is byte-identical to a standalone
//! [`gcx_core::run`] over the same document — asserted by the equivalence
//! and property suites in `tests/`.

mod driver;
mod feed;
mod matcher;

pub use driver::{run_batch, BatchOptions, BatchReport, QueryRun, SharedRun};
pub use feed::{ChannelFeed, FeedEvent};
pub use matcher::{BatchPlan, MergedMatcher};
