//! The shared-stream driver: one tokenizer pass, N independent query
//! evaluations.
//!
//! ## Data flow
//!
//! The driver thread owns the tokenizer and the [`MergedMatcher`]. For
//! every structural token it makes the merged keep/skip decision once,
//! stamps per-query document ordinals (exactly as each query's standalone
//! preprojector would), and sends per-query [`FeedEvent`]s over bounded
//! channels to one worker thread per query. Each worker runs the ordinary
//! single-query evaluator over a [`ChannelFeed`]; its buffer, role
//! multiset and signOff execution are untouched by the sharing, so
//! per-query buffer minimality is preserved.
//!
//! ## Skip bookkeeping
//!
//! Three nested notions of "not interested" exist:
//!
//! * merged skip (`merged_skip > 0`): *no* query can match inside — the
//!   subtree is scanned with a depth counter and zero per-query work
//!   (its end tags never reach per-query state);
//! * per-query skip (`QState::skip_depth > 0`): some other query keeps the
//!   element, this one doesn't. The subtree stays invisible to this query,
//!   but start/end tags inside it (processed for the queries that *do*
//!   keep it) must balance the counter;
//! * dead (`QState::tx == None`): the worker disconnected (evaluator
//!   error); the driver stops feeding it, other queries are unaffected.
//!
//! ## Backpressure and termination
//!
//! Channels are bounded ([`BatchOptions::channel_capacity`]): a slow query
//! stalls the shared pass rather than buffering the stream, keeping memory
//! proportional to Σ per-query live buffers. Workers always drain to `Eof`
//! (the engine's `drain_input` pulls after evaluation completes), so the
//! driver never blocks forever; a worker that dies instead disconnects its
//! channel, which the driver observes on the next send.

use crate::feed::{ChannelFeed, FeedEvent};
use crate::matcher::{BatchPlan, MergedMatcher};
use gcx_core::buffer::Ordinals;
use gcx_core::{ChildCounters, CompiledQuery, EngineError, EngineOptions, RunReport};
use gcx_query::ast::RoleId;
use gcx_xml::{PushTokenizer, Symbol, SymbolTable, Token, TokenStep, XmlError, XmlErrorKind};
use std::io::Read;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared copies of an element's name and attributes; cloning one into a
/// keeping query's event is a refcount bump.
type SharedStart = (Arc<str>, Arc<[(Box<str>, Box<str>)]>);

/// Configuration of a shared-stream batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Execute signOff statements (dynamic buffer minimization) in every
    /// worker. Disabling degrades each query to projection-only buffering.
    pub execute_signoffs: bool,
    /// Pretty-print each query's output with this indent.
    pub indent: Option<String>,
    /// Bound of each per-query event channel (events, not bytes).
    pub channel_capacity: usize,
    /// Events per channel send. Each send to a parked worker pays a thread
    /// wake-up; chunking amortizes it. Effective chunk size is capped at
    /// `channel_capacity` so backpressure granularity survives tiny
    /// channels.
    pub chunk_size: usize,
    /// Per-query buffer byte budget (None = unlimited). A query that
    /// crosses it fails with `BufferLimitExceeded`; the rest of the batch
    /// is unaffected (worker failures never stop peers).
    pub max_buffer_bytes: Option<u64>,
    /// Record buffer-lifecycle and VM-frame telemetry in every worker;
    /// each per-query [`RunReport`] then carries an `obs` section
    /// (residency histograms, purge causes, live-bytes timeline).
    pub telemetry: bool,
    /// A DTD the shared input is promised to be valid against. Applied at
    /// the *merged matcher*: per-query path pruning plus the descendant-
    /// reachability filter on the single shared scan. (Workers evaluate
    /// over pre-matched channel events, so the buffer-side cutoff
    /// analysis has no stream to observe there.)
    pub schema: Option<Arc<gcx_schema::Dtd>>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            execute_signoffs: true,
            indent: None,
            channel_capacity: 4096,
            chunk_size: 256,
            max_buffer_bytes: None,
            telemetry: false,
            schema: None,
        }
    }
}

/// Outcome of one query of the batch.
#[derive(Debug)]
pub struct QueryRun {
    /// The query's serialized result (byte-identical to a standalone run).
    pub output: Vec<u8>,
    /// The worker's run report, or the error that stopped it. `tokens` in
    /// the report counts the events this query *received* — its private
    /// share of the stream.
    pub report: Result<RunReport, EngineError>,
}

/// Aggregate measurements of a shared pass.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query outcomes, in batch order.
    pub queries: Vec<QueryRun>,
    /// Structural tokens in the single shared scan.
    pub tokens: u64,
    /// Total per-query events fanned out (Σ over queries).
    pub fanout_events: u64,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

impl BatchReport {
    /// Shared-work factor: structural-token work a per-query evaluation
    /// would have done (N scans) over the work actually done (one scan
    /// plus the fan-out events). Approaches N when the queries' projected
    /// streams are sparse; can drop below 1.0 for a single query whose
    /// fan-out duplicates most of the stream (the sharing overhead with
    /// nobody to share it).
    pub fn share_factor(&self) -> f64 {
        let n = self.queries.len() as f64;
        let would_have = n * self.tokens as f64;
        let actual = self.tokens as f64 + self.fanout_events as f64;
        if actual == 0.0 {
            1.0
        } else {
            would_have / actual
        }
    }

    /// Machine-readable form (hand-rolled JSON; no external deps).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 192 * self.queries.len());
        s.push_str(&format!(
            "{{\"tokens\":{},\"queries\":{},\"fanout_events\":{},\"share_factor\":{:.3},\
             \"elapsed_ms\":{:.3},\"per_query\":[",
            self.tokens,
            self.queries.len(),
            self.fanout_events,
            self.share_factor(),
            self.elapsed.as_secs_f64() * 1e3,
        ));
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match &q.report {
                Ok(r) => {
                    s.push_str(&format!(
                        "{{\"index\":{i},\"output_bytes\":{},\"report\":{}}}",
                        q.output.len(),
                        r.to_json()
                    ));
                }
                Err(e) => {
                    s.push_str(&format!(
                        "{{\"index\":{i},\"output_bytes\":{},\"error\":\"{}\"}}",
                        q.output.len(),
                        json_escape(&e.to_string())
                    ));
                }
            }
        }
        s.push_str("]}");
        s
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-query driver-side state.
struct QState {
    /// Event channel to the worker; `None` once the worker disconnected.
    tx: Option<SyncSender<Vec<FeedEvent>>>,
    /// Events accumulated for the next send.
    chunk: Vec<FeedEvent>,
    /// Flush threshold for `chunk`.
    chunk_size: usize,
    /// Depth inside a subtree this query skipped while some other query
    /// keeps it (0 = in this query's kept region).
    skip_depth: u32,
    /// Ordinal counters for this query's open elements (root frame at the
    /// bottom). Only elements this query keeps get a frame — identical to
    /// the standalone preprojector's open stack.
    counters: Vec<ChildCounters>,
    /// Recycled counters for closed elements (no allocation per element).
    counter_pool: Vec<ChildCounters>,
}

impl QState {
    fn alive(&self) -> bool {
        self.tx.is_some()
    }

    /// Queue an event, flushing a full chunk; on disconnect mark the query
    /// dead.
    fn send(&mut self, event: FeedEvent) {
        if self.tx.is_some() {
            self.chunk.push(event);
            if self.chunk.len() >= self.chunk_size {
                self.flush();
            }
        }
    }

    /// Push the pending chunk to the worker.
    fn flush(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        if let Some(tx) = &self.tx {
            let chunk = std::mem::replace(&mut self.chunk, Vec::with_capacity(self.chunk_size));
            if tx.send(chunk).is_err() {
                self.tx = None;
                self.chunk = Vec::new();
            }
        } else {
            self.chunk.clear();
        }
    }
}

/// The shared-stream evaluator: one parse, N queries.
#[derive(Debug, Default)]
pub struct SharedRun {
    opts: BatchOptions,
}

impl SharedRun {
    /// A driver with the given options.
    pub fn new(opts: BatchOptions) -> SharedRun {
        SharedRun { opts }
    }

    /// Evaluate `queries` over `input` in a single pass. Per-query
    /// evaluator failures are reported in the [`BatchReport`]; only input
    /// parse errors (which invalidate every query) fail the whole batch.
    pub fn run<R: Read>(
        &self,
        queries: &[CompiledQuery],
        input: R,
    ) -> Result<BatchReport, EngineError> {
        self.run_prepared(&self.prepare(queries), queries, input)
    }

    /// Compile the batch's shared artifacts (merged projection NFA,
    /// pre-interned symbol table, schema filter) once. Feeding the plan
    /// back to [`SharedRun::run_prepared`] makes every further run of
    /// the same batch compile nothing — the repeated-batch fast path.
    pub fn prepare(&self, queries: &[CompiledQuery]) -> BatchPlan {
        BatchPlan::new(queries, self.opts.schema.as_deref())
    }

    /// [`SharedRun::run`] against a prepared plan. `plan` must have been
    /// built (by [`SharedRun::prepare`] with the same schema option) from
    /// exactly this `queries` slice — same queries, same order; a plan
    /// from a different batch projects the wrong paths.
    pub fn run_prepared<R: Read>(
        &self,
        plan: &BatchPlan,
        queries: &[CompiledQuery],
        input: R,
    ) -> Result<BatchReport, EngineError> {
        assert_eq!(
            plan.n_queries(),
            queries.len(),
            "batch plan was prepared for a different number of queries"
        );
        let started = Instant::now();
        // Interning during the scan is per-document: each run extends its
        // own clone of the plan's pre-interned table.
        let mut symbols = plan.symbols.clone();
        let (mut matcher, _root_roles) = MergedMatcher::from_plan(plan);
        let engine_opts = EngineOptions {
            project: true,
            execute_signoffs: self.opts.execute_signoffs,
            purge: true,
            drain_input: true,
            timeline_every: None,
            indent: self.opts.indent.clone(),
            max_buffer_bytes: self.opts.max_buffer_bytes,
            telemetry: self.opts.telemetry,
            // Workers run over pre-matched channel events: the schema's
            // stream-side analyses (matcher filter, cutoffs) live in the
            // shared scan above, not in the per-query evaluators.
            schema: None,
            schema_from_doctype: false,
        };

        let mut input = input;
        let mut scan_result: Result<(u64, u64), EngineError> = Ok((0, 0));
        let mut outcomes: Vec<QueryRun> = Vec::with_capacity(queries.len());

        std::thread::scope(|scope| {
            let mut states: Vec<QState> = Vec::with_capacity(queries.len());
            let mut handles = Vec::with_capacity(queries.len());
            let chunk_size = self
                .opts
                .chunk_size
                .clamp(1, self.opts.channel_capacity.max(1));
            let chunks_cap = (self.opts.channel_capacity.max(1) / chunk_size).max(1);
            for q in queries {
                let (tx, rx) = sync_channel(chunks_cap);
                let worker_opts = engine_opts.clone();
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let feed = ChannelFeed::new(rx);
                    // The worker reuses the query's compiled program; its
                    // run table is seeded from the program's pre-interned
                    // symbols and event names are interned on arrival.
                    let report = gcx_core::run_with_feed(q, &worker_opts, feed, &mut out);
                    (out, report)
                }));
                states.push(QState {
                    tx: Some(tx),
                    chunk: Vec::with_capacity(chunk_size),
                    chunk_size,
                    skip_depth: 0,
                    counters: vec![ChildCounters::new()],
                    counter_pool: Vec::new(),
                });
            }

            scan_result = drive(&mut input, &mut matcher, &mut symbols, &mut states);
            // Successful or not: disconnect every channel so workers
            // finish (Eof was already sent on success).
            drop(states);
            for handle in handles {
                let (output, report) = handle.join().expect("worker panicked");
                outcomes.push(QueryRun { output, report });
            }
        });

        let (tokens, fanout_events) = scan_result?;
        Ok(BatchReport {
            queries: outcomes,
            tokens,
            fanout_events,
            elapsed: started.elapsed(),
        })
    }
}

/// Chunk size the driver reads from its source between tokenizer steps.
const READ_CHUNK: usize = 64 * 1024;

/// The single shared scan, driven through the sans-IO push tokenizer: the
/// engine core below this loop never touches the `Read` source — chunks
/// are read at the edge and fed into the tokenizer window whenever it
/// reports `NeedMoreData`. Returns (structural tokens, fan-out events).
fn drive<R: Read>(
    input: &mut R,
    matcher: &mut MergedMatcher,
    symbols: &mut SymbolTable,
    states: &mut [QState],
) -> Result<(u64, u64), EngineError> {
    let mut tokens = 0u64;
    let mut fanout = 0u64;
    let mut merged_skip = 0u32;
    // Scratch reused across elements: per-query roles of the current node.
    let mut role_scratch: Vec<(RoleId, u32)> = Vec::new();

    let mut tok = PushTokenizer::new();
    loop {
        match tok.step()? {
            TokenStep::End => break,
            TokenStep::NeedMoreData => {
                // Refill the window straight from the source (no copy).
                let pos = tok.position();
                let gap = tok.space(READ_CHUNK);
                let n = input.read(gap).map_err(|e| {
                    EngineError::Xml(XmlError {
                        kind: XmlErrorKind::Io(e),
                        pos,
                    })
                })?;
                if n == 0 {
                    tok.finish_input();
                } else {
                    tok.commit(n);
                }
                continue;
            }
            TokenStep::Token => {}
        }
        let token = tok.token();
        match token {
            Token::StartTag(start) => {
                let self_closing = start.self_closing;
                if merged_skip > 0 {
                    if !self_closing {
                        merged_skip += 1;
                    }
                } else {
                    let name = symbols.intern(start.name);
                    // Shared owned copies, built lazily on first keeper.
                    let mut shared: Option<SharedStart> = None;
                    let outcome = matcher.enter_element(name);
                    let any_keep = outcome.any_keep;
                    for (qi, qs) in states.iter_mut().enumerate() {
                        if !qs.alive() {
                            continue;
                        }
                        if qs.skip_depth > 0 {
                            // Inside a subtree this query skipped but some
                            // other query keeps: balance the counter. When
                            // nobody keeps (merged skip), the subtree's end
                            // tags never reach per-query state, so the
                            // counter must not move either.
                            if !self_closing && any_keep {
                                qs.skip_depth += 1;
                            }
                            continue;
                        }
                        // In this query's kept region: every child bumps
                        // ordinals, kept or not (positional predicates see
                        // true document positions).
                        let ordinals = ordinals_elem(qs, name);
                        if any_keep && outcome.kept[qi] {
                            role_scratch.clear();
                            role_scratch.extend(outcome.roles_of(qi as u32));
                            let (name, attrs) = shared.get_or_insert_with(|| {
                                let name: Arc<str> = start.name.into();
                                let attrs: Arc<[_]> = start
                                    .attrs
                                    .iter()
                                    .map(|a| (Box::<str>::from(a.name), Box::<str>::from(a.value)))
                                    .collect();
                                (name, attrs)
                            });
                            qs.send(FeedEvent::Start {
                                name: name.clone(),
                                attrs: attrs.clone(),
                                roles: role_scratch.as_slice().into(),
                                ordinals,
                                self_closing,
                            });
                            fanout += 1;
                            if !self_closing {
                                let counters = qs.counter_pool.pop().unwrap_or_default();
                                qs.counters.push(counters);
                            }
                        } else if any_keep && !self_closing {
                            // Some other query keeps this subtree; this one
                            // starts skipping it. (If nobody keeps it, the
                            // merged skip below hides it from everyone.)
                            qs.skip_depth = 1;
                        }
                    }
                    if any_keep {
                        if self_closing {
                            matcher.leave_element();
                        }
                    } else if !self_closing {
                        merged_skip = 1;
                    }
                }
                tokens += 1;
                if self_closing {
                    // A self-closing tag stands for open+close: count both.
                    tokens += 1;
                }
            }
            Token::EndTag { .. } => {
                if merged_skip > 0 {
                    merged_skip -= 1;
                } else {
                    for qs in states.iter_mut() {
                        if !qs.alive() {
                            continue;
                        }
                        if qs.skip_depth > 0 {
                            qs.skip_depth -= 1;
                        } else {
                            debug_assert!(
                                qs.counters.len() > 1,
                                "End for an element this query never kept"
                            );
                            let mut counters =
                                qs.counters.pop().expect("counter stack never empty");
                            counters.clear();
                            qs.counter_pool.push(counters);
                            qs.send(FeedEvent::End);
                            fanout += 1;
                        }
                    }
                    matcher.leave_element();
                }
                tokens += 1;
            }
            Token::Text(content) => {
                if merged_skip == 0 {
                    let roles = matcher.text();
                    let mut shared: Option<Arc<str>> = None;
                    for (qi, qs) in states.iter_mut().enumerate() {
                        if !qs.alive() || qs.skip_depth > 0 {
                            continue;
                        }
                        let ordinals = ordinals_text(qs);
                        let qi = qi as u32;
                        // Restrict to this query's tag; role-free text is
                        // irrelevant to it and not sent.
                        let lo = roles.partition_point(|&(t, _, _)| t < qi);
                        let hi = roles.partition_point(|&(t, _, _)| t <= qi);
                        if lo == hi {
                            continue;
                        }
                        let content = shared
                            .get_or_insert_with(|| Arc::<str>::from(&*content))
                            .clone();
                        qs.send(FeedEvent::Text {
                            content,
                            roles: roles[lo..hi].iter().map(|&(_, r, c)| (r, c)).collect(),
                            ordinals,
                        });
                        fanout += 1;
                    }
                }
                tokens += 1;
            }
            // Comments, PIs and the doctype are not part of the data model.
            Token::Comment(_) | Token::ProcessingInstruction { .. } | Token::Doctype(_) => {}
        }
    }
    // Input exhausted: close every query's virtual root and flush.
    for qs in states.iter_mut() {
        qs.send(FeedEvent::Eof);
        fanout += 1;
        qs.flush();
    }
    Ok((tokens, fanout))
}

/// Ordinals for an element child in this query's current open element.
fn ordinals_elem(qs: &mut QState, name: Symbol) -> Ordinals {
    qs.counters
        .last_mut()
        .expect("counter stack never empty")
        .next_elem(name)
}

/// Ordinals for a text child in this query's current open element.
fn ordinals_text(qs: &mut QState) -> Ordinals {
    qs.counters
        .last_mut()
        .expect("counter stack never empty")
        .next_text()
}

/// Evaluate a batch with default options.
pub fn run_batch<R: Read>(queries: &[CompiledQuery], input: R) -> Result<BatchReport, EngineError> {
    SharedRun::new(BatchOptions::default()).run(queries, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(texts: &[&str]) -> Vec<CompiledQuery> {
        texts
            .iter()
            .map(|t| CompiledQuery::compile(t).unwrap())
            .collect()
    }

    fn standalone(q: &CompiledQuery, doc: &str) -> Vec<u8> {
        let mut out = Vec::new();
        gcx_core::run(q, &EngineOptions::gcx(), doc.as_bytes(), &mut out).unwrap();
        out
    }

    const DOC: &str = "<bib><book><title>Streams</title><price>10</price></book>\
                       <article><title>Pipes</title></article></bib>";

    #[test]
    fn batch_matches_standalone_outputs() {
        let queries = compile(&[
            "<r>{ for $b in /bib/book return $b/title }</r>",
            "for $a in /bib/article return $a",
            "for $t in /bib/book/price return $t/text()",
            "'constant'",
        ]);
        let report = run_batch(&queries, DOC.as_bytes()).unwrap();
        assert_eq!(report.queries.len(), 4);
        for (q, run) in queries.iter().zip(&report.queries) {
            let expected = standalone(q, DOC);
            assert_eq!(run.output, expected);
            let r = run.report.as_ref().unwrap();
            assert_eq!(r.buffer.live, 0, "worker buffer must drain");
        }
        assert!(report.tokens > 0);
        assert!(report.share_factor() > 1.0, "4 queries must share the scan");
    }

    #[test]
    fn single_query_batch_works() {
        let queries = compile(&["for $b in /bib/book return $b/title"]);
        let report = run_batch(&queries, DOC.as_bytes()).unwrap();
        assert_eq!(report.queries[0].output, standalone(&queries[0], DOC));
    }

    #[test]
    fn empty_batch_scans_input() {
        let report = run_batch(&[], DOC.as_bytes()).unwrap();
        assert!(report.queries.is_empty());
        assert_eq!(report.tokens, 15);
    }

    #[test]
    fn malformed_input_fails_the_batch() {
        let queries = compile(&["for $b in /bib/book return $b"]);
        let err = run_batch(&queries, "<bib><book></bib>".as_bytes());
        assert!(err.is_err(), "mismatched tags must fail the whole batch");
    }

    #[test]
    fn telemetry_flows_into_worker_reports() {
        let queries = compile(&["for $b in /bib/book return $b/title"]);
        let opts = BatchOptions {
            telemetry: true,
            ..BatchOptions::default()
        };
        let report = SharedRun::new(opts).run(&queries, DOC.as_bytes()).unwrap();
        let run = &report.queries[0];
        assert_eq!(run.output, standalone(&queries[0], DOC));
        let r = run.report.as_ref().unwrap();
        assert!(r.obs.is_some(), "telemetry must reach the worker engines");
        assert!(report.to_json().contains("\"obs\""));
    }

    #[test]
    fn json_report_shape() {
        let queries = compile(&["for $b in /bib/book return $b/title"]);
        let report = run_batch(&queries, DOC.as_bytes()).unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"share_factor\""));
        assert!(json.contains("\"per_query\""));
    }
}
