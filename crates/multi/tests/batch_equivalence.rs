//! The acceptance bar of the shared-stream subsystem: a batch of distinct
//! XMark queries evaluated by `gcx-multi` in ONE pass must produce output
//! **byte-identical** to running each query standalone, while every
//! worker's buffer drains (role/signOff balance is preserved through the
//! fan-out).

use gcx_core::{CompiledQuery, EngineOptions};
use gcx_multi::{run_batch, BatchOptions, SharedRun};
use gcx_xmark::{generate_string, queries, XmarkConfig};

/// Ten distinct XMark-adapted queries (the five Figure 5 queries plus the
/// extension set) and the aggregation extension — eleven total.
fn batch_texts() -> Vec<(&'static str, &'static str)> {
    let mut v: Vec<(&str, &str)> = queries::FIGURE5_QUERIES.to_vec();
    v.extend(queries::extra::ALL);
    v.push(("Q6_COUNT", queries::Q6_COUNT));
    v
}

fn compile_batch() -> Vec<CompiledQuery> {
    batch_texts()
        .iter()
        .map(|(name, text)| CompiledQuery::compile(text).unwrap_or_else(|e| panic!("{name}: {e}")))
        .collect()
}

fn standalone(q: &CompiledQuery, doc: &str) -> (Vec<u8>, gcx_core::RunReport) {
    let mut out = Vec::new();
    let report = gcx_core::run(q, &EngineOptions::gcx(), doc.as_bytes(), &mut out).unwrap();
    (out, report)
}

#[test]
fn eleven_xmark_queries_byte_identical_to_standalone() {
    let doc = generate_string(&XmarkConfig::sized(128 * 1024));
    let queries = compile_batch();
    assert!(queries.len() >= 8, "acceptance requires a batch of >= 8");

    let report = run_batch(&queries, doc.as_bytes()).unwrap();
    assert_eq!(report.queries.len(), queries.len());

    for ((name, _), (q, run)) in batch_texts()
        .iter()
        .zip(queries.iter().zip(&report.queries))
    {
        let (expected, exp_report) = standalone(q, &doc);
        let got = run
            .report
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            run.output, expected,
            "{name}: shared-stream output differs from standalone"
        );
        assert_eq!(got.buffer.live, 0, "{name}: worker buffer must drain");
        // Buffer minimality is preserved per query: the worker's peak
        // equals the standalone GCX peak (same nodes, same roles, same
        // signOff execution).
        assert_eq!(
            got.buffer.peak_live, exp_report.buffer.peak_live,
            "{name}: shared-stream peak buffer differs from standalone GCX"
        );
    }
    assert!(
        report.share_factor() > 2.0,
        "11 sparse queries must amortize the scan (got {:.2})",
        report.share_factor()
    );
}

#[test]
fn tiny_channels_still_correct() {
    // Backpressure path: a 2-event channel forces constant driver/worker
    // handoff without deadlock or reordering.
    let doc = generate_string(&XmarkConfig::sized(16 * 1024));
    let queries: Vec<CompiledQuery> = [queries::Q1, queries::Q13, queries::extra::Q17]
        .iter()
        .map(|t| CompiledQuery::compile(t).unwrap())
        .collect();
    let driver = SharedRun::new(BatchOptions {
        channel_capacity: 2,
        ..BatchOptions::default()
    });
    let report = driver.run(&queries, doc.as_bytes()).unwrap();
    for (q, run) in queries.iter().zip(&report.queries) {
        assert_eq!(run.output, standalone(q, &doc).0);
    }
}

#[test]
fn duplicate_queries_in_one_batch() {
    // The same query twice must produce the same bytes twice — tags keep
    // the copies fully independent.
    let doc = generate_string(&XmarkConfig::sized(16 * 1024));
    let q = CompiledQuery::compile(queries::Q20).unwrap();
    let batch = vec![q.clone(), q.clone()];
    let report = run_batch(&batch, doc.as_bytes()).unwrap();
    let expected = standalone(&q, &doc).0;
    assert_eq!(report.queries[0].output, expected);
    assert_eq!(report.queries[1].output, expected);
}

#[test]
fn join_query_in_a_batch() {
    // Q8's inner loop re-runs over a different document section per
    // person; its query-end signOff anchoring must survive the fan-out.
    let doc = generate_string(&XmarkConfig::sized(32 * 1024));
    let batch: Vec<CompiledQuery> = [queries::Q8, queries::Q1]
        .iter()
        .map(|t| CompiledQuery::compile(t).unwrap())
        .collect();
    let report = run_batch(&batch, doc.as_bytes()).unwrap();
    for (q, run) in batch.iter().zip(&report.queries) {
        assert_eq!(run.output, standalone(q, &doc).0);
        assert_eq!(run.report.as_ref().unwrap().buffer.live, 0);
    }
}

#[test]
fn prepared_plan_reuses_compilation_across_documents() {
    // The repeated-batch fast path: prepare the merged NFA + symbol
    // table once, then run several distinct documents through the same
    // plan. Every run must be byte-identical to the compile-per-run
    // path (and to standalone), including with a schema attached.
    let queries = compile_batch();
    let run = SharedRun::new(BatchOptions::default());
    let plan = run.prepare(&queries);
    assert_eq!(plan.n_queries(), queries.len());
    for (kb, seed) in [(16u64, 1u64), (48, 2), (96, 3)] {
        let mut cfg = XmarkConfig::sized(kb * 1024);
        cfg.seed = seed;
        let doc = generate_string(&cfg);
        let prepared = run.run_prepared(&plan, &queries, doc.as_bytes()).unwrap();
        let fresh = run.run(&queries, doc.as_bytes()).unwrap();
        for (i, ((name, _), p)) in batch_texts().iter().zip(&prepared.queries).enumerate() {
            let f = &fresh.queries[i];
            assert_eq!(
                p.output, f.output,
                "{name} @ {kb}KB: prepared-plan output differs from compile-per-run"
            );
            assert_eq!(p.output, standalone(&queries[i], &doc).0);
            assert_eq!(
                p.report.as_ref().unwrap().buffer.peak_live,
                f.report.as_ref().unwrap().buffer.peak_live,
                "{name}: prepared-plan buffer peak drifted"
            );
        }
        assert_eq!(prepared.tokens, fresh.tokens);
    }

    // Schema-aware plans share the pruned automaton + reach filter too.
    let schema_run = SharedRun::new(BatchOptions {
        schema: Some(gcx_schema::Dtd::xmark()),
        ..BatchOptions::default()
    });
    let plan = schema_run.prepare(&queries);
    let doc = generate_string(&XmarkConfig::sized(64 * 1024));
    let prepared = schema_run
        .run_prepared(&plan, &queries, doc.as_bytes())
        .unwrap();
    let fresh = schema_run.run(&queries, doc.as_bytes()).unwrap();
    for ((name, _), (p, f)) in batch_texts()
        .iter()
        .zip(prepared.queries.iter().zip(&fresh.queries))
    {
        assert_eq!(p.output, f.output, "{name}: schema prepared-plan differs");
    }
}
