//! Randomized property tests for matcher merging (satellite of the
//! shared-stream subsystem): for every query in a batch, the
//! [`MergedMatcher`]'s outcome restricted to that query's tag must equal
//! the standalone [`StreamMatcher`] outcome — keep/skip decisions, role
//! assignments, and descendant-axis role *multiplicities*.
//!
//! Built on the in-tree `rand` shim (the external `proptest` crate is
//! unavailable offline); deterministic seeds keep failures reproducible.

use gcx_core::CompiledQuery;
use gcx_multi::{run_batch, MergedMatcher};
use gcx_projection::{CompiledPaths, StreamMatcher};
use gcx_xml::SymbolTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Query pool over a small tag alphabet; all inside the GCX fragment, with
/// deliberate overlap (shared prefixes, descendant axes, predicates) so
/// merging actually has to disentangle them.
const POOL: [&str; 10] = [
    "for $x in /a/b return $x",
    "for $x in /a/b/c return $x/text()",
    "for $x in //c return $x",
    "for $x in /a/*/d return $x",
    "for $x in /a/b[2] return $x",
    "for $x in //b//c return $x",
    "for $x in /a return $x/text()",
    "<r>{ for $x in /a/b return if (exists($x/c)) then $x/c else () }</r>",
    "for $x in /a/c/text() return $x",
    "'no input at all'",
];

// ---- random documents -------------------------------------------------------

#[derive(Debug)]
enum Node {
    Elem {
        name: &'static str,
        children: Vec<Node>,
    },
    Text,
}

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];

fn gen_tree(rng: &mut StdRng, depth: u32) -> Node {
    let name = TAGS[rng.gen_range(0..TAGS.len())];
    let n_children = if depth >= 4 { 0 } else { rng.gen_range(0..4) };
    let children = (0..n_children)
        .map(|_| {
            if rng.gen_bool(0.25) {
                Node::Text
            } else {
                gen_tree(rng, depth + 1)
            }
        })
        .collect();
    Node::Elem { name, children }
}

fn to_xml(node: &Node, out: &mut String) {
    match node {
        Node::Elem { name, children } => {
            out.push_str(&format!("<{name}>"));
            for c in children {
                to_xml(c, out);
            }
            out.push_str(&format!("</{name}>"));
        }
        Node::Text => out.push('t'),
    }
}

// ---- matcher-level equivalence ----------------------------------------------

/// One standalone matcher with its skip bookkeeping.
struct Solo {
    m: StreamMatcher,
    skip: u32,
}

/// Recursive lockstep walk: feed the element tree to the merged matcher
/// and to every standalone matcher, asserting per-query agreement at each
/// step.
fn walk(node: &Node, merged: &mut MergedMatcher, solos: &mut [Solo], sy: &mut SymbolTable) {
    let Node::Elem { name, children } = node else {
        // Text: roles restricted per tag must match each standalone text().
        let tagged: Vec<(u32, gcx_query::ast::RoleId, u32)> = merged.text().to_vec();
        for (qi, solo) in solos.iter_mut().enumerate() {
            if solo.skip > 0 {
                assert!(
                    !tagged.iter().any(|&(t, _, _)| t as usize == qi),
                    "q{qi}: merged assigns text roles inside a skipped region"
                );
                continue;
            }
            let mine: Vec<_> = tagged
                .iter()
                .filter(|&&(t, _, _)| t as usize == qi)
                .map(|&(_, r, c)| (r, c))
                .collect();
            assert_eq!(mine, solo.m.text(), "q{qi}: text roles diverge");
        }
        return;
    };
    let name_sym = sy.intern(name);

    // Standalone decisions first (separate matchers, separate skip state).
    let mut solo_keep = vec![false; solos.len()];
    let mut solo_roles: Vec<Vec<(gcx_query::ast::RoleId, u32)>> = vec![Vec::new(); solos.len()];
    for (qi, solo) in solos.iter_mut().enumerate() {
        if solo.skip > 0 {
            solo.skip += 1;
            continue;
        }
        let o = solo.m.enter_element(name_sym);
        solo_keep[qi] = o.keep;
        solo_roles[qi] = o.roles;
    }

    // Merged decision.
    let outcome = merged.enter_element(name_sym);
    let any_keep = outcome.any_keep;
    let kept = outcome.kept.clone();
    let expected_any = solo_keep.iter().any(|&k| k);
    assert_eq!(
        any_keep, expected_any,
        "merged keep != OR(standalone keeps)"
    );
    for (qi, solo) in solos.iter().enumerate() {
        if solo.skip > 0 {
            continue; // entered above; kept[qi] is false by construction
        }
        if any_keep {
            assert_eq!(kept[qi], solo_keep[qi], "q{qi}: keep diverges on <{name}>");
            assert_eq!(
                merged.roles_of(qi as u32),
                solo_roles[qi],
                "q{qi}: roles diverge on <{name}>"
            );
        }
    }

    if any_keep {
        // Mark newly-skipping solos (they just declined this element).
        for (qi, solo) in solos.iter_mut().enumerate() {
            if solo.skip == 0 && !solo_keep[qi] {
                solo.skip = 1;
            }
        }
        for c in children {
            walk(c, merged, solos, sy);
        }
        merged.leave_element();
        for (qi, solo) in solos.iter_mut().enumerate() {
            if solo.skip > 0 {
                solo.skip -= 1;
            } else {
                assert!(solo_keep[qi]);
                solo.m.leave_element();
            }
        }
    } else {
        // Nobody descends. Rewind the solo skip counters bumped above.
        for (qi, solo) in solos.iter_mut().enumerate() {
            if solo.skip > 0 {
                solo.skip -= 1;
            } else {
                assert!(!solo_keep[qi], "solo kept but merged skipped");
            }
        }
    }
}

#[test]
fn merged_matcher_equals_standalone_matchers() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..300 {
        // Random batch of 1..=4 queries from the pool (duplicates allowed).
        let n = rng.gen_range(1..5usize);
        let texts: Vec<&str> = (0..n).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect();
        let queries: Vec<CompiledQuery> = texts
            .iter()
            .map(|t| CompiledQuery::compile(t).unwrap())
            .collect();

        let mut sy = SymbolTable::new();
        let (mut merged, _) = MergedMatcher::build(&queries, &mut sy);
        let mut solos: Vec<Solo> = queries
            .iter()
            .map(|q| {
                let paths = CompiledPaths::compile(&q.analysis.roles, &mut sy);
                let (m, _) = StreamMatcher::new(&paths);
                Solo { m, skip: 0 }
            })
            .collect();

        let tree = gen_tree(&mut rng, 0);
        walk(&tree, &mut merged, &mut solos, &mut sy);
        assert_eq!(merged.depth(), 0, "round {round}: unbalanced walk");
    }
}

// ---- end-to-end randomized equivalence --------------------------------------

#[test]
fn random_batches_byte_identical_end_to_end() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for round in 0..120 {
        let n = rng.gen_range(1..5usize);
        let texts: Vec<&str> = (0..n).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect();
        let queries: Vec<CompiledQuery> = texts
            .iter()
            .map(|t| CompiledQuery::compile(t).unwrap())
            .collect();
        let mut doc = String::new();
        to_xml(&gen_tree(&mut rng, 0), &mut doc);

        let report = run_batch(&queries, doc.as_bytes())
            .unwrap_or_else(|e| panic!("round {round}: batch failed: {e}\ndoc: {doc}"));
        for (qi, (q, run)) in queries.iter().zip(&report.queries).enumerate() {
            let mut expected = Vec::new();
            gcx_core::run(
                q,
                &gcx_core::EngineOptions::gcx(),
                doc.as_bytes(),
                &mut expected,
            )
            .unwrap();
            assert_eq!(
                run.output, expected,
                "round {round} q{qi} ({}) diverges\ndoc: {doc}",
                texts[qi]
            );
            assert_eq!(run.report.as_ref().unwrap().buffer.live, 0);
        }
    }
}
