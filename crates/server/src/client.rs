//! A minimal blocking HTTP/1.1 client for the loopback tests and the
//! `gcx bench serve` load generator.
//!
//! The one non-trivial property: the request body is written from a
//! scoped thread while the response is read on the caller's thread. The
//! eval endpoint streams its result *while the document is still
//! arriving*, so a client that sends everything before reading anything
//! would deadlock with the server once both TCP windows fill.

use crate::http::{read_line, BodyReader, MAX_HEAD_BYTES};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully received response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The whole body.
    pub body: Vec<u8>,
    /// Chunked trailers, names lowercased (the eval stats live here).
    pub trailers: Vec<(String, String)>,
}

impl Response {
    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of trailer `name` (lowercase).
    pub fn trailer(&self, name: &str) -> Option<&str> {
        self.trailers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse a numeric trailer (the `X-Gcx-*` measurements).
    pub fn trailer_u64(&self, name: &str) -> Option<u64> {
        self.trailer(name)?.parse().ok()
    }
}

/// How to put the request body on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyMode {
    /// `Content-Length` framing.
    Sized,
    /// Chunked transfer-encoding, split into `chunk_size`-byte chunks.
    Chunked {
        /// Bytes per chunk.
        chunk_size: usize,
    },
}

/// One request/response exchange on a fresh connection, with the default
/// control-plane read timeout (2 minutes).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    mode: BodyMode,
) -> io::Result<Response> {
    request_with_timeout(
        addr,
        method,
        path,
        headers,
        body,
        mode,
        Duration::from_secs(120),
    )
}

/// [`request`] with an explicit socket read timeout. The eval endpoint
/// streams results of heavyweight queries (`gcx bench serve` holds N
/// concurrent XMark Q8 evaluations on one loopback server), so its reads
/// legitimately stall far longer than any control-plane exchange.
#[allow(clippy::too_many_arguments)]
pub fn request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    mode: BodyMode,
    read_timeout: Duration,
) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(read_timeout)).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::with_capacity(64 * 1024, stream);

    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: gcx\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    match mode {
        BodyMode::Sized => head.push_str(&format!("Content-Length: {}\r\n", body.len())),
        BodyMode::Chunked { .. } => head.push_str("Transfer-Encoding: chunked\r\n"),
    }
    head.push_str("Connection: close\r\n\r\n");

    std::thread::scope(|scope| -> io::Result<Response> {
        let send = scope.spawn(move || -> io::Result<()> {
            writer.write_all(head.as_bytes())?;
            match mode {
                BodyMode::Sized => writer.write_all(body)?,
                BodyMode::Chunked { chunk_size } => {
                    for chunk in body.chunks(chunk_size.max(1)) {
                        write!(writer, "{:x}\r\n", chunk.len())?;
                        writer.write_all(chunk)?;
                        writer.write_all(b"\r\n")?;
                    }
                    writer.write_all(b"0\r\n\r\n")?;
                }
            }
            writer.flush()
        });
        let response = read_response(&mut reader);
        // A response can arrive while the body is still in flight (an
        // early rejection); the writer then dies on a broken pipe, which
        // is expected and must not mask the response.
        let sent = send.join().expect("sender panicked");
        match response {
            Ok(r) => Ok(r),
            Err(e) => {
                sent?;
                Err(e)
            }
        }
    })
}

/// Read a complete response (head, body, trailers) off the connection.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<Response> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut line = loop {
        let line = read_line(reader, MAX_HEAD_BYTES)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no response"))?;
        let text = String::from_utf8(line).map_err(|_| bad("non-UTF-8 status line".into()))?;
        // Skip interim responses (100 Continue).
        if text.starts_with("HTTP/1.1 100") || text.starts_with("HTTP/1.0 100") {
            let blank = read_line(reader, MAX_HEAD_BYTES)?;
            if blank.as_deref() != Some(b"".as_slice()) {
                return Err(bad("malformed 100 Continue".into()));
            }
            continue;
        }
        break text;
    };
    if !line.starts_with("HTTP/1.") || line.len() < 12 {
        return Err(bad(format!("bad status line {line:?}")));
    }
    line = line.split_off(9); // strip "HTTP/1.x "
    let status: u16 = line
        .split(' ')
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| bad(format!("bad status in {line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, MAX_HEAD_BYTES)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF in headers"))?;
        if line.is_empty() {
            break;
        }
        let line = String::from_utf8(line).map_err(|_| bad("non-UTF-8 header".into()))?;
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let mut body = Vec::new();
    let mut trailers = Vec::new();
    if find("transfer-encoding").is_some_and(|v| v.to_ascii_lowercase().contains("chunked")) {
        let mut r = BodyReader::chunked(reader);
        r.read_to_end(&mut body)?;
        trailers = r.take_trailers();
    } else if let Some(len) = find("content-length") {
        let len: u64 = len
            .parse()
            .map_err(|_| bad(format!("bad content-length {len:?}")))?;
        let mut r = BodyReader::sized(reader, len);
        r.read_to_end(&mut body)?;
    } else {
        // No framing: body runs to connection close.
        reader.read_to_end(&mut body)?;
    }
    Ok(Response {
        status,
        headers,
        body,
        trailers,
    })
}

/// `GET path` convenience.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, &[], b"", BodyMode::Sized)
}

/// `PUT /queries/{name}` convenience.
pub fn put_query(addr: SocketAddr, name: &str, query: &str) -> io::Result<Response> {
    request(
        addr,
        "PUT",
        &format!("/queries/{name}"),
        &[],
        query.as_bytes(),
        BodyMode::Sized,
    )
}

/// `POST /eval/{name}` convenience.
pub fn eval(
    addr: SocketAddr,
    name: &str,
    doc: &[u8],
    headers: &[(&str, &str)],
    mode: BodyMode,
) -> io::Result<Response> {
    // Eval responses stream while heavyweight queries evaluate: give them
    // the long leash, not the control-plane default.
    request_with_timeout(
        addr,
        "POST",
        &format!("/eval/{name}"),
        headers,
        doc,
        mode,
        Duration::from_secs(600),
    )
}
