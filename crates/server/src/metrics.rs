//! `GET /metrics`: Prometheus text exposition (format 0.0.4) for the
//! service, hand-rolled on [`gcx_obs::prom`]. Counters come straight
//! from [`ServerStats`]; the histograms here (request latency by
//! outcome class, admission wait, per-eval buffer peaks) are this
//! module's own — fixed-bucket relaxed atomics allocated once at server
//! startup, so recording costs a couple of `fetch_add`s per request.

use crate::stats::ServerStats;
use gcx_obs::{prom, AtomicHist, BYTE_BUCKETS, LATENCY_US_BUCKETS};
use std::time::Duration;

/// Histograms the `/stats` counters can't express: distributions, not
/// sums. One instance lives in the server's shared state.
pub(crate) struct ServerMetrics {
    /// Wall-clock request handling time, µs, for 2xx/3xx responses.
    latency_2xx: AtomicHist,
    /// Same, 4xx responses.
    latency_4xx: AtomicHist,
    /// Same, 5xx responses.
    latency_5xx: AtomicHist,
    /// Time a connection waited in the admission queue before a worker
    /// picked it up, µs — queueing delay the client can't otherwise see.
    pub admission_wait_us: AtomicHist,
    /// Peak buffer bytes of each successful eval (the paper's headline
    /// number, as a distribution rather than a single watermark).
    pub eval_peak_buffer_bytes: AtomicHist,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            latency_2xx: AtomicHist::new(LATENCY_US_BUCKETS),
            latency_4xx: AtomicHist::new(LATENCY_US_BUCKETS),
            latency_5xx: AtomicHist::new(LATENCY_US_BUCKETS),
            admission_wait_us: AtomicHist::new(LATENCY_US_BUCKETS),
            eval_peak_buffer_bytes: AtomicHist::new(BYTE_BUCKETS),
        }
    }
}

impl ServerMetrics {
    /// Record one completed request. `status` 0 means no response was
    /// written (peer vanished mid-request) — nothing to classify.
    pub fn observe_request(&self, status: u16, micros: u64) {
        let hist = match status {
            0 => return,
            200..=399 => &self.latency_2xx,
            500..=599 => &self.latency_5xx,
            _ => &self.latency_4xx,
        };
        hist.observe(micros);
    }
}

/// Render the whole exposition document. `per_query` is the sorted
/// (name, eval-count) list from the registry.
#[allow(clippy::too_many_arguments)]
pub(crate) fn render(
    metrics: &ServerMetrics,
    stats: &ServerStats,
    uptime: Duration,
    workers: usize,
    queue_len: usize,
    queue_limit: usize,
    queries: usize,
    per_query: &[(String, u64)],
) -> String {
    let mut out = String::with_capacity(4096);

    prom::preamble(
        &mut out,
        "gcx_uptime_seconds",
        "Seconds since the service started",
        "gauge",
    );
    prom::sample_f64(&mut out, "gcx_uptime_seconds", &[], uptime.as_secs_f64());

    prom::preamble(&mut out, "gcx_workers", "Worker thread count", "gauge");
    prom::sample(&mut out, "gcx_workers", &[], workers as u64);
    prom::preamble(
        &mut out,
        "gcx_workers_busy",
        "Workers currently serving a connection",
        "gauge",
    );
    prom::sample(&mut out, "gcx_workers_busy", &[], stats.in_flight.get());

    prom::preamble(
        &mut out,
        "gcx_admission_queue_depth",
        "Accepted connections waiting for a worker",
        "gauge",
    );
    prom::sample(&mut out, "gcx_admission_queue_depth", &[], queue_len as u64);
    prom::preamble(
        &mut out,
        "gcx_admission_queue_limit",
        "Admission queue capacity (beyond this, 503)",
        "gauge",
    );
    prom::sample(
        &mut out,
        "gcx_admission_queue_limit",
        &[],
        queue_limit as u64,
    );

    prom::preamble(
        &mut out,
        "gcx_requests_total",
        "Completed requests by status class",
        "counter",
    );
    for (label, hist) in [
        ("2xx", &metrics.latency_2xx),
        ("4xx", &metrics.latency_4xx),
        ("5xx", &metrics.latency_5xx),
    ] {
        prom::sample(
            &mut out,
            "gcx_requests_total",
            &[("outcome", label)],
            hist.count(),
        );
    }
    prom::preamble(
        &mut out,
        "gcx_request_duration_microseconds",
        "Request handling wall time by status class",
        "histogram",
    );
    for (label, hist) in [
        ("2xx", &metrics.latency_2xx),
        ("4xx", &metrics.latency_4xx),
        ("5xx", &metrics.latency_5xx),
    ] {
        hist.render_prom(
            &mut out,
            "gcx_request_duration_microseconds",
            &[("outcome", label)],
        );
    }

    prom::preamble(
        &mut out,
        "gcx_admission_wait_microseconds",
        "Time connections spent queued before a worker picked them up",
        "histogram",
    );
    metrics
        .admission_wait_us
        .render_prom(&mut out, "gcx_admission_wait_microseconds", &[]);

    for (name, help, value) in [
        (
            "gcx_accepted_total",
            "Connections accepted (admitted or 503-rejected)",
            stats.accepted.get(),
        ),
        (
            "gcx_rejected_busy_total",
            "Connections rejected 503 (admission queue full)",
            stats.rejected_busy.get(),
        ),
        (
            "gcx_rejected_buffer_total",
            "Evals rejected 413 (buffer budget exceeded)",
            stats.rejected_buffer.get(),
        ),
        (
            "gcx_client_errors_total",
            "Other 4xx responses",
            stats.client_errors.get(),
        ),
        (
            "gcx_server_errors_total",
            "5xx responses",
            stats.server_errors.get(),
        ),
        (
            "gcx_queries_compiled_total",
            "Query compilations performed by PUT /queries",
            stats.queries_compiled.get(),
        ),
        (
            "gcx_eval_runs_total",
            "Successful eval runs",
            stats.eval_runs.get(),
        ),
        (
            "gcx_eval_tokens_total",
            "Structural tokens processed by successful evals",
            stats.eval_tokens.get(),
        ),
        (
            "gcx_eval_purged_nodes_total",
            "Buffer nodes purged by successful evals",
            stats.eval_purged.get(),
        ),
        (
            "gcx_eval_output_bytes_total",
            "Result bytes streamed by successful evals",
            stats.eval_output_bytes.get(),
        ),
        (
            "gcx_eval_early_scan_ends_total",
            "Schema-driven early child-scan terminations in successful evals",
            stats.eval_early_scan_ends.get(),
        ),
        (
            "gcx_eval_early_signoffs_total",
            "Schema-driven early sign-offs in successful evals",
            stats.eval_early_signoffs.get(),
        ),
    ] {
        prom::preamble(&mut out, name, help, "counter");
        prom::sample(&mut out, name, &[], value);
    }

    prom::preamble(
        &mut out,
        "gcx_queries_registered",
        "Queries currently in the registry",
        "gauge",
    );
    prom::sample(&mut out, "gcx_queries_registered", &[], queries as u64);

    prom::preamble(
        &mut out,
        "gcx_query_evals_total",
        "Successful evals per registered query",
        "counter",
    );
    for (name, evals) in per_query {
        prom::sample(
            &mut out,
            "gcx_query_evals_total",
            &[("query", name)],
            *evals,
        );
    }

    prom::preamble(
        &mut out,
        "gcx_eval_peak_buffer_bytes",
        "Per-eval peak buffer occupancy in bytes",
        "histogram",
    );
    metrics
        .eval_peak_buffer_bytes
        .render_prom(&mut out, "gcx_eval_peak_buffer_bytes", &[]);
    prom::preamble(
        &mut out,
        "gcx_eval_peak_buffer_bytes_max",
        "High watermark of any single eval's peak buffer bytes",
        "gauge",
    );
    prom::sample(
        &mut out,
        "gcx_eval_peak_buffer_bytes_max",
        &[],
        stats.eval_peak_buffer_bytes.get(),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_well_formed() {
        let metrics = ServerMetrics::default();
        metrics.observe_request(200, 1500);
        metrics.observe_request(404, 80);
        metrics.observe_request(500, 9);
        metrics.observe_request(0, 1); // dropped connection: not recorded
        metrics.admission_wait_us.observe(42);
        metrics.eval_peak_buffer_bytes.observe(4096);
        let stats = ServerStats::default();
        stats.accepted.bump();
        let per_query = vec![("q\"1".to_string(), 3u64)];
        let text = render(
            &metrics,
            &stats,
            Duration::from_secs(7),
            4,
            1,
            64,
            1,
            &per_query,
        );
        // Every non-comment line is `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty(), "{line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
        }
        assert!(text.contains("gcx_requests_total{outcome=\"2xx\"} 1"));
        assert!(text.contains("gcx_requests_total{outcome=\"4xx\"} 1"));
        assert!(text.contains("gcx_requests_total{outcome=\"5xx\"} 1"));
        assert!(text.contains("gcx_query_evals_total{query=\"q\\\"1\"} 3"));
        assert!(text
            .contains("gcx_request_duration_microseconds_bucket{outcome=\"2xx\",le=\"+Inf\"} 1"));
        assert!(text.contains("gcx_admission_wait_microseconds_count 1"));
        assert!(text.contains("gcx_eval_peak_buffer_bytes_sum 4096"));
    }
}
