//! Minimal HTTP/1.1 plumbing on `std` alone: request-head parsing,
//! streaming body readers (`Content-Length` and chunked transfer-encoding),
//! and chunked response writing with trailers.
//!
//! This is deliberately not a general HTTP implementation — it covers
//! exactly what the GCX service needs, with the property the service is
//! built around: **bodies are never materialized**. The eval path borrows
//! request-body bytes straight out of the connection buffer through
//! [`BodyReader::fill`]/[`BodyReader::consume`] (push mode — the handler
//! feeds them to the sans-IO engine session; no `Read` adapter wraps the
//! body) and writes the result through [`DeferredBody`] (chunked output
//! that starts flowing while the document is still arriving), so a
//! request's resident memory is the GCX buffer, not the document. The
//! `io::Read` impl on [`BodyReader`] remains for small bodies (query
//! registration) and best-effort drains.

use std::cell::Cell;
use std::io::{self, BufRead, Read, Write};

thread_local! {
    /// Status of the last response this thread started writing (0 =
    /// none). Workers serve one request at a time, so recording the
    /// status at the write site and reading it back in the connection
    /// loop classifies the outcome without threading a status code
    /// through every handler signature.
    static LAST_STATUS: Cell<u16> = const { Cell::new(0) };
}

/// Take (and reset) the last status this thread wrote.
pub(crate) fn take_last_status() -> u16 {
    LAST_STATUS.with(|c| c.replace(0))
}

fn note_status(status: u16) {
    LAST_STATUS.with(|c| c.set(status));
}

/// Upper bound on the request line + headers, total.
pub const MAX_HEAD_BYTES: usize = 32 * 1024;

/// Upper bound on a chunked body's whole trailer section.
pub const MAX_TRAILER_BYTES: usize = 8 * 1024;

/// A parsed request line plus headers (names lowercased).
#[derive(Debug)]
pub struct RequestHead {
    /// Request method, uppercase (`GET`, `PUT`, ...).
    pub method: String,
    /// Request target as sent (path only; no scheme/authority support).
    pub target: String,
    /// `HTTP/1.1` or `HTTP/1.0`.
    pub version: String,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// First value of the header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange
    /// (HTTP/1.1 defaults to keep-alive, 1.0 to close).
    pub fn keep_alive(&self) -> bool {
        let conn = self.header("connection").unwrap_or("");
        if self.version == "HTTP/1.0" {
            conn.eq_ignore_ascii_case("keep-alive")
        } else {
            !conn.eq_ignore_ascii_case("close")
        }
    }

    /// Whether the client asked for a `100 Continue` before sending the
    /// body (curl does for large uploads).
    pub fn expects_continue(&self) -> bool {
        self.header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read one CRLF- (or LF-)terminated line without the terminator, bounded
/// by `limit` bytes. `Ok(None)` on clean EOF before any byte.
pub(crate) fn read_line<R: BufRead>(r: &mut R, limit: usize) -> io::Result<Option<Vec<u8>>> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            };
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            // The limit must hold however the bytes were fragmented: a
            // line that fits in one buffered chunk is no more welcome
            // than one that arrived split.
            if line.len() + pos > limit {
                return Err(bad_data("header line too long"));
            }
            line.extend_from_slice(&buf[..pos]);
            r.consume(pos + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(line));
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        r.consume(n);
        if line.len() > limit {
            return Err(bad_data("header line too long"));
        }
    }
}

/// Parse a request head off the connection. `Ok(None)` when the peer
/// closed the connection cleanly between requests (keep-alive end).
pub fn read_request_head<R: BufRead>(r: &mut R) -> io::Result<Option<RequestHead>> {
    let Some(line) = read_line(r, MAX_HEAD_BYTES)? else {
        return Ok(None);
    };
    let line = String::from_utf8(line).map_err(|_| bad_data("non-UTF-8 request line"))?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
            (m.to_ascii_uppercase(), t.to_string(), v.to_string())
        }
        _ => return Err(bad_data(format!("malformed request line: {line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad_data(format!("unsupported HTTP version {version:?}")));
    }
    let mut headers = Vec::new();
    let mut budget = MAX_HEAD_BYTES;
    loop {
        let line = read_line(r, budget)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF in headers"))?;
        if line.is_empty() {
            break;
        }
        budget = budget.saturating_sub(line.len());
        if budget == 0 {
            return Err(bad_data("request head too large"));
        }
        let line = String::from_utf8(line).map_err(|_| bad_data("non-UTF-8 header"))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_data(format!("malformed header: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Some(RequestHead {
        method,
        target,
        version,
        headers,
    }))
}

/// How the request body is framed on the wire.
#[derive(Debug)]
enum BodyKind {
    Empty,
    Sized {
        remaining: u64,
    },
    Chunked {
        remaining: u64,
        /// Before the first chunk-size line (which has no preceding CRLF).
        first: bool,
        done: bool,
    },
}

/// Streaming body reader: an `io::Read` over the message body that stops
/// exactly at the body's end, leaving the connection positioned at the
/// next request. Chunked trailers are collected (the client side reads
/// the engine's stats out of them).
pub struct BodyReader<'a, R: BufRead> {
    inner: &'a mut R,
    kind: BodyKind,
    trailers: Vec<(String, String)>,
    /// Set once any read fails: the stream is desynchronized and further
    /// reads (e.g. a best-effort drain) would only stall on the socket.
    poisoned: bool,
}

impl<'a, R: BufRead> BodyReader<'a, R> {
    /// Body framing from a request head (RFC 9112 §6: chunked wins over
    /// Content-Length; neither means no body).
    pub fn for_request(head: &RequestHead, inner: &'a mut R) -> io::Result<BodyReader<'a, R>> {
        if head
            .header("transfer-encoding")
            .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
        {
            return Ok(BodyReader::chunked(inner));
        }
        match head.header("content-length") {
            Some(v) => {
                let n: u64 = v
                    .parse()
                    .map_err(|_| bad_data(format!("bad Content-Length {v:?}")))?;
                Ok(BodyReader::sized(inner, n))
            }
            None => Ok(BodyReader {
                inner,
                kind: BodyKind::Empty,
                trailers: Vec::new(),
                poisoned: false,
            }),
        }
    }

    /// A body of exactly `len` bytes.
    pub fn sized(inner: &'a mut R, len: u64) -> BodyReader<'a, R> {
        BodyReader {
            inner,
            kind: BodyKind::Sized { remaining: len },
            trailers: Vec::new(),
            poisoned: false,
        }
    }

    /// A chunked-transfer-encoded body.
    pub fn chunked(inner: &'a mut R) -> BodyReader<'a, R> {
        BodyReader {
            inner,
            kind: BodyKind::Chunked {
                remaining: 0,
                first: true,
                done: false,
            },
            trailers: Vec::new(),
            poisoned: false,
        }
    }

    /// True once a read has failed — the remaining body is unreadable and
    /// must not be drained or reused.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Trailer fields (chunked bodies only), available after EOF.
    pub fn take_trailers(&mut self) -> Vec<(String, String)> {
        std::mem::take(&mut self.trailers)
    }

    /// True once the whole body (and, for chunked, its trailers) has been
    /// consumed — the connection is reusable for the next request.
    pub fn fully_consumed(&self) -> bool {
        match self.kind {
            BodyKind::Empty => true,
            BodyKind::Sized { remaining } => remaining == 0,
            BodyKind::Chunked { done, .. } => done,
        }
    }

    /// Parse the next chunk-size line; returns the chunk length.
    fn next_chunk(&mut self, first: bool) -> io::Result<u64> {
        if !first {
            // The CRLF that terminates the previous chunk's data.
            let sep = read_line(self.inner, 16)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF in chunk"))?;
            if !sep.is_empty() {
                return Err(bad_data("missing CRLF after chunk data"));
            }
        }
        let line = read_line(self.inner, 1024)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF in chunk size"))?;
        let line = String::from_utf8(line).map_err(|_| bad_data("non-UTF-8 chunk size"))?;
        let size = line.split(';').next().unwrap_or("").trim();
        u64::from_str_radix(size, 16).map_err(|_| bad_data(format!("bad chunk size {size:?}")))
    }

    /// Consume trailer lines after the terminal chunk. The whole trailer
    /// section shares one byte budget: the server never *uses* request
    /// trailers, so an uncapped section would be free memory growth for
    /// any client.
    fn read_trailers(&mut self) -> io::Result<()> {
        let mut budget = MAX_TRAILER_BYTES;
        loop {
            let line = read_line(self.inner, budget)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF in trailers"))?;
            if line.is_empty() {
                return Ok(());
            }
            budget = budget
                .checked_sub(line.len() + 2)
                .ok_or_else(|| bad_data("trailer section too large"))?;
            if let Ok(line) = String::from_utf8(line) {
                if let Some((name, value)) = line.split_once(':') {
                    self.trailers
                        .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                }
            }
        }
    }
}

impl<R: BufRead> Read for BodyReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.read_body(buf) {
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
            ok => ok,
        }
    }
}

impl<R: BufRead> BodyReader<'_, R> {
    /// Push-mode access: borrow the next run of body bytes straight out of
    /// the connection's read buffer — no copy, no `Read` adapter. An empty
    /// slice means the body is complete (for chunked bodies, the trailers
    /// were consumed too). Follow with [`BodyReader::consume`] for however
    /// many of the returned bytes were actually used.
    ///
    /// This is the wire side of the sans-IO eval path: the handler feeds
    /// the returned slice to the engine session as it arrives, so the
    /// document is never wrapped in a blocking reader.
    pub fn fill(&mut self) -> io::Result<&[u8]> {
        // Poison on failure like `read`: a failed body is desynchronized
        // and must not be drained or reused. (Two-step shape: computing
        // the usable length first lets the error arm mutate `self`, then
        // the connection buffer — already filled, so this is a plain
        // re-borrow, not a second read — is sliced for the caller.)
        let n = match self.fill_len() {
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
            Ok(n) => n,
        };
        if n == 0 {
            return Ok(&[]);
        }
        let chunk = self.inner.fill_buf()?;
        Ok(&chunk[..n])
    }

    /// How many body bytes the connection buffer currently holds (filling
    /// it if empty, decoding chunk framing as needed). 0 = body complete.
    fn fill_len(&mut self) -> io::Result<usize> {
        loop {
            match &mut self.kind {
                BodyKind::Empty => return Ok(0),
                BodyKind::Sized { remaining } => {
                    if *remaining == 0 {
                        return Ok(0);
                    }
                    let want = *remaining;
                    let chunk = self.inner.fill_buf()?;
                    if chunk.is_empty() {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-body",
                        ));
                    }
                    return Ok((chunk.len() as u64).min(want) as usize);
                }
                BodyKind::Chunked {
                    remaining,
                    first,
                    done,
                } => {
                    if *done {
                        return Ok(0);
                    }
                    if *remaining == 0 {
                        let first_chunk = *first;
                        let len = self.next_chunk(first_chunk)?;
                        if let BodyKind::Chunked {
                            remaining,
                            first,
                            done,
                        } = &mut self.kind
                        {
                            *first = false;
                            if len == 0 {
                                *done = true;
                            } else {
                                *remaining = len;
                            }
                        }
                        if len == 0 {
                            self.read_trailers()?;
                            return Ok(0);
                        }
                        continue;
                    }
                    let want = *remaining;
                    let chunk = self.inner.fill_buf()?;
                    if chunk.is_empty() {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-chunk",
                        ));
                    }
                    return Ok((chunk.len() as u64).min(want) as usize);
                }
            }
        }
    }

    /// Mark `n` bytes of the last [`BodyReader::fill`] slice as used.
    pub fn consume(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.inner.consume(n);
        match &mut self.kind {
            BodyKind::Empty => unreachable!("consume on an empty body"),
            BodyKind::Sized { remaining } | BodyKind::Chunked { remaining, .. } => {
                debug_assert!(n as u64 <= *remaining, "consume past the fill slice");
                *remaining -= n as u64;
            }
        }
    }
}

impl<R: BufRead> BodyReader<'_, R> {
    /// The pull (`io::Read`) path, built on the same push-mode framing
    /// decoder ([`BodyReader::fill_len`]/[`BodyReader::consume`]) so the
    /// sized/chunked state machine exists exactly once.
    fn read_body(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let avail = self.fill_len()?;
        if avail == 0 {
            return Ok(0);
        }
        let want = avail.min(buf.len());
        let chunk = self.inner.fill_buf()?;
        buf[..want].copy_from_slice(&chunk[..want]);
        self.consume(want);
        Ok(want)
    }
}

/// Read a whole (small) body into memory, rejecting anything over `limit`
/// bytes — used for query registration, never for documents.
pub fn read_body_limited<R: BufRead>(
    head: &RequestHead,
    inner: &mut R,
    limit: usize,
) -> io::Result<Option<Vec<u8>>> {
    let mut body = BodyReader::for_request(head, inner)?;
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = body.read(&mut chunk)?;
        if n == 0 {
            return Ok(Some(out));
        }
        out.extend_from_slice(&chunk[..n]);
        if out.len() > limit {
            return Ok(None);
        }
    }
}

/// Write a complete, sized response.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    note_status(status);
    write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    if !extra_headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("content-type"))
    {
        write!(w, "Content-Type: text/plain; charset=utf-8\r\n")?;
    }
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    if close {
        write!(w, "Connection: close\r\n")?;
    }
    write!(w, "\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Chunked response writer that withholds the status line until the run
/// proves it can produce output.
///
/// Output bytes buffer up to `threshold`; the first overflow **commits**
/// the prepared `200` head and starts streaming chunks. A run that fails
/// before the commit (compile-stage errors, early parse errors, a tripped
/// buffer budget) can therefore still get a clean `4xx`/`5xx` status on
/// the same connection. A run that fails after streaming began is
/// terminated with an `X-Gcx-Error` trailer instead — the status line is
/// long gone.
pub struct DeferredBody<W: Write> {
    out: W,
    /// The prepared success head, written verbatim at commit time.
    head: Vec<u8>,
    buf: Vec<u8>,
    threshold: usize,
    committed: bool,
}

impl<W: Write> DeferredBody<W> {
    /// Wrap `out`; `head` is the full success head (status line + headers
    /// + blank line) to emit on commit.
    pub fn new(out: W, head: Vec<u8>, threshold: usize) -> DeferredBody<W> {
        DeferredBody {
            out,
            head,
            buf: Vec::with_capacity(threshold.min(64 * 1024)),
            threshold,
            committed: false,
        }
    }

    /// Whether the success head has been sent (point of no return).
    pub fn committed(&self) -> bool {
        self.committed
    }

    fn commit(&mut self) -> io::Result<()> {
        if !self.committed {
            note_status(200);
            self.out.write_all(&self.head)?;
            self.committed = true;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            write!(self.out, "{:x}\r\n", self.buf.len())?;
            self.out.write_all(&self.buf)?;
            self.out.write_all(b"\r\n")?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Successful completion: emit everything plus the terminal chunk and
    /// `trailers`, and return the underlying writer for connection reuse.
    pub fn finish(mut self, trailers: &[(&str, String)]) -> io::Result<W> {
        self.commit()?;
        self.flush_chunk()?;
        self.out.write_all(b"0\r\n")?;
        for (name, value) in trailers {
            write!(self.out, "{name}: {value}\r\n")?;
        }
        self.out.write_all(b"\r\n")?;
        self.out.flush()?;
        Ok(self.out)
    }

    /// Failure before commit: discard the buffered output and hand the
    /// pristine writer back so the caller can send a real error status.
    /// Failure after commit: terminate the chunked body with an
    /// `X-Gcx-Error` trailer (the caller must close the connection, since
    /// a truncated result would otherwise look complete).
    pub fn fail(mut self, error: &str) -> io::Result<Option<W>> {
        if !self.committed {
            return Ok(Some(self.out));
        }
        self.buf.clear();
        self.out.write_all(b"0\r\n")?;
        let sanitized: String = error
            .chars()
            .map(|c| if c == '\r' || c == '\n' { ' ' } else { c })
            .collect();
        write!(self.out, "X-Gcx-Error: {sanitized}\r\n\r\n")?;
        self.out.flush()?;
        Ok(None)
    }
}

impl<W: Write> Write for DeferredBody<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= self.threshold {
            self.commit()?;
            self.flush_chunk()?;
        }
        Ok(data.len())
    }

    /// Push committed bytes to the socket. Deliberately a no-op before the
    /// commit: the engine flushes once at the end of a run, and honoring
    /// that flush early would forfeit the clean-error window.
    fn flush(&mut self) -> io::Result<()> {
        if self.committed {
            self.flush_chunk()?;
            self.out.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn head_of(raw: &str) -> RequestHead {
        read_request_head(&mut Cursor::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn parses_request_heads() {
        let h = head_of("POST /eval/q1 HTTP/1.1\r\nHost: x\r\nX-Gcx-Engine: gcx\r\n\r\n");
        assert_eq!(h.method, "POST");
        assert_eq!(h.target, "/eval/q1");
        assert_eq!(h.header("x-gcx-engine"), Some("gcx"));
        assert!(h.keep_alive(), "HTTP/1.1 defaults to keep-alive");
        assert!(!h.expects_continue());

        let h = head_of("GET / HTTP/1.1\r\nConnection: close\r\nExpect: 100-continue\r\n\r\n");
        assert!(!h.keep_alive());
        assert!(h.expects_continue());

        let h = head_of("GET / HTTP/1.0\r\n\r\n");
        assert!(!h.keep_alive(), "HTTP/1.0 defaults to close");
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert!(read_request_head(&mut Cursor::new(b"")).unwrap().is_none());
    }

    #[test]
    fn malformed_heads_are_invalid_data() {
        for raw in [
            "GET\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
        ] {
            let err = read_request_head(&mut Cursor::new(raw.as_bytes())).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn sized_body_stops_at_the_boundary() {
        let head = head_of("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\n");
        let mut wire = Cursor::new(b"hellonext-request".to_vec());
        let mut body = BodyReader::for_request(&head, &mut wire).unwrap();
        let mut got = Vec::new();
        body.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"hello");
        assert!(body.fully_consumed());
        let mut rest = Vec::new();
        wire.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"next-request", "reader positioned at next request");
    }

    #[test]
    fn chunked_body_decodes_and_collects_trailers() {
        let head = head_of("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        let raw = b"4\r\nwiki\r\n6\r\npedia \r\nb\r\nin chunks.\n\r\n0\r\nX-Stat: 7\r\n\r\nrest";
        let mut wire = Cursor::new(raw.to_vec());
        let mut body = BodyReader::for_request(&head, &mut wire).unwrap();
        let mut got = Vec::new();
        body.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"wikipedia in chunks.\n");
        assert!(body.fully_consumed());
        assert_eq!(body.take_trailers(), vec![("x-stat".into(), "7".into())]);
        let mut rest = Vec::new();
        wire.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"rest");
    }

    #[test]
    fn truncated_bodies_error_instead_of_hanging() {
        let head = head_of("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
        let mut wire = Cursor::new(b"hi".to_vec());
        let mut body = BodyReader::for_request(&head, &mut wire).unwrap();
        let err = body.read_to_end(&mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn deferred_body_holds_back_until_committed() {
        // Failure before the threshold: the writer comes back pristine.
        let mut sink = Vec::new();
        let body = DeferredBody::new(&mut sink, b"HEAD".to_vec(), 1024);
        assert!(!body.committed());
        let got = body.fail("boom").unwrap();
        assert!(got.is_some(), "uncommitted failure hands the writer back");
        assert!(sink.is_empty(), "nothing reached the wire");

        // Success: head + chunked payload + trailers.
        let mut sink = Vec::new();
        let mut body = DeferredBody::new(&mut sink, b"HEAD\r\n\r\n".to_vec(), 4);
        body.write_all(b"ab").unwrap();
        assert!(!body.committed(), "below threshold stays deferred");
        body.write_all(b"cdef").unwrap();
        assert!(body.committed(), "crossing the threshold commits");
        body.write_all(b"gh").unwrap();
        body.finish(&[("X-T", "1".to_string())]).unwrap();
        let wire = String::from_utf8(sink).unwrap();
        assert_eq!(
            wire,
            "HEAD\r\n\r\n6\r\nabcdef\r\n2\r\ngh\r\n0\r\nX-T: 1\r\n\r\n"
        );
    }

    #[test]
    fn deferred_body_failure_after_commit_sends_error_trailer() {
        let mut sink = Vec::new();
        let mut body = DeferredBody::new(&mut sink, b"H\r\n\r\n".to_vec(), 2);
        body.write_all(b"output").unwrap();
        assert!(body.committed());
        let got = body.fail("mid-stream\r\nboom").unwrap();
        assert!(got.is_none(), "committed failure closes the exchange");
        let wire = String::from_utf8(sink).unwrap();
        assert!(wire.contains("X-Gcx-Error: mid-stream  boom"), "{wire}");
        assert!(wire.ends_with("\r\n\r\n"));
    }

    #[test]
    fn line_limit_holds_regardless_of_fragmentation() {
        // The whole overlong line is available in one buffered chunk;
        // the limit must still reject it.
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'x', MAX_HEAD_BYTES));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = read_request_head(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailer_section_is_bounded() {
        // A "trailer bomb": terminal chunk followed by endless trailer
        // lines. The shared byte budget must cut it off.
        let mut raw = b"0\r\n".to_vec();
        for i in 0..1000 {
            raw.extend_from_slice(format!("t{i}: {}\r\n", "x".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let mut wire = Cursor::new(raw);
        let mut body = BodyReader::chunked(&mut wire);
        let err = body.read_to_end(&mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A modest trailer section still parses.
        let mut wire = Cursor::new(b"0\r\nX-Ok: 1\r\n\r\n".to_vec());
        let mut body = BodyReader::chunked(&mut wire);
        body.read_to_end(&mut Vec::new()).unwrap();
        assert_eq!(body.take_trailers(), vec![("x-ok".into(), "1".into())]);
    }

    #[test]
    fn push_fill_stops_at_the_sized_boundary() {
        let head = head_of("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\n");
        let mut wire = Cursor::new(b"hellonext-request".to_vec());
        let mut body = BodyReader::for_request(&head, &mut wire).unwrap();
        let mut got = Vec::new();
        loop {
            let n = {
                let chunk = body.fill().unwrap();
                if chunk.is_empty() {
                    break;
                }
                got.extend_from_slice(chunk);
                chunk.len()
            };
            body.consume(n);
        }
        assert_eq!(got, b"hello");
        assert!(body.fully_consumed());
        let mut rest = Vec::new();
        wire.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"next-request", "positioned at the next request");
    }

    #[test]
    fn push_fill_decodes_chunked_framing_and_trailers() {
        let head = head_of("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        let raw = b"4\r\nwiki\r\n6\r\npedia \r\nb\r\nin chunks.\n\r\n0\r\nX-Stat: 7\r\n\r\nrest";
        let mut wire = Cursor::new(raw.to_vec());
        let mut body = BodyReader::for_request(&head, &mut wire).unwrap();
        let mut got = Vec::new();
        loop {
            // Exercise partial consumption: take at most 3 bytes per fill.
            let n = {
                let chunk = body.fill().unwrap();
                if chunk.is_empty() {
                    break;
                }
                let n = chunk.len().min(3);
                got.extend_from_slice(&chunk[..n]);
                n
            };
            body.consume(n);
        }
        assert_eq!(got, b"wikipedia in chunks.\n");
        assert!(body.fully_consumed());
        assert_eq!(body.take_trailers(), vec![("x-stat".into(), "7".into())]);
        let mut rest = Vec::new();
        wire.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"rest");
    }

    #[test]
    fn push_fill_reports_truncation() {
        let head = head_of("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
        let mut wire = Cursor::new(b"hi".to_vec());
        let mut body = BodyReader::for_request(&head, &mut wire).unwrap();
        let n = body.fill().unwrap().len();
        body.consume(n);
        let err = body.fill().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(body.poisoned());
    }

    #[test]
    fn read_body_limited_enforces_the_cap() {
        let head = head_of("POST /x HTTP/1.1\r\nContent-Length: 6\r\n\r\n");
        let mut wire = Cursor::new(b"abcdef".to_vec());
        assert!(read_body_limited(&head, &mut wire, 3).unwrap().is_none());
        let mut wire = Cursor::new(b"abcdef".to_vec());
        assert_eq!(
            read_body_limited(&head, &mut wire, 6).unwrap().unwrap(),
            b"abcdef"
        );
    }
}
