//! Aggregate service counters: a handful of relaxed atomics bumped per
//! request, surfaced by `GET /stats`.

use gcx_core::RunReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One monotonically increasing (or in-flight gauge) counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one, saturating at zero (gauges only). A plain
    /// `fetch_sub` would wrap to `u64::MAX` if a decrement ever raced
    /// ahead of its increment — a nonsense reading that `/stats` and
    /// `/metrics` would then serve as fact.
    pub fn drop_one(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise to at least `n` (high-watermark gauges).
    pub fn raise_to(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Service-wide counters. Engine measurements accumulate from each
/// successful eval's [`RunReport`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (admitted or 503-rejected).
    pub accepted: Counter,
    /// Responses written, any status.
    pub served: Counter,
    /// Connections rejected with `503` (admission queue full).
    pub rejected_busy: Counter,
    /// Eval requests rejected with `413` (buffer budget exceeded).
    pub rejected_buffer: Counter,
    /// Other 4xx responses.
    pub client_errors: Counter,
    /// 5xx responses.
    pub server_errors: Counter,
    /// Connections currently being served by a worker.
    pub in_flight: Counter,
    /// Query compilations performed (`PUT /queries`). Eval requests never
    /// compile or lower anything — the registry shares one compiled
    /// program per name — so this stays flat under eval load (asserted by
    /// the loopback suite).
    pub queries_compiled: Counter,
    /// Successful eval runs.
    pub eval_runs: Counter,
    /// Σ structural tokens over successful evals.
    pub eval_tokens: Counter,
    /// Σ purged buffer nodes over successful evals.
    pub eval_purged: Counter,
    /// Σ result bytes over successful evals.
    pub eval_output_bytes: Counter,
    /// High watermark of any single eval's peak buffer bytes.
    pub eval_peak_buffer_bytes: Counter,
    /// Σ schema-driven early child-scan terminations over successful
    /// evals (zero unless a schema is attached).
    pub eval_early_scan_ends: Counter,
    /// Σ schema-driven early sign-offs over successful evals (zero
    /// unless a schema is attached).
    pub eval_early_signoffs: Counter,
}

impl ServerStats {
    /// Fold one successful run into the aggregates.
    pub fn record_eval(&self, report: &RunReport) {
        self.eval_runs.bump();
        self.eval_tokens.add(report.tokens);
        self.eval_purged.add(report.buffer.purged);
        self.eval_output_bytes.add(report.output_bytes);
        self.eval_peak_buffer_bytes
            .raise_to(report.buffer.peak_live_bytes);
        if let Some(schema) = &report.schema {
            self.eval_early_scan_ends.add(schema.early_scan_ends);
            self.eval_early_signoffs.add(schema.early_signoffs);
        }
    }

    /// The `GET /stats` document (hand-rolled JSON; no external deps).
    /// Key order is part of the contract — the golden test below pins it,
    /// so scripted consumers can diff documents textually.
    pub fn to_json(
        &self,
        registered_queries: usize,
        uptime: Duration,
        workers: usize,
        queue_depth: usize,
        max_buffer_bytes: Option<u64>,
        per_query: &[(String, u64)],
    ) -> String {
        let mut out = format!(
            "{{\"uptime_s\":{:.1},\"uptime_secs\":{},\
             \"workers\":{workers},\"queue_depth\":{queue_depth},\
             \"max_buffer_bytes\":{},\"queries\":{registered_queries},\
             \"queries_compiled\":{},\
             \"accepted\":{},\"served\":{},\"in_flight\":{},\
             \"rejected_busy\":{},\"rejected_buffer\":{},\
             \"client_errors\":{},\"server_errors\":{},\
             \"eval\":{{\"runs\":{},\"tokens\":{},\"purged_nodes\":{},\
             \"output_bytes\":{},\"peak_buffer_bytes\":{},\
             \"early_scan_ends\":{},\"early_signoffs\":{}}}",
            uptime.as_secs_f64(),
            uptime.as_secs(),
            max_buffer_bytes.map_or_else(|| "null".to_string(), |b| b.to_string()),
            self.queries_compiled.get(),
            self.accepted.get(),
            self.served.get(),
            self.in_flight.get(),
            self.rejected_busy.get(),
            self.rejected_buffer.get(),
            self.client_errors.get(),
            self.server_errors.get(),
            self.eval_runs.get(),
            self.eval_tokens.get(),
            self.eval_purged.get(),
            self.eval_output_bytes.get(),
            self.eval_peak_buffer_bytes.get(),
            self.eval_early_scan_ends.get(),
            self.eval_early_signoffs.get(),
        );
        out.push_str(",\"per_query\":{");
        for (i, (name, evals)) in per_query.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            gcx_obs::push_json_escaped(&mut out, name);
            out.push_str("\":");
            out.push_str(&evals.to_string());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_counter_semantics() {
        let s = ServerStats::default();
        s.accepted.bump();
        s.in_flight.bump();
        s.in_flight.drop_one();
        s.eval_peak_buffer_bytes.raise_to(100);
        s.eval_peak_buffer_bytes.raise_to(40);
        assert_eq!(s.eval_peak_buffer_bytes.get(), 100, "watermark never drops");
        let json = s.to_json(3, Duration::from_secs(2), 4, 64, Some(1024), &[]);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"accepted\":1",
            "\"in_flight\":0",
            "\"queries\":3",
            "\"max_buffer_bytes\":1024",
            "\"peak_buffer_bytes\":100",
            "\"uptime_secs\":2",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        let unlimited = s.to_json(0, Duration::ZERO, 1, 1, None, &[]);
        assert!(unlimited.contains("\"max_buffer_bytes\":null"));
    }

    #[test]
    fn drop_one_saturates_at_zero() {
        let c = Counter::default();
        c.drop_one();
        assert_eq!(c.get(), 0, "underflow must clamp, not wrap to u64::MAX");
        c.bump();
        c.drop_one();
        c.drop_one();
        assert_eq!(c.get(), 0);
    }

    /// Golden key order: adding, removing, or reordering a `/stats` field
    /// must be a deliberate change here too.
    #[test]
    fn stats_json_key_order_is_stable() {
        let s = ServerStats::default();
        let per_query = vec![
            ("alpha".to_string(), 2u64),
            ("q-weird.\"name".to_string(), 1u64),
        ];
        let json = s.to_json(2, Duration::from_secs(5), 4, 64, None, &per_query);
        assert_eq!(
            json,
            "{\"uptime_s\":5.0,\"uptime_secs\":5,\"workers\":4,\"queue_depth\":64,\
             \"max_buffer_bytes\":null,\"queries\":2,\"queries_compiled\":0,\
             \"accepted\":0,\"served\":0,\"in_flight\":0,\
             \"rejected_busy\":0,\"rejected_buffer\":0,\
             \"client_errors\":0,\"server_errors\":0,\
             \"eval\":{\"runs\":0,\"tokens\":0,\"purged_nodes\":0,\
             \"output_bytes\":0,\"peak_buffer_bytes\":0,\
             \"early_scan_ends\":0,\"early_signoffs\":0},\
             \"per_query\":{\"alpha\":2,\"q-weird.\\\"name\":1}}"
        );
    }

    /// The hand-rolled JSON escaping must keep `/stats` parseable even if
    /// a hostile name sneaks into the per-query map.
    #[test]
    fn per_query_names_are_json_escaped() {
        let s = ServerStats::default();
        let per_query = vec![("a\"b\\c\nd\u{1}e".to_string(), 7u64)];
        let json = s.to_json(1, Duration::ZERO, 1, 1, None, &per_query);
        assert!(
            json.contains("\"a\\\"b\\\\c\\nd\\u0001e\":7"),
            "escaped name missing: {json}"
        );
    }
}
