//! Aggregate service counters: a handful of relaxed atomics bumped per
//! request, surfaced by `GET /stats`.

use gcx_core::RunReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One monotonically increasing (or in-flight gauge) counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one (gauges only).
    pub fn drop_one(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise to at least `n` (high-watermark gauges).
    pub fn raise_to(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Service-wide counters. Engine measurements accumulate from each
/// successful eval's [`RunReport`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (admitted or 503-rejected).
    pub accepted: Counter,
    /// Responses written, any status.
    pub served: Counter,
    /// Connections rejected with `503` (admission queue full).
    pub rejected_busy: Counter,
    /// Eval requests rejected with `413` (buffer budget exceeded).
    pub rejected_buffer: Counter,
    /// Other 4xx responses.
    pub client_errors: Counter,
    /// 5xx responses.
    pub server_errors: Counter,
    /// Connections currently being served by a worker.
    pub in_flight: Counter,
    /// Query compilations performed (`PUT /queries`). Eval requests never
    /// compile or lower anything — the registry shares one compiled
    /// program per name — so this stays flat under eval load (asserted by
    /// the loopback suite).
    pub queries_compiled: Counter,
    /// Successful eval runs.
    pub eval_runs: Counter,
    /// Σ structural tokens over successful evals.
    pub eval_tokens: Counter,
    /// Σ purged buffer nodes over successful evals.
    pub eval_purged: Counter,
    /// Σ result bytes over successful evals.
    pub eval_output_bytes: Counter,
    /// High watermark of any single eval's peak buffer bytes.
    pub eval_peak_buffer_bytes: Counter,
}

impl ServerStats {
    /// Fold one successful run into the aggregates.
    pub fn record_eval(&self, report: &RunReport) {
        self.eval_runs.bump();
        self.eval_tokens.add(report.tokens);
        self.eval_purged.add(report.buffer.purged);
        self.eval_output_bytes.add(report.output_bytes);
        self.eval_peak_buffer_bytes
            .raise_to(report.buffer.peak_live_bytes);
    }

    /// The `GET /stats` document (hand-rolled JSON; no external deps).
    pub fn to_json(
        &self,
        registered_queries: usize,
        uptime: Duration,
        workers: usize,
        queue_depth: usize,
        max_buffer_bytes: Option<u64>,
    ) -> String {
        format!(
            "{{\"uptime_s\":{:.1},\"workers\":{workers},\"queue_depth\":{queue_depth},\
             \"max_buffer_bytes\":{},\"queries\":{registered_queries},\
             \"queries_compiled\":{},\
             \"accepted\":{},\"served\":{},\"in_flight\":{},\
             \"rejected_busy\":{},\"rejected_buffer\":{},\
             \"client_errors\":{},\"server_errors\":{},\
             \"eval\":{{\"runs\":{},\"tokens\":{},\"purged_nodes\":{},\
             \"output_bytes\":{},\"peak_buffer_bytes\":{}}}}}",
            uptime.as_secs_f64(),
            max_buffer_bytes.map_or_else(|| "null".to_string(), |b| b.to_string()),
            self.queries_compiled.get(),
            self.accepted.get(),
            self.served.get(),
            self.in_flight.get(),
            self.rejected_busy.get(),
            self.rejected_buffer.get(),
            self.client_errors.get(),
            self.server_errors.get(),
            self.eval_runs.get(),
            self.eval_tokens.get(),
            self.eval_purged.get(),
            self.eval_output_bytes.get(),
            self.eval_peak_buffer_bytes.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_counter_semantics() {
        let s = ServerStats::default();
        s.accepted.bump();
        s.in_flight.bump();
        s.in_flight.drop_one();
        s.eval_peak_buffer_bytes.raise_to(100);
        s.eval_peak_buffer_bytes.raise_to(40);
        assert_eq!(s.eval_peak_buffer_bytes.get(), 100, "watermark never drops");
        let json = s.to_json(3, Duration::from_secs(2), 4, 64, Some(1024));
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"accepted\":1",
            "\"in_flight\":0",
            "\"queries\":3",
            "\"max_buffer_bytes\":1024",
            "\"peak_buffer_bytes\":100",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        let unlimited = s.to_json(0, Duration::ZERO, 1, 1, None);
        assert!(unlimited.contains("\"max_buffer_bytes\":null"));
    }
}
