#![deny(unsafe_code)]
//! # gcx-server — streaming XQuery as a bounded-memory network service
//!
//! GCX's buffer minimization makes XQuery evaluation possible on streams
//! too large (or too live) to materialize — exactly the regime of a
//! network service. This crate turns the engine into one, on `std` alone:
//! a threaded HTTP/1.1 service where
//!
//! * `PUT /queries/{name}` compiles a query **once** into a shared
//!   registry ([`gcx_core::CompiledQuery`] is reused across requests);
//! * `POST /eval/{name}` pushes the request body into a sans-IO
//!   [`gcx_core::EvalSession`] chunk by chunk as bytes come off the
//!   socket (no blocking `Read` adapter anywhere on the path) and streams
//!   the result back *while the document is still arriving* — a request's
//!   resident memory is the GCX buffer plus at most one partial token;
//! * `Expect: 100-continue` is honored properly: `100 Continue` is sent
//!   only once the query lookup and option checks pass, so a rejected
//!   request never uploads its document at all;
//! * the paper's buffer-minimality guarantee becomes an enforceable
//!   resource budget: [`ServerConfig::max_buffer_bytes`] (or the
//!   `X-Gcx-Max-Buffer-Bytes` request header) rejects runaway requests
//!   with `413` instead of letting one query OOM the process;
//! * a bounded worker pool with a bounded admission queue provides
//!   backpressure: connections beyond the queue get an immediate `503`;
//! * `GET /stats` (JSON), `GET /metrics` (Prometheus text exposition),
//!   and per-response trailers surface the engine's measurements
//!   (tokens, buffer peaks, purge counts) and the service's own
//!   (request latency by outcome, admission-queue wait, worker
//!   utilization, per-query eval counts);
//! * every eval carries an `X-Gcx-Trace-Id`: the client's (validated)
//!   or a generated one, echoed in the response head, the trailers, and
//!   the server's log line, so one id follows a request end to end.
//!
//! ## Protocol sketch
//!
//! ```text
//! PUT  /queries/{name}      body = query text          → 201 / 400
//!      headers: X-Gcx-Schema: xmark|none   (per-name DTD attachment;
//!               overrides the server-wide --schema default)
//! GET  /queries             newline-separated names    → 200
//! GET  /queries/{name}      static-analysis report     → 200 / 404
//! DELETE /queries/{name}                               → 204 / 404
//! POST /eval/{name}         body = XML document        → 200 (chunked) / 4xx / 5xx
//!      headers: X-Gcx-Engine: gcx|projection|full
//!               X-Gcx-Max-Buffer-Bytes: N   (tightens the server budget)
//!               X-Gcx-Trace-Id: id          (propagated if [A-Za-z0-9._-]{1,64})
//!      response headers: X-Gcx-Trace-Id
//!      response trailers: X-Gcx-Tokens, X-Gcx-Peak-Buffered-Nodes,
//!               X-Gcx-Peak-Buffer-Bytes, X-Gcx-Purged-Nodes, X-Gcx-Output-Bytes,
//!               X-Gcx-Trace-Id
//! GET  /stats               aggregate JSON             → 200
//! GET  /metrics             Prometheus text (0.0.4)    → 200
//! GET  /healthz                                        → 200
//! POST /shutdown            graceful drain + exit      → 200
//! ```
//!
//! Failure semantics on `/eval`: errors detected before any output has
//! been streamed get real status codes (`400` malformed XML / `408`
//! body deadline / `413` buffer budget / `500` internal; `505` for
//! HTTP/1.0 peers, which must not be sent chunked framing); errors after
//! streaming began terminate the chunked body with an `X-Gcx-Error`
//! trailer and close the connection. Either way the worker survives and
//! in-flight peers are untouched.

pub mod client;
pub mod http;
mod metrics;
mod stats;

pub use stats::ServerStats;

use metrics::ServerMetrics;
use stats::Counter;

use gcx_core::{CompiledQuery, EngineError, EngineOptions};
use http::{BodyReader, DeferredBody, RequestHead};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on `PUT /queries` bodies (query text, not documents).
const MAX_QUERY_BYTES: usize = 1024 * 1024;

/// Output buffered before the `200` head of an eval response is committed
/// (see [`http::DeferredBody`]); also the chunk coalescing size after.
const COMMIT_THRESHOLD: usize = 8 * 1024;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7007` (port 0 picks an ephemeral
    /// port; see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads — the request-level concurrency bound.
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this, `503`.
    pub queue_depth: usize,
    /// Default per-request buffer byte budget (None = unlimited). The
    /// `X-Gcx-Max-Buffer-Bytes` request header can tighten, never loosen.
    pub max_buffer_bytes: Option<u64>,
    /// Socket read timeout: bounds how long any *single* read may stall
    /// (idle keep-alive connections, a silent peer).
    pub read_timeout: Option<Duration>,
    /// Total wall-clock budget for one eval request's body. The read
    /// timeout alone would let a client trickle one byte per interval and
    /// pin a worker forever; crossing this deadline answers `408`.
    pub max_request_duration: Option<Duration>,
    /// Registered-query cap. Each entry holds a compiled query for the
    /// process lifetime, so an uncapped registry would be a slow OOM any
    /// client could drive; registering a new name past the cap answers
    /// `429` (replacing an existing name always works).
    pub max_queries: usize,
    /// Run the plan optimizer on registered queries (`gcx serve
    /// --no-opt` turns it off; outputs are identical either way).
    pub optimize: bool,
    /// Default DTD every eval's document is promised to be valid
    /// against (`gcx serve --schema`). A query registered with an
    /// `X-Gcx-Schema` header overrides this per name; `X-Gcx-Schema:
    /// none` opts a query out entirely. Outputs are identical with or
    /// without — the schema only shrinks buffers and latency.
    pub schema: Option<Arc<gcx_schema::Dtd>>,
    /// Worker-thread budget for ONE eval request (`gcx serve
    /// --eval-threads`). At the default `1` every request streams
    /// through a single engine exactly as before. Above 1, each
    /// request body is spooled whole and evaluated partition-parallel
    /// ([`gcx_par::run_parallel`]) when the query is shard-safe —
    /// byte-identical output, the taken path reported in the
    /// `X-Gcx-Shard-Path` trailer.
    pub eval_threads: usize,
    /// Spool-size cap for `eval_threads > 1` (None = unlimited). The
    /// parallel path must hold the whole request body in memory (shards
    /// are byte ranges), which would let a few large concurrent uploads
    /// exhaust RAM no matter what `max_buffer_bytes` says; a body that
    /// outgrows this cap is handed to the bounded-memory streaming path
    /// instead (`X-Gcx-Shard-Path: serial`).
    pub max_spool_bytes: Option<u64>,
    /// Admission policy (`gcx serve --max-static-class`): the loosest
    /// streamability class a query may have to be registered. A PUT
    /// whose static class exceeds the cap answers `422` with the
    /// analyzer's lint diagnostics and registers nothing. `None`
    /// (default) admits everything; every successful registration still
    /// reports its class in the `X-Gcx-Streamability` response header.
    pub admission_class: Option<gcx_analyze::StreamClass>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7007".to_string(),
            workers: 4,
            queue_depth: 64,
            max_buffer_bytes: None,
            read_timeout: Some(Duration::from_secs(30)),
            max_request_duration: Some(Duration::from_secs(300)),
            max_queries: 1024,
            optimize: true,
            schema: None,
            eval_threads: 1,
            max_spool_bytes: Some(256 << 20),
            admission_class: None,
        }
    }
}

/// Admission queue: accepted connections waiting for a worker, each
/// stamped with its admission time so the wait becomes a histogram.
struct Queue {
    conns: VecDeque<(TcpStream, Instant)>,
    shutdown: bool,
}

/// One registry slot: the shared compiled program plus its own eval
/// counter (surfaced per name by `/stats` and `/metrics`).
struct QueryEntry {
    query: CompiledQuery,
    evals: Counter,
    /// Per-name schema attachment: `Some(Some(dtd))` pins a DTD,
    /// `Some(None)` opts out of the server default, `None` inherits it.
    schema: Option<Option<Arc<gcx_schema::Dtd>>>,
}

/// State shared by the acceptor and every worker.
struct Shared {
    config: ServerConfig,
    registry: RwLock<HashMap<String, Arc<QueryEntry>>>,
    stats: ServerStats,
    metrics: ServerMetrics,
    started: Instant,
    queue: Mutex<Queue>,
    ready: Condvar,
    local_addr: SocketAddr,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.queue.lock().expect("queue poisoned").shutdown
    }

    /// Flip the shutdown flag, wake every parked worker, and poke the
    /// acceptor loose from its blocking `accept`.
    fn begin_shutdown(&self) {
        {
            let mut q = self.queue.lock().expect("queue poisoned");
            if q.shutdown {
                return;
            }
            q.shutdown = true;
        }
        self.ready.notify_all();
        // A throwaway connection unblocks accept(); the acceptor sees the
        // flag and exits. Errors are fine — the listener may be gone.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
    }
}

/// A running service: the bound address plus join control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the service exits (a `POST /shutdown` or
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain admitted connections,
    /// finish in-flight requests, then join every thread.
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.join();
    }
}

/// Bind and start the service: one acceptor thread plus
/// [`ServerConfig::workers`] worker threads. Returns immediately.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        config: config.clone(),
        registry: RwLock::new(HashMap::new()),
        stats: ServerStats::default(),
        metrics: ServerMetrics::default(),
        started: Instant::now(),
        queue: Mutex::new(Queue {
            conns: VecDeque::new(),
            shutdown: false,
        }),
        ready: Condvar::new(),
        local_addr,
    });

    let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("gcx-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gcx-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    Ok(ServerHandle {
        addr: local_addr,
        shared,
        threads,
    })
}

/// Accept connections, admitting each to the bounded queue or rejecting
/// it with an immediate `503` — backpressure the client can see.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // EMFILE under a connection flood returns instantly; a
                // bare `continue` would busy-spin the acceptor. Back off
                // briefly so workers can release descriptors.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let mut q = shared.queue.lock().expect("queue poisoned");
        if q.shutdown {
            // The shutdown poke (or an unlucky late client) — drop it.
            drop(stream);
            break;
        }
        shared.stats.accepted.bump();
        if q.conns.len() >= shared.config.queue_depth {
            drop(q);
            shared.stats.rejected_busy.bump();
            let mut stream = stream;
            let _ = http::write_response(
                &mut stream,
                503,
                "Service Unavailable",
                &[("Retry-After", "1")],
                b"server saturated: admission queue full\n",
                true,
            );
        } else {
            q.conns.push_back((stream, Instant::now()));
            drop(q);
            shared.ready.notify_one();
        }
    }
}

/// Worker: pull admitted connections off the queue until shutdown *and*
/// the queue is drained — admitted work always completes.
fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(c) = q.conns.pop_front() {
                    break Some(c);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.ready.wait(q).expect("queue poisoned");
            }
        };
        let Some((conn, admitted)) = conn else { break };
        shared
            .metrics
            .admission_wait_us
            .observe(admitted.elapsed().as_micros() as u64);
        shared.stats.in_flight.bump();
        let _ = handle_connection(shared, conn);
        shared.stats.in_flight.drop_one();
    }
}

/// What a request handler tells the connection loop to do next.
enum Outcome {
    KeepAlive,
    Close,
}

/// Poll interval while a worker waits for the next request on an idle
/// connection — the bound on how long idle peers can delay shutdown.
const IDLE_POLL: Duration = Duration::from_millis(500);

/// Wait until request bytes are available. Returns `false` when the
/// connection should be dropped instead: the peer closed, the idle time
/// exceeded the read timeout, or shutdown began. Peeking (not reading)
/// keeps partial data intact, so a slow client loses nothing.
fn wait_for_request(shared: &Shared, reader: &mut BufReader<TcpStream>) -> io::Result<bool> {
    if !reader.buffer().is_empty() {
        return Ok(true); // a pipelined request is already buffered
    }
    let mut idle = Duration::ZERO;
    let mut byte = [0u8; 1];
    loop {
        let stream = reader.get_ref();
        stream.set_read_timeout(Some(IDLE_POLL))?;
        match stream.peek(&mut byte) {
            Ok(0) => return Ok(false), // peer closed
            Ok(_) => {
                stream.set_read_timeout(shared.config.read_timeout)?;
                return Ok(true);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down() {
                    return Ok(false); // no request in flight: safe to drop
                }
                idle += IDLE_POLL;
                if shared.config.read_timeout.is_some_and(|t| idle >= t) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serve one connection: a keep-alive loop of request/response exchanges.
fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(shared.config.read_timeout).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::with_capacity(64 * 1024, stream);
    // Classify each exchange for the latency histograms: the status the
    // write path noted, measured from the first request byte.
    let observe = |start: Instant| {
        shared
            .metrics
            .observe_request(http::take_last_status(), start.elapsed().as_micros() as u64);
    };
    loop {
        // Interruptible idle wait: a worker parked on a keep-alive
        // connection must still notice shutdown.
        if !wait_for_request(shared, &mut reader)? {
            return Ok(());
        }
        let started = Instant::now();
        let head = match http::read_request_head(&mut reader) {
            Ok(Some(head)) => head,
            Ok(None) => return Ok(()), // clean keep-alive end
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.stats.client_errors.bump();
                let msg = format!("bad request: {e}\n");
                http::write_response(&mut writer, 400, "Bad Request", &[], msg.as_bytes(), true)?;
                shared.stats.served.bump();
                observe(started);
                return Ok(());
            }
            Err(e) => return Err(e), // timeout / reset: nothing to say
        };
        let keep = head.keep_alive();
        let outcome = match handle_request(shared, &head, &mut reader, &mut writer) {
            Ok(outcome) => outcome,
            // Malformed body framing (bad Content-Length, broken chunk
            // syntax) deserves the same clean 400 as a malformed head,
            // not a silent connection drop. Response-write failures carry
            // other kinds (BrokenPipe etc.) and still just close.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.stats.client_errors.bump();
                let msg = format!("bad request: {e}\n");
                http::write_response(&mut writer, 400, "Bad Request", &[], msg.as_bytes(), true)?;
                shared.stats.served.bump();
                observe(started);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        shared.stats.served.bump();
        observe(started);
        match outcome {
            Outcome::KeepAlive if keep && !shared.shutting_down() => continue,
            _ => return Ok(()),
        }
    }
}

/// Route one request. Handlers must leave the connection either fully
/// consumed (body read to its end) or report [`Outcome::Close`].
fn handle_request<R: BufRead, W: Write>(
    shared: &Shared,
    head: &RequestHead,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<Outcome> {
    let path = head.target.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (head.method.as_str(), segments.as_slice()) {
        // Routes that consume their own body.
        ("PUT", ["queries", name]) => put_query(shared, head, name, reader, writer),
        ("POST", ["eval", name]) => eval(shared, head, name, reader, writer),
        // Bodyless routes: a client may still attach a (small) body, and
        // leaving it unread would desync the keep-alive stream — the next
        // head parse would start mid-body. Consume it first; anything
        // oversized forces a close instead.
        _ => {
            let consumed = http::read_body_limited(head, reader, MAX_QUERY_BYTES)?.is_some();
            let outcome = route_bodyless(shared, head, &segments, writer)?;
            Ok(if consumed { outcome } else { Outcome::Close })
        }
    }
}

/// Dispatch the routes whose request body carries no meaning (already
/// consumed by the caller).
fn route_bodyless<W: Write>(
    shared: &Shared,
    head: &RequestHead,
    segments: &[&str],
    writer: &mut W,
) -> io::Result<Outcome> {
    match (head.method.as_str(), segments) {
        ("GET", ["queries"]) => list_queries(shared, writer),
        ("GET", ["queries", name]) => explain_query(shared, name, writer),
        ("DELETE", ["queries", name]) => delete_query(shared, name, writer),
        ("GET", ["stats"]) => {
            let (registered, per_query) = per_query_evals(shared);
            let body = shared.stats.to_json(
                registered,
                shared.started.elapsed(),
                shared.config.workers,
                shared.config.queue_depth,
                shared.config.max_buffer_bytes,
                &per_query,
            );
            http::write_response(
                writer,
                200,
                "OK",
                &[("Content-Type", "application/json")],
                body.as_bytes(),
                false,
            )?;
            Ok(Outcome::KeepAlive)
        }
        ("GET", ["metrics"]) => {
            let (registered, per_query) = per_query_evals(shared);
            let queue_len = shared.queue.lock().expect("queue poisoned").conns.len();
            let body = metrics::render(
                &shared.metrics,
                &shared.stats,
                shared.started.elapsed(),
                shared.config.workers,
                queue_len,
                shared.config.queue_depth,
                registered,
                &per_query,
            );
            http::write_response(
                writer,
                200,
                "OK",
                &[("Content-Type", "text/plain; version=0.0.4; charset=utf-8")],
                body.as_bytes(),
                false,
            )?;
            Ok(Outcome::KeepAlive)
        }
        ("GET", ["healthz"]) => {
            http::write_response(writer, 200, "OK", &[], b"ok\n", false)?;
            Ok(Outcome::KeepAlive)
        }
        ("POST", ["shutdown"]) => {
            http::write_response(writer, 200, "OK", &[], b"draining\n", true)?;
            shared.begin_shutdown();
            Ok(Outcome::Close)
        }
        _ => {
            shared.stats.client_errors.bump();
            let msg = format!("no route for {} {}\n", head.method, head.target);
            http::write_response(writer, 404, "Not Found", &[], msg.as_bytes(), true)?;
            Ok(Outcome::Close)
        }
    }
}

/// Snapshot the registry as (size, sorted per-query eval counts) for
/// `/stats` and `/metrics`.
fn per_query_evals(shared: &Shared) -> (usize, Vec<(String, u64)>) {
    let registry = shared.registry.read().expect("registry poisoned");
    let mut per: Vec<(String, u64)> = registry
        .iter()
        .map(|(name, entry)| (name.clone(), entry.evals.get()))
        .collect();
    per.sort();
    (registry.len(), per)
}

/// Valid registry names: short, path- and header-safe.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

fn put_query<R: BufRead, W: Write>(
    shared: &Shared,
    head: &RequestHead,
    name: &str,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<Outcome> {
    if !valid_name(name) {
        shared.stats.client_errors.bump();
        http::write_response(
            writer,
            400,
            "Bad Request",
            &[],
            b"invalid query name\n",
            true,
        )?;
        return Ok(Outcome::Close);
    }
    if head.expects_continue() {
        writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        writer.flush()?;
    }
    let Some(body) = http::read_body_limited(head, reader, MAX_QUERY_BYTES)? else {
        shared.stats.client_errors.bump();
        http::write_response(
            writer,
            413,
            "Payload Too Large",
            &[],
            b"query text too large\n",
            true,
        )?;
        return Ok(Outcome::Close);
    };
    let text = match String::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            shared.stats.client_errors.bump();
            http::write_response(
                writer,
                400,
                "Bad Request",
                &[],
                b"query text must be UTF-8\n",
                false,
            )?;
            return Ok(Outcome::KeepAlive);
        }
    };
    // Per-query schema attachment: `X-Gcx-Schema: xmark` promises every
    // document evaluated under this name validates against the bundled
    // XMark DTD; `none` opts out of any server-wide default.
    let schema = match head.header("x-gcx-schema") {
        None => None,
        Some("xmark") => Some(Some(gcx_schema::Dtd::xmark())),
        Some("none") => Some(None),
        Some(other) => {
            shared.stats.client_errors.bump();
            let msg = format!("unknown X-Gcx-Schema {other:?} (xmark|none)\n");
            http::write_response(writer, 400, "Bad Request", &[], msg.as_bytes(), false)?;
            return Ok(Outcome::KeepAlive);
        }
    };
    match CompiledQuery::compile_opts(&text, shared.config.optimize) {
        Ok(q) => {
            shared.stats.queries_compiled.bump();
            // Static admission: classify against the DTD this name's
            // evals will actually run under (the per-query X-Gcx-Schema
            // override, else the server-wide default).
            let effective_dtd = match &schema {
                Some(over) => over.clone(),
                None => shared.config.schema.clone(),
            };
            let analysis = gcx_analyze::analyze_program(&q.program, effective_dtd.as_deref());
            let class = analysis.class.as_str();
            if let Some(cap) = shared.config.admission_class {
                if analysis.class > cap {
                    shared.stats.client_errors.bump();
                    let msg = format!(
                        "query refused: static streamability class `{class}` exceeds the \
                         server's `{}` admission cap\n{}",
                        cap.as_str(),
                        analysis.lint_lines().join("\n")
                    );
                    http::write_response(
                        writer,
                        422,
                        "Unprocessable Entity",
                        &[("X-Gcx-Streamability", class)],
                        msg.as_bytes(),
                        false,
                    )?;
                    return Ok(Outcome::KeepAlive);
                }
            }
            let mut registry = shared.registry.write().expect("registry poisoned");
            if !registry.contains_key(name) && registry.len() >= shared.config.max_queries {
                drop(registry);
                shared.stats.client_errors.bump();
                let msg = format!(
                    "query registry full ({} entries); DELETE unused queries first\n",
                    shared.config.max_queries
                );
                http::write_response(writer, 429, "Too Many Requests", &[], msg.as_bytes(), false)?;
                return Ok(Outcome::KeepAlive);
            }
            let entry = QueryEntry {
                query: q,
                evals: Counter::default(),
                schema,
            };
            // Replacing a name keeps its eval count: the counter tracks
            // the name's traffic, not one compilation's.
            if let Some(old) = registry.get(name) {
                entry.evals.add(old.evals.get());
            }
            let replaced = registry.insert(name.to_string(), Arc::new(entry)).is_some();
            drop(registry);
            let (status, reason) = if replaced {
                (200, "OK")
            } else {
                (201, "Created")
            };
            // The analyzer's warnings (join buffering, unbounded
            // aggregates, ...) ride along after the confirmation line;
            // info-severity lints stay out of the body.
            let warnings: String = analysis
                .lints
                .iter()
                .filter(|l| l.severity == gcx_analyze::Severity::Warning)
                .map(|l| format!("warning: [{}] {}: {}\n", l.code, l.span, l.message))
                .collect();
            let msg = format!("compiled query {name:?}\n{warnings}");
            http::write_response(
                writer,
                status,
                reason,
                &[("X-Gcx-Streamability", class)],
                msg.as_bytes(),
                false,
            )?;
            Ok(Outcome::KeepAlive)
        }
        Err(e) => {
            shared.stats.client_errors.bump();
            let msg = format!("query does not compile: {e}\n");
            http::write_response(writer, 400, "Bad Request", &[], msg.as_bytes(), false)?;
            Ok(Outcome::KeepAlive)
        }
    }
}

fn list_queries<W: Write>(shared: &Shared, writer: &mut W) -> io::Result<Outcome> {
    let mut names: Vec<String> = shared
        .registry
        .read()
        .expect("registry poisoned")
        .keys()
        .cloned()
        .collect();
    names.sort();
    let mut body = names.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    http::write_response(writer, 200, "OK", &[], body.as_bytes(), false)?;
    Ok(Outcome::KeepAlive)
}

fn explain_query<W: Write>(shared: &Shared, name: &str, writer: &mut W) -> io::Result<Outcome> {
    let q = shared
        .registry
        .read()
        .expect("registry poisoned")
        .get(name)
        .cloned();
    match q {
        Some(q) => {
            http::write_response(writer, 200, "OK", &[], q.query.explain().as_bytes(), false)?;
            Ok(Outcome::KeepAlive)
        }
        None => {
            shared.stats.client_errors.bump();
            let msg = format!("no query named {name:?}\n");
            http::write_response(writer, 404, "Not Found", &[], msg.as_bytes(), false)?;
            Ok(Outcome::KeepAlive)
        }
    }
}

fn delete_query<W: Write>(shared: &Shared, name: &str, writer: &mut W) -> io::Result<Outcome> {
    let removed = shared
        .registry
        .write()
        .expect("registry poisoned")
        .remove(name)
        .is_some();
    if removed {
        http::write_response(writer, 204, "No Content", &[], b"", false)?;
    } else {
        shared.stats.client_errors.bump();
        let msg = format!("no query named {name:?}\n");
        http::write_response(writer, 404, "Not Found", &[], msg.as_bytes(), false)?;
    }
    Ok(Outcome::KeepAlive)
}

/// Parse a byte size: a plain number with an optional k/m/g suffix
/// (binary units), e.g. `65536`, `64k`, `16m`, `2g`. Used for the
/// `X-Gcx-Max-Buffer-Bytes` header and re-exported for the CLI's
/// `--max-buffer-bytes` flag so the two stay in sync.
pub fn parse_byte_size(text: &str) -> Option<u64> {
    let text = text.trim();
    let (digits, shift) = match text.as_bytes().last()? {
        b'k' | b'K' => (&text[..text.len() - 1], 10u32),
        b'm' | b'M' => (&text[..text.len() - 1], 20),
        b'g' | b'G' => (&text[..text.len() - 1], 30),
        _ => (text, 0),
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_shl(shift).filter(|v| v >> shift == n)
}

/// The effective buffer budget: the server default, tightened (never
/// loosened) by the request's `X-Gcx-Max-Buffer-Bytes` header.
fn effective_budget(server: Option<u64>, header: Option<&str>) -> Result<Option<u64>, String> {
    let requested = match header {
        Some(v) => Some(
            parse_byte_size(v).ok_or_else(|| format!("bad X-Gcx-Max-Buffer-Bytes value {v:?}"))?,
        ),
        None => None,
    };
    Ok(match (server, requested) {
        (Some(s), Some(r)) => Some(s.min(r)),
        (s, r) => r.or(s),
    })
}

/// Bounded best-effort drain of an unread (remainder of a) request body.
/// Closing with unread bytes in flight makes the kernel send a TCP reset,
/// which can destroy a just-written error response before the client
/// reads it; draining a few MB first makes early rejections readable.
fn drain_reader<R: io::Read>(body: &mut R) {
    let mut scratch = [0u8; 8192];
    let mut budget: usize = 4 << 20;
    while budget > 0 {
        match body.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// [`drain_reader`] for a request whose body was never opened.
fn drain_request_body<R: BufRead>(head: &RequestHead, reader: &mut R) {
    if let Ok(mut body) = BodyReader::for_request(head, reader) {
        drain_reader(&mut body);
    }
}

/// Best-effort drain for an eval request rejected before its body was
/// read. A client that asked for `Expect: 100-continue` has not sent the
/// body yet — we never sent `100 Continue`, which is the whole point of
/// honoring the header: rejected requests don't upload the document.
/// Draining would only stall on the silent socket until the read timeout;
/// the rejection (with `Connection: close`) is the complete answer.
fn drain_rejected<R: BufRead>(head: &RequestHead, reader: &mut R) {
    if !head.expects_continue() {
        drain_request_body(head, reader);
    }
}

/// Caps the total wall-clock time a request body may take to arrive.
/// `ServerConfig::read_timeout` bounds each individual socket read; a
/// client trickling one byte per interval would pass every such check and
/// pin a worker forever, so the deadline bounds the sum. It layers
/// *under* the body reader (as the `BufRead` the framing parser reads
/// from), so chunk-size lines and trailers are covered too, not just
/// chunk data. The trip is reported through a shared cell because the
/// reader is buried inside the body reader when the caller needs it.
struct DeadlineReader<'f, R> {
    inner: R,
    deadline: Option<Instant>,
    expired: &'f std::cell::Cell<bool>,
}

impl<R> DeadlineReader<'_, R> {
    fn check(&self) -> io::Result<()> {
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.expired.set(true);
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request body deadline exceeded",
            ));
        }
        Ok(())
    }
}

impl<R: io::Read> io::Read for DeadlineReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.check()?;
        self.inner.read(buf)
    }
}

impl<R: BufRead> BufRead for DeadlineReader<'_, R> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        self.check()?;
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt);
    }
}

/// `POST /eval/{name}`: stream the request body through the engine and
/// the result back out, reporting the run's measurements as trailers.
fn eval<R: BufRead, W: Write>(
    shared: &Shared,
    head: &RequestHead,
    name: &str,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<Outcome> {
    // One id follows the request end to end: the client's (when it is
    // header-, log-, and JSON-safe) or a generated one. It rides on the
    // response head, the trailers, and the server's log line.
    let trace_id = match head.header("x-gcx-trace-id") {
        Some(v) if gcx_obs::valid_trace_id(v) => v.to_string(),
        _ => gcx_obs::trace_id(),
    };
    let traced: [(&str, &str); 1] = [("X-Gcx-Trace-Id", &trace_id)];
    if head.version != "HTTP/1.1" {
        // Streaming results require chunked transfer-encoding, which an
        // HTTP/1.0 peer must never be sent (RFC 7230 §3.3.1).
        shared.stats.client_errors.bump();
        let msg = "eval streams its result with chunked transfer-encoding; use HTTP/1.1\n";
        http::write_response(
            writer,
            505,
            "HTTP Version Not Supported",
            &traced,
            msg.as_bytes(),
            true,
        )?;
        drain_rejected(head, reader);
        return Ok(Outcome::Close);
    }
    let Some(entry) = shared
        .registry
        .read()
        .expect("registry poisoned")
        .get(name)
        .cloned()
    else {
        shared.stats.client_errors.bump();
        let msg = format!("no query named {name:?} (register with PUT /queries/{name})\n");
        http::write_response(writer, 404, "Not Found", &traced, msg.as_bytes(), true)?;
        drain_rejected(head, reader);
        return Ok(Outcome::Close);
    };

    let mut opts = match head.header("x-gcx-engine").unwrap_or("gcx") {
        "gcx" => EngineOptions::gcx(),
        "projection" => EngineOptions::projection_only(),
        "full" => EngineOptions::full_buffering(),
        other => {
            shared.stats.client_errors.bump();
            let msg = format!("unknown engine {other:?} (gcx|projection|full)\n");
            http::write_response(writer, 400, "Bad Request", &traced, msg.as_bytes(), true)?;
            drain_rejected(head, reader);
            return Ok(Outcome::Close);
        }
    };
    // Schema resolution: the query's own attachment wins (including an
    // explicit opt-out), otherwise the server-wide default applies.
    opts.schema = match &entry.schema {
        Some(per_query) => per_query.clone(),
        None => shared.config.schema.clone(),
    };
    opts.max_buffer_bytes = match effective_budget(
        shared.config.max_buffer_bytes,
        head.header("x-gcx-max-buffer-bytes"),
    ) {
        Ok(b) => b,
        Err(msg) => {
            shared.stats.client_errors.bump();
            let msg = format!("{msg}\n");
            http::write_response(writer, 400, "Bad Request", &traced, msg.as_bytes(), true)?;
            drain_rejected(head, reader);
            return Ok(Outcome::Close);
        }
    };

    if head.expects_continue() {
        writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        writer.flush()?;
    }

    let started = Instant::now();
    let eval_threads = shared.config.eval_threads;
    // The shard-path trailer only exists when the parallel budget is on:
    // at the default `eval_threads: 1` the response is bit-identical to
    // what this server always sent.
    let shard_trailer = if eval_threads > 1 {
        ", X-Gcx-Shard-Path"
    } else {
        ""
    };
    let success_head = format!(
        "HTTP/1.1 200 OK\r\n\
        Content-Type: application/xml\r\n\
        Transfer-Encoding: chunked\r\n\
        X-Gcx-Trace-Id: {trace_id}\r\n\
        Trailer: X-Gcx-Tokens, X-Gcx-Peak-Buffered-Nodes, X-Gcx-Peak-Buffer-Bytes, \
        X-Gcx-Purged-Nodes, X-Gcx-Output-Bytes, X-Gcx-Trace-Id{shard_trailer}\r\n\r\n"
    )
    .into_bytes();

    let expired = std::cell::Cell::new(false);
    let mut timed = DeadlineReader {
        inner: reader,
        deadline: shared
            .config
            .max_request_duration
            .map(|d| Instant::now() + d),
        expired: &expired,
    };
    let mut body = BodyReader::for_request(head, &mut timed)?;
    let mut out = DeferredBody::new(&mut *writer, success_head, COMMIT_THRESHOLD);
    let mut shard_path: Option<String> = None;
    let result = if eval_threads > 1 {
        eval_spooled(
            &entry.query,
            &opts,
            eval_threads,
            shared.config.max_spool_bytes,
            &mut body,
            &mut out,
            &mut shard_path,
        )
    } else {
        eval_push(&entry.query, &opts, &mut body, &mut out)
    };
    match result {
        Ok(report) => {
            let mut trailers: Vec<(&str, String)> = vec![
                ("X-Gcx-Tokens", report.tokens.to_string()),
                (
                    "X-Gcx-Peak-Buffered-Nodes",
                    report.buffer.peak_live.to_string(),
                ),
                (
                    "X-Gcx-Peak-Buffer-Bytes",
                    report.buffer.peak_live_bytes.to_string(),
                ),
                ("X-Gcx-Purged-Nodes", report.buffer.purged.to_string()),
                ("X-Gcx-Output-Bytes", report.output_bytes.to_string()),
                ("X-Gcx-Trace-Id", trace_id.clone()),
            ];
            if let Some(p) = &shard_path {
                trailers.push(("X-Gcx-Shard-Path", p.clone()));
            }
            out.finish(&trailers)?;
            shared.stats.record_eval(&report);
            entry.evals.bump();
            shared
                .metrics
                .eval_peak_buffer_bytes
                .observe(report.buffer.peak_live_bytes);
            eprintln!(
                "gcx-server: eval query={name} trace={trace_id} status=200 \
                 tokens={} peak_buffer_bytes={} dur_us={}",
                report.tokens,
                report.buffer.peak_live_bytes,
                started.elapsed().as_micros()
            );
            // `drain_input` read the body to its end, so the connection is
            // positioned at the next request.
            if body.fully_consumed() {
                Ok(Outcome::KeepAlive)
            } else {
                Ok(Outcome::Close)
            }
        }
        Err(e) => {
            let (status, reason) = if expired.get() {
                (408, "Request Timeout")
            } else {
                match &e {
                    EngineError::BufferLimitExceeded { .. } => (413, "Payload Too Large"),
                    EngineError::Xml(_) | EngineError::Query(_) => (400, "Bad Request"),
                    EngineError::Internal(_) => (500, "Internal Server Error"),
                }
            };
            match status {
                413 => shared.stats.rejected_buffer.bump(),
                400 | 408 => shared.stats.client_errors.bump(),
                _ => shared.stats.server_errors.bump(),
            }
            let msg = if expired.get() {
                "request body deadline exceeded\n".to_string()
            } else {
                format!("{e}\n")
            };
            eprintln!(
                "gcx-server: eval query={name} trace={trace_id} status={status} \
                 error={:?} dur_us={}",
                msg.trim_end(),
                started.elapsed().as_micros()
            );
            match out.fail(msg.trim_end())? {
                Some(w) => {
                    // Nothing was streamed yet: a clean, typed rejection.
                    http::write_response(w, status, reason, &traced, msg.as_bytes(), true)?;
                }
                None => {
                    // Mid-stream failure: the chunked body was terminated
                    // with an X-Gcx-Error trailer; closing is the signal.
                }
            }
            // Drain only a body that is still readable: an expired or
            // poisoned one (framing error, dead peer) would just stall
            // on the socket until the read timeout.
            if !expired.get() && !body.poisoned() {
                drain_reader(&mut body);
            }
            Ok(Outcome::Close)
        }
    }
}

/// Drive one eval request sans-IO: body chunks are pushed into the engine
/// session exactly as they come off the socket — straight out of the
/// connection's read buffer, with no `Read` adapter in between — and
/// pending output is drained to the (deferred) response writer between
/// chunks, so result bytes flow while the document is still uploading.
/// The session's resident memory is the GCX buffer plus at most one
/// partial token of spillover.
fn eval_push<R: BufRead, W: Write>(
    q: &CompiledQuery,
    opts: &EngineOptions,
    body: &mut BodyReader<'_, R>,
    out: &mut W,
) -> Result<gcx_core::RunReport, EngineError> {
    let session = q.session(opts);
    eval_push_into(session, body, out)
}

/// [`eval_push`]'s loop over an already-created (possibly pre-fed)
/// session — shared with the spool-cap overflow path of [`eval_spooled`].
fn eval_push_into<R: BufRead, W: Write>(
    mut session: gcx_core::EvalSession,
    body: &mut BodyReader<'_, R>,
    out: &mut W,
) -> Result<gcx_core::RunReport, EngineError> {
    loop {
        let fed = {
            let chunk = body.fill().map_err(|e| session.input_io_error(e))?;
            if chunk.is_empty() {
                break;
            }
            session.feed(chunk)?;
            chunk.len()
        };
        body.consume(fed);
        session.take_output(out)?;
    }
    let report = session.finish()?;
    session.take_output(out)?;
    Ok(report)
}

/// Spooled-body evaluation for `eval_threads > 1`: partition-parallel
/// runs need the whole document (shards are byte ranges), so the body is
/// read to its end first and the merged result written once evaluation
/// finishes — the streaming-while-uploading property is traded for
/// cores. Output stays byte-identical to the streaming path; the path
/// actually taken (`parallel`, `two_phase`, or an honest `serial`
/// fallback) lands in `shard_path` for the response trailer.
///
/// The spool is capped by [`ServerConfig::max_spool_bytes`]: a body that
/// outgrows it is handed — spooled prefix first, rest of the stream
/// after — to the same bounded-memory streaming loop the `eval_threads:
/// 1` path runs, so per-request memory stays governed by the buffer
/// budget no matter what clients upload.
fn eval_spooled<R: BufRead, W: Write>(
    q: &CompiledQuery,
    opts: &EngineOptions,
    threads: usize,
    spool_cap: Option<u64>,
    body: &mut BodyReader<'_, R>,
    out: &mut W,
    shard_path: &mut Option<String>,
) -> Result<gcx_core::RunReport, EngineError> {
    let mut doc = Vec::new();
    loop {
        let fed = {
            let chunk = body.fill().map_err(|e| q.session(opts).input_io_error(e))?;
            if chunk.is_empty() {
                break;
            }
            doc.extend_from_slice(chunk);
            chunk.len()
        };
        body.consume(fed);
        if spool_cap.is_some_and(|cap| doc.len() as u64 > cap) {
            *shard_path = Some(gcx_par::ShardPath::Serial.as_str().to_string());
            let mut session = q.session(opts);
            session.feed(&doc)?;
            drop(doc);
            session.take_output(out)?;
            return eval_push_into(session, body, out);
        }
    }
    let outcome =
        gcx_par::run_parallel(q, opts, &gcx_par::ParOptions::with_threads(threads), &doc)?;
    out.write_all(&outcome.output)
        .map_err(|e| q.session(opts).input_io_error(e))?;
    *shard_path = Some(outcome.path.as_str().to_string());
    Ok(outcome.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_header_tightens_but_never_loosens() {
        assert_eq!(effective_budget(None, None).unwrap(), None);
        assert_eq!(effective_budget(Some(100), None).unwrap(), Some(100));
        assert_eq!(effective_budget(None, Some("50")).unwrap(), Some(50));
        assert_eq!(effective_budget(Some(100), Some("50")).unwrap(), Some(50));
        assert_eq!(
            effective_budget(Some(100), Some("5000")).unwrap(),
            Some(100),
            "header must not loosen the server budget"
        );
        assert!(effective_budget(Some(100), Some("lots")).is_err());
        assert_eq!(
            effective_budget(None, Some("64k")).unwrap(),
            Some(64 * 1024),
            "suffixes work in the header, as the CLI help promises"
        );
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("65536"), Some(65536));
        assert_eq!(parse_byte_size(" 64k "), Some(64 << 10));
        assert_eq!(parse_byte_size("16M"), Some(16 << 20));
        assert_eq!(parse_byte_size("2g"), Some(2 << 30));
        assert_eq!(parse_byte_size(""), None);
        assert_eq!(parse_byte_size("k"), None);
        assert_eq!(parse_byte_size("1.5m"), None);
        assert_eq!(parse_byte_size(&format!("{}g", u64::MAX)), None, "overflow");
    }

    #[test]
    fn names_are_validated() {
        assert!(valid_name("q1"));
        assert!(valid_name("paper.Q6-count_2"));
        assert!(!valid_name(""));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a b"));
        assert!(!valid_name(&"x".repeat(129)));
    }
}
