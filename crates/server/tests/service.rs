//! Loopback integration tests of the whole service: correctness under
//! concurrency, clean failure isolation, admission control, budget
//! rejection, and graceful shutdown.

use gcx_server::client::{self, BodyMode};
use gcx_server::{serve, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start(config: ServerConfig) -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Some(Duration::from_secs(10)),
        ..config
    })
    .expect("bind")
}

fn offline(query: &str, doc: &[u8]) -> (Vec<u8>, gcx_core::RunReport) {
    let q = gcx_core::CompiledQuery::compile(query).unwrap();
    let mut out = Vec::new();
    let report = gcx_core::run(&q, &gcx_core::EngineOptions::gcx(), doc, &mut out).unwrap();
    (out, report)
}

const TITLES: &str = "for $b in /bib/book return $b/title";
const DOC: &[u8] = b"<bib><book><title>On Streams</title><price>9</price></book>\
    <book><title>Buffers</title></book></bib>";

#[test]
fn register_eval_roundtrip_with_trailer_stats() {
    let h = start(ServerConfig::default());
    let addr = h.addr();

    let r = client::put_query(addr, "titles", TITLES).unwrap();
    assert_eq!(r.status, 201, "{}", String::from_utf8_lossy(&r.body));
    // Re-registering replaces.
    let r = client::put_query(addr, "titles", TITLES).unwrap();
    assert_eq!(r.status, 200);

    let (expected, report) = offline(TITLES, DOC);
    for mode in [BodyMode::Sized, BodyMode::Chunked { chunk_size: 7 }] {
        let r = client::eval(addr, "titles", DOC, &[], mode).unwrap();
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        assert_eq!(r.body, expected, "mode {mode:?}");
        assert_eq!(r.trailer_u64("x-gcx-tokens"), Some(report.tokens));
        assert_eq!(
            r.trailer_u64("x-gcx-peak-buffered-nodes"),
            Some(report.buffer.peak_live)
        );
        assert_eq!(
            r.trailer_u64("x-gcx-peak-buffer-bytes"),
            Some(report.buffer.peak_live_bytes)
        );
        assert_eq!(
            r.trailer_u64("x-gcx-purged-nodes"),
            Some(report.buffer.purged)
        );
        assert_eq!(
            r.trailer_u64("x-gcx-output-bytes"),
            Some(expected.len() as u64)
        );
    }

    let r = client::get(addr, "/queries").unwrap();
    assert_eq!(String::from_utf8_lossy(&r.body), "titles\n");
    let r = client::get(addr, "/queries/titles").unwrap();
    assert!(String::from_utf8_lossy(&r.body).contains("signOff"));
    h.shutdown();
}

#[test]
fn expect_continue_is_gated_on_the_checks() {
    use std::io::{BufRead, BufReader, Read};

    let h = start(ServerConfig::default());
    let addr = h.addr();
    let r = client::put_query(addr, "titles", TITLES).unwrap();
    assert_eq!(r.status, 201);

    // Reject path: unknown query. The server must answer 404 straight
    // away WITHOUT sending `100 Continue` — the client then never uploads
    // the document (we deliberately send no body here; the server must
    // not stall waiting for one).
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        b"POST /eval/nope HTTP/1.1\r\nHost: x\r\nContent-Length: 1000000\r\n\
          Expect: 100-continue\r\n\r\n",
    )
    .unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = Vec::new();
    s.read_to_end(&mut reply).unwrap();
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
    assert!(!reply.contains("100 Continue"), "{reply}");

    // Accept path: the interim `100 Continue` arrives only after the
    // lookup and option checks passed; the body is uploaded after it.
    let doc = b"<bib><book><title>T</title></book></bib>";
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(
        format!(
            "POST /eval/titles HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\
             Expect: 100-continue\r\nConnection: close\r\n\r\n",
            doc.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut interim = String::new();
    reader.read_line(&mut interim).unwrap();
    assert!(interim.starts_with("HTTP/1.1 100"), "{interim}");
    let mut blank = String::new();
    reader.read_line(&mut blank).unwrap(); // end of the interim response
    s.write_all(doc).unwrap();
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    let rest = String::from_utf8_lossy(&rest);
    assert!(rest.starts_with("HTTP/1.1 200"), "{rest}");
    assert!(rest.contains("<title>T</title>"), "{rest}");
    h.shutdown();
}

#[test]
fn concurrent_clients_get_byte_identical_results() {
    // A real XMark document and three queries with different buffering
    // profiles, hammered by concurrent clients; every response must be
    // byte-identical to the offline engine.
    let mut doc = Vec::new();
    gcx_xmark::generate(&gcx_xmark::XmarkConfig::sized(300 * 1024), &mut doc).unwrap();
    let queries: Vec<(&str, &str)> = vec![
        ("q1", gcx_xmark::queries::Q1),
        ("q13", gcx_xmark::queries::Q13),
        ("q20", gcx_xmark::queries::Q20),
    ];

    let h = start(ServerConfig {
        workers: 6,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    for (name, text) in &queries {
        let r = client::put_query(addr, name, text).unwrap();
        assert_eq!(r.status, 201, "{}", String::from_utf8_lossy(&r.body));
    }
    let expected: Vec<(String, Vec<u8>, u64)> = queries
        .iter()
        .map(|(name, text)| {
            let (out, report) = offline(text, &doc);
            (name.to_string(), out, report.buffer.peak_live)
        })
        .collect();

    std::thread::scope(|scope| {
        for client_id in 0..6 {
            let doc = &doc;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..3 {
                    let (name, want, peak) = &expected[(client_id + round) % expected.len()];
                    let mode = if client_id % 2 == 0 {
                        BodyMode::Sized
                    } else {
                        BodyMode::Chunked {
                            chunk_size: 64 * 1024,
                        }
                    };
                    let r = client::eval(addr, name, doc, &[], mode).unwrap();
                    assert_eq!(r.status, 200);
                    assert_eq!(
                        r.body, *want,
                        "client {client_id} round {round} ({name}) diverged"
                    );
                    assert_eq!(
                        r.trailer_u64("x-gcx-peak-buffered-nodes"),
                        Some(*peak),
                        "buffer peak must match the offline engine exactly"
                    );
                }
            });
        }
    });

    // The trailers reach the client a hair before the server folds the
    // run into its counters; poll instead of racing.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let r = client::get(addr, "/stats").unwrap();
        let stats = String::from_utf8_lossy(&r.body).to_string();
        if stats.contains("\"runs\":18") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stats never reached 18 runs: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    h.shutdown();
}

#[test]
fn concurrent_requests_share_one_compiled_program_without_recompiling() {
    // The registry stores the fully lowered program (`gcx-ir`); the eval
    // hot path must not compile or lower anything. Two concurrent
    // requests against one registry entry: identical bytes, and the
    // compilation counter stays at the single PUT.
    let h = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    let r = client::put_query(addr, "titles", TITLES).unwrap();
    assert_eq!(r.status, 201);

    let (expected, _) = offline(TITLES, DOC);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let expected = &expected;
                scope.spawn(move || {
                    let r = client::eval(addr, "titles", DOC, &[], BodyMode::Sized).unwrap();
                    assert_eq!(r.status, 200, "request {i}");
                    assert_eq!(&r.body, expected, "request {i}");
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("concurrent eval panicked");
        }
    });

    // The response is on the wire before the worker folds its counters
    // in; poll briefly for the second run to land.
    let mut stats = String::new();
    for _ in 0..50 {
        let r = client::get(addr, "/stats").unwrap();
        stats = String::from_utf8_lossy(&r.body).to_string();
        if stats.contains("\"runs\":2") {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(stats.contains("\"runs\":2"), "{stats}");
    assert!(
        stats.contains("\"queries_compiled\":1"),
        "evals must not recompile: {stats}"
    );
    h.shutdown();
}

#[test]
fn malformed_xml_is_a_clean_error_and_the_server_survives() {
    let h = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    client::put_query(addr, "titles", TITLES).unwrap();

    // Mismatched end tag: rejected before any output streamed.
    let r = client::eval(addr, "titles", b"<bib><book></bib>", &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 400, "{}", String::from_utf8_lossy(&r.body));
    assert!(
        String::from_utf8_lossy(&r.body).contains("XML"),
        "{}",
        String::from_utf8_lossy(&r.body)
    );

    // Truncated body (connection dies mid-document): the worker survives.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /eval/titles HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n<bib>")
            .unwrap();
        s.flush().unwrap();
        // Drop mid-body.
    }

    // The same server keeps serving correct results afterwards.
    let (expected, _) = offline(TITLES, DOC);
    let r = client::eval(addr, "titles", DOC, &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body, expected);
    h.shutdown();
}

#[test]
fn buffer_budget_rejects_with_413_without_killing_peers() {
    // Q8-style join buffering on a document big enough to cross a small
    // budget, while an unbudgeted peer runs the same document.
    let mut doc = String::from("<bib>");
    for i in 0..2_000 {
        doc.push_str(&format!("<book><title>number {i}</title></book>"));
    }
    doc.push_str("</bib>");
    // `exists` over the whole loop makes this buffer every book first.
    let blocking = "<r>{ for $b in /bib/book return $b/title }</r>";

    let h = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    client::put_query(addr, "q", blocking).unwrap();

    let doc = doc.into_bytes();
    std::thread::scope(|scope| {
        let capped = scope.spawn(|| {
            client::eval(
                addr,
                "q",
                &doc,
                &[("X-Gcx-Max-Buffer-Bytes", "512")],
                BodyMode::Sized,
            )
            .unwrap()
        });
        let free = scope.spawn(|| client::eval(addr, "q", &doc, &[], BodyMode::Sized).unwrap());

        let capped = capped.join().unwrap();
        assert_eq!(
            capped.status,
            413,
            "{}",
            String::from_utf8_lossy(&capped.body)
        );
        assert!(
            String::from_utf8_lossy(&capped.body).contains("buffer limit exceeded"),
            "{}",
            String::from_utf8_lossy(&capped.body)
        );

        let free = free.join().unwrap();
        assert_eq!(free.status, 200, "peer must be unaffected by the 413");
        let (expected, _) = offline(blocking, &doc);
        assert_eq!(free.body, expected);
    });

    let r = client::get(addr, "/stats").unwrap();
    assert!(
        String::from_utf8_lossy(&r.body).contains("\"rejected_buffer\":1"),
        "{}",
        String::from_utf8_lossy(&r.body)
    );
    h.shutdown();
}

#[test]
fn saturation_yields_immediate_503() {
    let h = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    client::put_query(addr, "titles", TITLES).unwrap();

    // Occupy the single worker: an eval whose body never finishes.
    let mut held = TcpStream::connect(addr).unwrap();
    held.write_all(b"POST /eval/titles HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n<bib>")
        .unwrap();
    held.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Fill the admission queue with a second idle connection.
    let queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The third connection must be bounced immediately.
    let r = client::get(addr, "/healthz").unwrap();
    assert_eq!(r.status, 503);
    assert_eq!(r.header("retry-after"), Some("1"));

    // Release the worker and the queued connection so shutdown drains
    // without waiting out read timeouts, then verify recovery.
    drop(held);
    drop(queued);
    std::thread::sleep(Duration::from_millis(100));
    let r = client::get(addr, "/healthz").unwrap();
    assert_eq!(r.status, 200, "server must recover once the pool frees up");
    h.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let h = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    client::put_query(addr, "titles", TITLES).unwrap();

    // A request whose body arrives slowly, still in flight when shutdown
    // lands on the other worker.
    let slow = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        writer
            .write_all(
                format!(
                    "POST /eval/titles HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
                    DOC.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let (head, tail) = DOC.split_at(DOC.len() / 2);
        writer.write_all(head).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(300));
        writer.write_all(tail).unwrap();
        writer.flush().unwrap();
        client::read_response(&mut reader).unwrap()
    });

    std::thread::sleep(Duration::from_millis(100));
    let r = client::request(addr, "POST", "/shutdown", &[], b"", BodyMode::Sized).unwrap();
    assert_eq!(r.status, 200);

    let response = slow.join().unwrap();
    assert_eq!(response.status, 200, "in-flight request must complete");
    let (expected, _) = offline(TITLES, DOC);
    assert_eq!(response.body, expected);

    h.join();
    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "server must stop accepting after shutdown"
    );
}

#[test]
fn unknown_routes_queries_and_engines_fail_cleanly() {
    let h = start(ServerConfig::default());
    let addr = h.addr();

    let r = client::get(addr, "/nope").unwrap();
    assert_eq!(r.status, 404);

    let r = client::eval(addr, "ghost", DOC, &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 404);

    let r = client::put_query(addr, "bad", "for $x in").unwrap();
    assert_eq!(r.status, 400);
    assert!(String::from_utf8_lossy(&r.body).contains("does not compile"));

    let r = client::put_query(addr, "weird/name", TITLES).unwrap();
    assert_eq!(r.status, 404, "slash in name changes the route");

    client::put_query(addr, "titles", TITLES).unwrap();
    let r = client::eval(
        addr,
        "titles",
        DOC,
        &[("X-Gcx-Engine", "quantum")],
        BodyMode::Sized,
    )
    .unwrap();
    assert_eq!(r.status, 400);

    let r = client::request(addr, "DELETE", "/queries/titles", &[], b"", BodyMode::Sized).unwrap();
    assert_eq!(r.status, 204);
    let r = client::request(addr, "DELETE", "/queries/titles", &[], b"", BodyMode::Sized).unwrap();
    assert_eq!(r.status, 404);
    h.shutdown();
}

#[test]
fn eval_threads_spools_partitions_and_reports_the_path() {
    // A server with a parallel eval budget: shard-safe queries take the
    // partitioned path (X-Gcx-Shard-Path: parallel), root-binding ones
    // fall back honestly (serial) — and outputs are byte-identical to
    // the offline engine either way.
    let mut cfg = gcx_xmark::XmarkConfig::sized(96 * 1024);
    cfg.seed = 11;
    let doc = gcx_xmark::generate_string(&cfg).into_bytes();
    let items = "for $r in /site/regions return for $i in $r//item return $i/name";
    let root = "for $s in /site return $s/people";

    let h = start(ServerConfig {
        eval_threads: 4,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    client::put_query(addr, "items", items).unwrap();
    client::put_query(addr, "root", root).unwrap();

    let (expected, report) = offline(items, &doc);
    for mode in [BodyMode::Sized, BodyMode::Chunked { chunk_size: 4096 }] {
        let r = client::eval(addr, "items", &doc, &[], mode).unwrap();
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        assert_eq!(r.body, expected, "mode {mode:?}");
        assert_eq!(r.trailer("x-gcx-shard-path"), Some("parallel"));
        // The aggregate report keeps the serial contract where it can:
        // no shard may buffer past the serial peak.
        assert!(r.trailer_u64("x-gcx-peak-buffered-nodes").unwrap() <= report.buffer.peak_live);
        assert_eq!(
            r.trailer_u64("x-gcx-output-bytes"),
            Some(expected.len() as u64)
        );
    }

    let (expected, _) = offline(root, &doc);
    let r = client::eval(addr, "root", &doc, &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body, expected);
    assert_eq!(r.trailer("x-gcx-shard-path"), Some("serial"));
    h.shutdown();

    // At the default budget the trailer does not exist at all: the
    // streaming path is bit-identical to what the server always sent.
    let h = start(ServerConfig::default());
    let addr = h.addr();
    client::put_query(addr, "items", items).unwrap();
    let r = client::eval(addr, "items", &doc, &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.trailer("x-gcx-shard-path"), None);
    h.shutdown();
}

#[test]
fn spool_cap_overflows_to_the_streaming_path() {
    // A body larger than max_spool_bytes must not be held in memory for
    // partitioning: the request is handed to the bounded-memory
    // streaming path mid-upload, answers 200 with byte-identical output,
    // and reports the serial path honestly.
    let mut cfg = gcx_xmark::XmarkConfig::sized(96 * 1024);
    cfg.seed = 11;
    let doc = gcx_xmark::generate_string(&cfg).into_bytes();
    let items = "for $r in /site/regions return for $i in $r//item return $i/name";

    let h = start(ServerConfig {
        eval_threads: 4,
        max_spool_bytes: Some(16 * 1024),
        ..ServerConfig::default()
    });
    let addr = h.addr();
    client::put_query(addr, "items", items).unwrap();

    let (expected, _) = offline(items, &doc);
    for mode in [BodyMode::Sized, BodyMode::Chunked { chunk_size: 4096 }] {
        let r = client::eval(addr, "items", &doc, &[], mode).unwrap();
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        assert_eq!(r.body, expected, "mode {mode:?}");
        assert_eq!(
            r.trailer("x-gcx-shard-path"),
            Some("serial"),
            "mode {mode:?}"
        );
    }

    h.shutdown();
    // Under-cap partitioning on the same query is pinned by
    // eval_threads_spools_partitions_and_reports_the_path, which runs
    // with the default (256m) cap in place.
}

#[test]
fn alternate_engines_and_healthz() {
    let h = start(ServerConfig::default());
    let addr = h.addr();
    let r = client::get(addr, "/healthz").unwrap();
    assert_eq!(r.status, 200);

    client::put_query(addr, "titles", TITLES).unwrap();
    let (expected, _) = offline(TITLES, DOC);
    for engine in ["projection", "full"] {
        let r = client::eval(
            addr,
            "titles",
            DOC,
            &[("X-Gcx-Engine", engine)],
            BodyMode::Sized,
        )
        .unwrap();
        assert_eq!(r.status, 200, "engine {engine}");
        assert_eq!(r.body, expected, "engine {engine} output");
    }
    h.shutdown();
}

#[test]
fn bodyless_routes_consume_stray_bodies_on_keep_alive() {
    use std::io::Read;

    // A client that attaches a body to GET must not desync the keep-alive
    // stream: the next request on the same connection still parses.
    let h = start(ServerConfig::default());
    let addr = h.addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello\
          GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut wire = String::new();
    s.read_to_string(&mut wire).unwrap();
    assert_eq!(
        wire.matches("HTTP/1.1 200").count(),
        2,
        "both requests must succeed on one connection: {wire}"
    );
    assert!(
        wire.contains("\"accepted\""),
        "second response is the stats JSON: {wire}"
    );
    assert_eq!(
        wire.matches("Content-Type:").count(),
        2,
        "exactly one Content-Type per response: {wire}"
    );
    h.shutdown();
}

#[test]
fn trickled_uploads_hit_the_request_deadline() {
    let h = start(ServerConfig {
        workers: 2,
        max_request_duration: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let addr = h.addr();
    client::put_query(addr, "titles", TITLES).unwrap();

    // One byte at a time, each gap under the socket read timeout: only
    // the total-duration deadline can stop this.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    writer
        .write_all(b"POST /eval/titles HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n<bib>")
        .unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(450));
    let _ = writer.write_all(b"<");
    let _ = writer.flush();
    let r = client::read_response(&mut reader).unwrap();
    assert_eq!(r.status, 408, "{}", String::from_utf8_lossy(&r.body));

    // The worker is free again immediately.
    let (expected, _) = offline(TITLES, DOC);
    let r = client::eval(addr, "titles", DOC, &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body, expected);
    h.shutdown();
}

#[test]
fn early_rejection_with_large_body_is_still_readable() {
    // A 404 for an unregistered query must survive a multi-megabyte body
    // already in flight (the server drains before closing, so no TCP
    // reset destroys the response).
    let h = start(ServerConfig::default());
    let addr = h.addr();
    let big = vec![b'x'; 2 * 1024 * 1024];
    let r = client::eval(addr, "ghost", &big, &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 404);
    assert!(String::from_utf8_lossy(&r.body).contains("no query named"));
    h.shutdown();
}

#[test]
fn shutdown_interrupts_idle_keepalive_connections() {
    // With no read timeout at all, a worker parked on an idle keep-alive
    // connection can only exit if shutdown interrupts its wait.
    let h = serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        read_timeout: None,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = h.addr();

    // Park a worker: one completed request, then the connection idles.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    writer.flush().unwrap();
    let r = client::read_response(&mut reader).unwrap();
    assert_eq!(r.status, 200);

    let started = std::time::Instant::now();
    h.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must interrupt the idle wait, took {:?}",
        started.elapsed()
    );
}

#[test]
fn registry_is_bounded() {
    let h = serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_queries: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = h.addr();
    assert_eq!(client::put_query(addr, "a", TITLES).unwrap().status, 201);
    assert_eq!(client::put_query(addr, "b", TITLES).unwrap().status, 201);
    let r = client::put_query(addr, "c", TITLES).unwrap();
    assert_eq!(r.status, 429, "{}", String::from_utf8_lossy(&r.body));
    assert!(String::from_utf8_lossy(&r.body).contains("registry full"));
    // Replacing an existing entry is always allowed ...
    assert_eq!(client::put_query(addr, "a", TITLES).unwrap().status, 200);
    // ... and deleting frees a slot.
    let r = client::request(addr, "DELETE", "/queries/b", &[], b"", BodyMode::Sized).unwrap();
    assert_eq!(r.status, 204);
    assert_eq!(client::put_query(addr, "c", TITLES).unwrap().status, 201);
    h.shutdown();
}

#[test]
fn http10_eval_is_rejected_not_garbled() {
    use std::io::Read;

    let h = start(ServerConfig::default());
    let addr = h.addr();
    client::put_query(addr, "titles", TITLES).unwrap();
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        format!(
            "POST /eval/titles HTTP/1.0\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            DOC.len()
        )
        .as_bytes(),
    )
    .unwrap();
    s.write_all(DOC).unwrap();
    let mut wire = String::new();
    s.read_to_string(&mut wire).unwrap();
    assert!(
        wire.starts_with("HTTP/1.1 505"),
        "HTTP/1.0 peers must never receive chunked framing: {wire}"
    );
    h.shutdown();
}

#[test]
fn metrics_exposition_is_valid_prometheus() {
    let h = start(ServerConfig::default());
    let addr = h.addr();
    client::put_query(addr, "titles", TITLES).unwrap();
    let r = client::eval(addr, "titles", DOC, &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 200);

    // The response reaches the wire a hair before the worker folds its
    // counters in; poll for the eval to land.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let text = loop {
        let r = client::get(addr, "/metrics").unwrap();
        assert_eq!(r.status, 200);
        assert!(
            r.header("content-type")
                .is_some_and(|v| v.contains("version=0.0.4")),
            "exposition content type: {:?}",
            r.header("content-type")
        );
        let text = String::from_utf8(r.body).unwrap();
        if text.contains("gcx_eval_runs_total 1") {
            break text;
        }
        assert!(std::time::Instant::now() < deadline, "eval never landed");
        std::thread::sleep(Duration::from_millis(20));
    };

    // Format validation: every line is a HELP/TYPE comment or a
    // `name{labels} value` sample with a numeric value.
    for line in text.lines() {
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line:?}");
    }
    for needle in [
        "# TYPE gcx_request_duration_microseconds histogram",
        "gcx_request_duration_microseconds_bucket{outcome=\"2xx\",le=\"+Inf\"}",
        "gcx_query_evals_total{query=\"titles\"} 1",
        "gcx_workers 4",
        "gcx_admission_wait_microseconds_count",
        "gcx_eval_peak_buffer_bytes_bucket",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The /stats JSON grew per-query eval counts and integer uptime.
    let r = client::get(addr, "/stats").unwrap();
    let stats = String::from_utf8(r.body).unwrap();
    assert!(
        stats.contains("\"per_query\":{\"titles\":1}"),
        "per-query counts in /stats: {stats}"
    );
    assert!(stats.contains("\"uptime_secs\":"), "{stats}");
    h.shutdown();
}

#[test]
fn trace_ids_flow_end_to_end() {
    let h = start(ServerConfig::default());
    let addr = h.addr();
    client::put_query(addr, "titles", TITLES).unwrap();

    // A well-formed client id is propagated verbatim: response header,
    // trailer, both.
    let r = client::eval(
        addr,
        "titles",
        DOC,
        &[("X-Gcx-Trace-Id", "req-abc.123")],
        BodyMode::Sized,
    )
    .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-gcx-trace-id"), Some("req-abc.123"));
    assert_eq!(r.trailer("x-gcx-trace-id"), Some("req-abc.123"));

    // No client id: the server mints one (16 hex digits).
    let r = client::eval(addr, "titles", DOC, &[], BodyMode::Sized).unwrap();
    let minted = r
        .header("x-gcx-trace-id")
        .expect("generated id")
        .to_string();
    assert_eq!(minted.len(), 16, "{minted}");
    assert!(minted.bytes().all(|b| b.is_ascii_hexdigit()), "{minted}");
    assert_eq!(r.trailer("x-gcx-trace-id"), Some(minted.as_str()));

    // A malformed id (header-splitting material) is replaced, never echoed.
    let r = client::eval(
        addr,
        "titles",
        DOC,
        &[("X-Gcx-Trace-Id", "bad id?")],
        BodyMode::Sized,
    )
    .unwrap();
    let replaced = r.header("x-gcx-trace-id").expect("replacement id");
    assert_ne!(replaced, "bad id?");
    assert!(
        replaced
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"._-".contains(&b)),
        "{replaced}"
    );

    // Error responses carry the id too.
    let r = client::eval(
        addr,
        "ghost",
        DOC,
        &[("X-Gcx-Trace-Id", "lost-req-7")],
        BodyMode::Sized,
    )
    .unwrap();
    assert_eq!(r.status, 404);
    assert_eq!(r.header("x-gcx-trace-id"), Some("lost-req-7"));
    h.shutdown();
}

#[test]
fn malformed_body_framing_gets_a_400_not_a_reset() {
    use std::io::Read;

    let h = start(ServerConfig::default());
    let addr = h.addr();
    client::put_query(addr, "titles", TITLES).unwrap();
    for req in [
        // Unparseable Content-Length.
        "POST /eval/titles HTTP/1.1\r\nHost: x\r\nContent-Length: abc\r\n\r\n",
        // Broken chunk-size line.
        "POST /eval/titles HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
    ] {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(req.as_bytes()).unwrap();
        let mut wire = String::new();
        s.read_to_string(&mut wire).unwrap();
        assert!(
            wire.starts_with("HTTP/1.1 400"),
            "bad framing must get a response, got: {wire:?}"
        );
    }
    h.shutdown();
}

/// Q8's shape: a value join the classifier marks `document`.
const JOIN_QUERY: &str = "for $p in /site/people/person return \
     for $t in /site/closed_auctions/closed_auction return \
       if ($t/buyer/@person = $p/@id) then $p/name else ()";

#[test]
fn admission_policy_rejects_document_class_queries() {
    let h = start(ServerConfig {
        admission_class: Some(gcx_analyze::StreamClass::PerItem),
        ..ServerConfig::default()
    });
    let addr = h.addr();

    // Streaming query: admitted, class reported.
    let r = client::put_query(addr, "titles", TITLES).unwrap();
    assert_eq!(r.status, 201, "{}", String::from_utf8_lossy(&r.body));
    assert_eq!(r.header("x-gcx-streamability"), Some("per-item"));

    // Document-class join: refused with diagnostics, nothing registered.
    let r = client::put_query(addr, "join", JOIN_QUERY).unwrap();
    assert_eq!(r.status, 422, "{}", String::from_utf8_lossy(&r.body));
    assert_eq!(r.header("x-gcx-streamability"), Some("document"));
    let body = String::from_utf8_lossy(&r.body);
    assert!(
        body.contains("exceeds the server's `per-item` admission cap"),
        "{body}"
    );
    assert!(body.contains("GCX-JOIN"), "{body}");
    let r = client::get(addr, "/queries").unwrap();
    assert_eq!(String::from_utf8_lossy(&r.body), "titles\n");
    // The refused name does not evaluate.
    let r = client::eval(addr, "join", DOC, &[], BodyMode::Sized).unwrap();
    assert_eq!(r.status, 404);
    h.shutdown();
}

#[test]
fn default_policy_admits_everything_and_reports_class() {
    let h = start(ServerConfig::default());
    let addr = h.addr();
    let r = client::put_query(addr, "join", JOIN_QUERY).unwrap();
    assert_eq!(r.status, 201, "{}", String::from_utf8_lossy(&r.body));
    assert_eq!(r.header("x-gcx-streamability"), Some("document"));
    // The warning rides along in the body, after the confirmation line.
    let body = String::from_utf8_lossy(&r.body);
    assert!(body.starts_with("compiled query \"join\"\n"), "{body}");
    assert!(body.contains("warning: [GCX-JOIN]"), "{body}");
    h.shutdown();
}
