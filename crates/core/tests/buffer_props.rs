//! Model-based property tests for the buffer tree: random interleavings of
//! stream-shaped construction, role decrements, pins and closes must keep
//! the aggregate counters consistent (`check_integrity`) and obey the GC
//! contract (nodes with live roles/pins in their subtree are never freed;
//! fully dead closed subtrees are always freed).

#![cfg(feature = "proptest")]
// Gated: requires the external `proptest` crate, unavailable in offline
// builds (see crates/shims/README.md).
use gcx_core::buffer::{BufferTree, NodeId, Ordinals};
use gcx_query::ast::RoleId;
use gcx_xml::Symbol;
use proptest::prelude::*;

/// A scripted operation on the buffer.
#[derive(Debug, Clone)]
enum Op {
    /// Open a child element under the current node with `n` role instances
    /// of role `r`.
    Open { role: u8, count: u8 },
    /// Append a closed text child.
    Text { role: u8, count: u8 },
    /// Close the current node (move the cursor up).
    Close,
    /// Decrement a role on a random previously created node.
    Decrement { node_idx: u16, role: u8, amount: u8 },
    /// Pin a random node.
    Pin { node_idx: u16 },
    /// Unpin (only executed if we pinned it before).
    Unpin { node_idx: u16 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..4, 0u8..3).prop_map(|(role, count)| Op::Open { role, count }),
        2 => (0u8..4, 0u8..3).prop_map(|(role, count)| Op::Text { role, count }),
        4 => Just(Op::Close),
        3 => (0u16..64, 0u8..4, 1u8..3)
            .prop_map(|(node_idx, role, amount)| Op::Decrement { node_idx, role, amount }),
        1 => (0u16..64u16,).prop_map(|(node_idx,)| Op::Pin { node_idx }),
        1 => (0u16..64u16,).prop_map(|(node_idx,)| Op::Unpin { node_idx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn random_op_sequences_keep_invariants(ops in prop::collection::vec(op(), 1..120)) {
        let mut buf = BufferTree::new(true);
        // Stream cursor: stack of open nodes.
        let mut open: Vec<NodeId> = vec![NodeId::ROOT];
        // All created nodes (may be dead).
        let mut created: Vec<NodeId> = Vec::new();
        // Pins we hold: (node, count).
        let mut pins: Vec<NodeId> = Vec::new();
        let mut child_seq = 0u32;

        for op in ops {
            match op {
                Op::Open { role, count } => {
                    let parent = *open.last().unwrap();
                    child_seq += 1;
                    let ords = Ordinals { same_kind: child_seq, elem: child_seq, any: child_seq };
                    let roles: &[(RoleId, u32)] = &[(RoleId(role as u32), count as u32)];
                    let roles = if count == 0 { &[][..] } else { roles };
                    let id = buf.append_element(parent, Symbol(role as u32), Box::new([]), roles, ords);
                    open.push(id);
                    created.push(id);
                }
                Op::Text { role, count } => {
                    let parent = *open.last().unwrap();
                    // Engine contract: role-less text is only ever buffered
                    // below an element that will close (and purge it); the
                    // preprojector never appends role-less text at the
                    // document level. Model that contract here.
                    if count == 0 && parent == NodeId::ROOT {
                        continue;
                    }
                    child_seq += 1;
                    let ords = Ordinals { same_kind: child_seq, elem: child_seq, any: child_seq };
                    let roles: &[(RoleId, u32)] = &[(RoleId(role as u32), count as u32)];
                    let roles = if count == 0 { &[][..] } else { roles };
                    let id = buf.append_text(parent, "t", roles, ords);
                    created.push(id);
                }
                Op::Close => {
                    if open.len() > 1 {
                        let id = open.pop().unwrap();
                        buf.close(id);
                    }
                }
                Op::Decrement { node_idx, role, amount } => {
                    if let Some(&id) = created.get(node_idx as usize) {
                        // The node may have been purged: only touch live ids.
                        if is_live(&buf, id, &open, &pins) {
                            buf.decrement_role(id, RoleId(role as u32), amount as u32);
                        }
                    }
                }
                Op::Pin { node_idx } => {
                    if let Some(&id) = created.get(node_idx as usize) {
                        if is_live(&buf, id, &open, &pins) {
                            buf.pin(id);
                            pins.push(id);
                        }
                    }
                }
                Op::Unpin { node_idx } => {
                    if let Some(&id) = created.get(node_idx as usize) {
                        if let Some(pos) = pins.iter().position(|&p| p == id) {
                            pins.remove(pos);
                            buf.unpin(id);
                        }
                    }
                }
            }
            buf.check_integrity();
        }
        // Drain: close everything, release pins, decrement all roles.
        while open.len() > 1 {
            let id = open.pop().unwrap();
            buf.close(id);
        }
        for id in pins.drain(..) {
            buf.unpin(id);
        }
        buf.check_integrity();
        // Remove every remaining role instance: the buffer must empty.
        // A decrement can purge the node (and relatives), so re-check
        // liveness before every touch.
        for &id in &created {
            for r in 0..4u32 {
                if is_live(&buf, id, &open, &pins) {
                    buf.decrement_role(id, RoleId(r), u32::MAX);
                }
            }
        }
        buf.close(NodeId::ROOT);
        buf.check_integrity();
        prop_assert_eq!(buf.stats().live, 0, "fully signed-off closed buffer must drain");
    }
}

/// Conservative liveness check: a created node is known-live if it is still
/// reachable from the root (the buffer reuses slots, so a stale id could
/// alias a new node; walking down from the root avoids the debug
/// generation assertion entirely).
fn is_live(buf: &BufferTree, id: NodeId, open: &[NodeId], pins: &[NodeId]) -> bool {
    // Open nodes and pinned nodes are always live.
    if open.contains(&id) || pins.contains(&id) {
        return true;
    }
    fn walk(buf: &BufferTree, cur: NodeId, target: NodeId) -> bool {
        if cur == target {
            return true;
        }
        let mut child = buf.first_child(cur);
        while let Some(c) = child {
            if walk(buf, c, target) {
                return true;
            }
            child = buf.next_sibling(c);
        }
        false
    }
    walk(buf, NodeId::ROOT, id)
}
