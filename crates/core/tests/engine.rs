//! End-to-end engine tests: the paper's running example, blocking
//! semantics, joins, attribute handling, and the three buffer-management
//! configurations compared on identical inputs.

use gcx_core::{run, run_query, CompiledQuery, EngineOptions};

const PAPER_QUERY: &str = r#"
    <r> {
      for $bib in /bib return
        (for $x in $bib/* return
           if (not(exists($x/price))) then $x else (),
         for $b in $bib/book return $b/title)
    } </r>
"#;

/// Run with explicit options, returning (output, report).
fn run_with(query: &str, input: &str, opts: &EngineOptions) -> (String, gcx_core::RunReport) {
    let q = CompiledQuery::compile(query).unwrap();
    let mut out = Vec::new();
    let report = run(&q, opts, input.as_bytes(), &mut out)
        .unwrap_or_else(|e| panic!("engine failed: {e}\nquery: {query}"));
    (String::from_utf8(out).unwrap(), report)
}

fn gcx(query: &str, input: &str) -> (String, gcx_core::RunReport) {
    run_with(query, input, &EngineOptions::gcx())
}

#[test]
fn paper_running_example_output() {
    // Figure 1's document: the book has no price, so the first loop emits
    // it; the second loop emits its title.
    let (out, _) = gcx(PAPER_QUERY, "<bib><book><title/><author/></book></bib>");
    assert_eq!(out, "<r><book><title/><author/></book><title/></r>");
}

#[test]
fn paper_example_with_prices_suppresses_output() {
    let (out, _) = gcx(
        PAPER_QUERY,
        "<bib><article><price/></article><book><title/><price/></book></bib>",
    );
    // Both children have prices: first loop emits nothing; second emits
    // the book title.
    assert_eq!(out, "<r><title/></r>");
}

#[test]
fn buffer_drains_to_zero_with_active_gc() {
    // The balance invariant: every role instance assigned is signed off;
    // the buffer ends empty (up to the virtual root).
    let input = "<bib><article><price/></article><article/>\
                 <book><title>T1</title></book><book><title>T2</title><price/></book></bib>";
    let (_, report) = gcx(PAPER_QUERY, input);
    assert_eq!(report.buffer.live, 0, "buffer must drain completely");
    assert!(report.buffer.purged >= report.buffer.allocated);
}

#[test]
fn three_configurations_agree_on_results() {
    let queries = [
        PAPER_QUERY,
        "for $x in /site/a return if ($x/v > 3) then $x/name else ()",
        "<o>{ for $x in //item return $x/name/text() }</o>",
        "for $p in /db/p return for $q in /db/q return if ($q/ref = $p/id) then <m>{ $p/id, $q/ref }</m>",
    ];
    let inputs = [
        "<bib><book><title>a</title></book><article><price/><title>x</title></article></bib>",
        "<site><a><v>5</v><name>n1</name></a><a><v>2</v><name>n2</name></a></site>",
        "<r><item><name>one</name></item><x><item><name>two</name></item></x></r>",
        "<db><p><id>1</id></p><p><id>2</id></p><q><ref>2</ref></q><q><ref>3</ref></q></db>",
    ];
    for query in &queries {
        for input in &inputs {
            let (a, ra) = run_with(query, input, &EngineOptions::gcx());
            let (b, rb) = run_with(query, input, &EngineOptions::projection_only());
            let (c, rc) = run_with(query, input, &EngineOptions::full_buffering());
            assert_eq!(a, b, "gcx vs projection-only\n{query}\n{input}");
            assert_eq!(a, c, "gcx vs full-buffering\n{query}\n{input}");
            // The memory hierarchy the paper's evaluation rests on.
            assert!(
                ra.buffer.peak_live <= rb.buffer.peak_live,
                "gcx peak must not exceed projection-only peak"
            );
            assert!(
                rb.buffer.peak_live <= rc.buffer.peak_live,
                "projection-only peak must not exceed full buffering"
            );
        }
    }
}

#[test]
fn gcx_strictly_beats_projection_on_iterated_data() {
    // Ten articles, each releasable right after its iteration: GCX's peak
    // stays O(1) while projection-only accumulates all ten.
    let mut doc = String::from("<bib>");
    for _ in 0..10 {
        doc.push_str("<article><author/><title/><price/></article>");
    }
    doc.push_str("</bib>");
    let (_, ra) = run_with(PAPER_QUERY, &doc, &EngineOptions::gcx());
    let (_, rb) = run_with(PAPER_QUERY, &doc, &EngineOptions::projection_only());
    assert!(
        ra.buffer.peak_live < rb.buffer.peak_live / 2,
        "active GC must keep the buffer much smaller: {} vs {}",
        ra.buffer.peak_live,
        rb.buffer.peak_live
    );
}

#[test]
fn join_query_is_blocking_but_correct() {
    // Q8-style value join between two document sections.
    let query = "
        <result> {
          for $p in /db/people/person return
            <pair> {
              $p/name,
              for $c in /db/sales/sale return
                if ($c/buyer = $p/name) then $c/item else ()
            } </pair>
        } </result>";
    let input = "<db>\
        <people><person><name>ann</name></person><person><name>bob</name></person></people>\
        <sales><sale><buyer>bob</buyer><item>car</item></sale>\
               <sale><buyer>ann</buyer><item>pen</item></sale>\
               <sale><buyer>ann</buyer><item>ink</item></sale></sales>\
      </db>";
    let (out, report) = gcx(query, input);
    assert_eq!(
        out,
        "<result>\
           <pair><name>ann</name><item>pen</item><item>ink</item></pair>\
           <pair><name>bob</name><item>car</item></pair>\
         </result>"
            .replace(char::is_whitespace, "")
    );
    // Join partners must stay buffered until the end (linear memory), but
    // the buffer still drains at query end.
    assert_eq!(report.buffer.live, 0);
}

#[test]
fn exists_short_circuits_without_reading_to_region_end() {
    // The witness (price) comes first; `exists` must answer true without
    // waiting for the end of the article.
    let query = "for $x in /bib/a return if (exists($x/price)) then 'yes' else 'no'";
    let (out, _) = gcx(query, "<bib><a><price/><rest/><rest/></a><a><x/></a></bib>");
    assert_eq!(out, "yesno");
}

#[test]
fn attribute_equality_join_q1_style() {
    let query = r#"
        for $p in /site/people/person return
          if ($p/@id = "person0") then $p/name else ()
    "#;
    let input = r#"<site><people>
        <person id="person1"><name>Ann</name></person>
        <person id="person0"><name>Bob</name></person>
    </people></site>"#;
    let (out, _) = gcx(query, input);
    assert_eq!(out, "<name>Bob</name>");
}

#[test]
fn attribute_output_emits_value_as_text() {
    let (out, _) = gcx(
        "for $p in /site/person return <id>{ $p/@id }</id>",
        r#"<site><person id="p1"/><person id="p2"/></site>"#,
    );
    assert_eq!(out, "<id>p1</id><id>p2</id>");
}

#[test]
fn exists_on_attributes() {
    let (out, _) = gcx(
        "for $p in /site/person return if (exists($p/@income)) then 'rich' else 'unknown'",
        r#"<site><person income="5"/><person/></site>"#,
    );
    assert_eq!(out, "richunknown");
}

#[test]
fn numeric_comparisons_use_numeric_order() {
    let (out, _) = gcx(
        "for $i in /l/i return if ($i/v >= 10) then $i/v/text() else ()",
        "<l><i><v>9</v></i><i><v>10</v></i><i><v>11</v></i></l>",
    );
    // String order would put "9" after "10"/"11".
    assert_eq!(out, "1011");
}

#[test]
fn string_comparisons_on_non_numeric_values() {
    let (out, _) = gcx(
        "for $i in /l/i return if ($i/v = 'b') then 'hit' else ()",
        "<l><i><v>a</v></i><i><v>b</v></i></l>",
    );
    assert_eq!(out, "hit");
}

#[test]
fn text_step_output() {
    let (out, _) = gcx(
        "for $b in /bib/book return $b/title/text()",
        "<bib><book><title>Das Kapital</title></book><book><title>Ulysses</title></book></bib>",
    );
    assert_eq!(out, "Das KapitalUlysses");
}

#[test]
fn descendant_axis_queries() {
    let (out, _) = gcx(
        "<all>{ for $t in //title return $t }</all>",
        "<lib><shelf><book><title>A</title></book></shelf><title>B</title></lib>",
    );
    assert_eq!(out, "<all><title>A</title><title>B</title></all>");
}

#[test]
fn count_aggregate_extension() {
    let (out, _) = gcx(
        "<n>{ count(/site/people/person) }</n>",
        "<site><people><person/><person/><person/></people></site>",
    );
    assert_eq!(out, "<n>3</n>");
}

#[test]
fn sum_min_max_avg_extensions() {
    let input = "<l><v>1</v><v>4</v><v>7</v></l>";
    for (q, expected) in [
        ("<s>{ sum(/l/v) }</s>", "<s>12</s>"),
        ("<s>{ min(/l/v) }</s>", "<s>1</s>"),
        ("<s>{ max(/l/v) }</s>", "<s>7</s>"),
        ("<s>{ avg(/l/v) }</s>", "<s>4</s>"),
    ] {
        let (out, _) = gcx(q, input);
        assert_eq!(out, expected, "{q}");
    }
}

#[test]
fn aggregates_of_empty_sequences() {
    let input = "<l/>";
    let (out, _) = gcx("<s>{ count(/l/v) }</s>", input);
    assert_eq!(out, "<s>0</s>");
    let (out, _) = gcx("<s>{ sum(/l/v) }</s>", input);
    assert_eq!(out, "<s>0</s>");
    let (out, _) = gcx("<s>{ min(/l/v) }</s>", input);
    assert_eq!(out, "<s/>", "min of empty emits nothing");
}

#[test]
fn positional_predicates_in_queries() {
    let (out, _) = gcx(
        "for $b in /l/item[2] return $b",
        "<l><item>a</item><item>b</item><item>c</item></l>",
    );
    assert_eq!(out, "<item>b</item>");
}

#[test]
fn deeply_nested_loops() {
    let (out, _) = gcx(
        "for $a in /r/a return for $b in $a/b return for $c in $b/c return $c/text()",
        "<r><a><b><c>1</c><c>2</c></b></a><a><b><c>3</c></b></a></r>",
    );
    assert_eq!(out, "123");
}

#[test]
fn output_entities_escaped() {
    let (out, _) = gcx(
        "for $t in /d/t return $t",
        "<d><t a=\"x&amp;y\">1 &lt; 2</t></d>",
    );
    assert_eq!(out, "<t a=\"x&amp;y\">1 &lt; 2</t>");
}

#[test]
fn malformed_input_is_an_error_not_a_panic() {
    let q = CompiledQuery::compile("for $a in /x return $a").unwrap();
    for bad in ["<x><y></x></y>", "<x>", "<x></x><x2></x2>", "</x>", ""] {
        let mut out = Vec::new();
        let r = run(&q, &EngineOptions::gcx(), bad.as_bytes(), &mut out);
        assert!(r.is_err(), "input {bad:?} must fail");
    }
}

#[test]
fn malformed_input_after_result_still_detected_with_drain() {
    // The result only needs the first element, but draining the input
    // (default) still validates the rest.
    let q = CompiledQuery::compile("for $a in /x/y[1] return 'ok'").unwrap();
    let mut out = Vec::new();
    let r = run(
        &q,
        &EngineOptions::gcx(),
        "<x><y/><bad></x>".as_bytes(),
        &mut out,
    );
    assert!(r.is_err());
}

#[test]
fn timeline_is_recorded_when_enabled() {
    let opts = EngineOptions::gcx().with_timeline(1);
    let (_, report) = run_with(PAPER_QUERY, "<bib><book><title/></book></bib>", &opts);
    let tl = report.timeline.expect("timeline enabled");
    assert_eq!(tl.points.len() as u64, report.tokens);
    assert!(tl.peak() > 0);
}

#[test]
fn constant_queries_read_no_input_unless_drained() {
    let opts = EngineOptions::gcx().without_drain();
    let (out, report) = run_with("'hello'", "<big><doc/></big>", &opts);
    assert_eq!(out, "hello");
    assert_eq!(report.tokens, 0, "constant query needs no input");
}

#[test]
fn run_query_convenience() {
    let out = run_query("<r>{ 1, 'x' }</r>", "<ignored/>").unwrap();
    assert_eq!(out, "<r>1x</r>");
}

#[test]
fn explain_shows_roles_and_rewriting() {
    let q = CompiledQuery::compile(PAPER_QUERY).unwrap();
    let explain = q.explain();
    assert!(explain.contains("r4: /bib/*/price[1]"), "{explain}");
    assert!(explain.contains("signOff($x, r3)"), "{explain}");
}

#[test]
fn empty_for_loops_produce_nothing() {
    let (out, report) = gcx("for $a in /x/nothing return $a", "<x><other/></x>");
    assert_eq!(out, "");
    assert_eq!(report.buffer.live, 0);
}

#[test]
fn sequence_evaluation_is_strictly_ordered() {
    // Second loop re-reads data the first loop also touched: sequential
    // semantics per the paper.
    let (out, _) = gcx(
        "<r>{ (for $a in /l/x return $a/text(), for $b in /l/x return $b/text()) }</r>",
        "<l><x>1</x><x>2</x></l>",
    );
    assert_eq!(out, "<r>1212</r>");
}

#[test]
fn shadowed_variables_work_at_runtime() {
    let (out, _) = gcx(
        "for $a in /r/a return for $a in $a/b return $a/text()",
        "<r><a><b>inner</b></a></r>",
    );
    assert_eq!(out, "inner");
}

#[test]
fn wildcard_loops() {
    let (out, _) = gcx(
        "for $x in /r/* return <t>{ $x/text() }</t>",
        "<r><a>1</a><b>2</b><c>3</c></r>",
    );
    assert_eq!(out, "<t>1</t><t>2</t><t>3</t>");
}

#[test]
fn cdata_text_flows_through() {
    let (out, _) = gcx(
        "for $t in /d/t return $t/text()",
        "<d><t><![CDATA[a < b]]></t></d>",
    );
    assert_eq!(out, "a &lt; b");
}

#[test]
fn large_flat_document_streams_in_constant_memory() {
    // 10k items, each matched, emitted and released: peak stays tiny.
    let mut doc = String::from("<l>");
    for i in 0..10_000 {
        doc.push_str(&format!("<i><v>{i}</v></i>"));
    }
    doc.push_str("</l>");
    let (_, report) = gcx(
        "for $i in /l/i return if ($i/v = 5000) then $i else ()",
        &doc,
    );
    assert!(
        report.buffer.peak_live < 20,
        "constant-memory streaming expected, peak was {}",
        report.buffer.peak_live
    );
    assert_eq!(report.buffer.live, 0);
}

// ---- buffer byte budgets (EngineOptions::max_buffer_bytes) ------------------

#[test]
fn tiny_buffer_budget_is_a_typed_rejection() {
    let q = CompiledQuery::compile(PAPER_QUERY).unwrap();
    let opts = EngineOptions::gcx().with_max_buffer_bytes(8);
    let mut out = Vec::new();
    let err = run(
        &q,
        &opts,
        "<bib><book><title/><author/></book></bib>".as_bytes(),
        &mut out,
    )
    .unwrap_err();
    assert!(err.is_buffer_limit(), "got: {err}");
    assert!(err.to_string().contains("buffer limit exceeded"), "{err}");
}

#[test]
fn generous_buffer_budget_changes_nothing() {
    let doc = "<bib><book><title>T</title></book></bib>";
    let (unlimited, base) = gcx("for $b in /bib/book return $b/title", doc);
    let (capped, report) = run_with(
        "for $b in /bib/book return $b/title",
        doc,
        &EngineOptions::gcx().with_max_buffer_bytes(1 << 20),
    );
    assert_eq!(capped, unlimited);
    assert_eq!(report.buffer.peak_live, base.buffer.peak_live);
    assert_eq!(report.max_buffer_bytes, Some(1 << 20));
    assert!(report.to_json().contains("\"max_buffer_bytes\":1048576"));
}

#[test]
fn byte_accounting_drains_to_zero_and_tracks_peak() {
    let (_, report) = gcx(
        "for $b in /bib/book return $b/title",
        "<bib><book><title>On Streams</title></book><book><title>Two</title></book></bib>",
    );
    assert_eq!(report.buffer.live_bytes, 0, "buffer must drain");
    assert!(report.buffer.peak_live_bytes > 0);
    assert!(report.to_json().contains("\"peak_live_bytes\""));
}

#[test]
fn budget_protects_full_buffering_too() {
    // Full buffering would hold the whole document; the budget turns the
    // would-be OOM into a typed error.
    let mut doc = String::from("<l>");
    for i in 0..10_000 {
        doc.push_str(&format!("<i>{i}</i>"));
    }
    doc.push_str("</l>");
    let q = CompiledQuery::compile("for $i in /l/i return $i/text()").unwrap();
    let opts = EngineOptions {
        max_buffer_bytes: Some(64 * 1024),
        ..EngineOptions::full_buffering()
    };
    let err = run(&q, &opts, doc.as_bytes(), std::io::sink()).unwrap_err();
    assert!(err.is_buffer_limit(), "got: {err}");
}
