#![deny(unsafe_code)]
//! # gcx-core — the GCX streaming XQuery runtime
//!
//! The runtime half of the GCX system (VLDB'07): a main-memory streaming
//! XQuery engine whose buffer manager performs **active garbage
//! collection** — nodes are purged from the buffer the moment static roles
//! and dynamic signOff execution prove they are irrelevant to the rest of
//! the evaluation.
//!
//! The architecture mirrors the paper's Figure 2, built sans-IO: every
//! stage is a resumable state machine over pushed stream events, and
//! [`EvalSession`] is their composition — the push-driven public API
//! (`feed` bytes in, drain output out, suspend at any byte boundary).
//! [`run`] and [`run_with_feed`] are blocking wrappers over the same
//! machines.
//!
//! * [`Projector`] — runs the projection NFA over pushed tokens, copies
//!   matched ones into the buffer ([`Preprojector`](stream::Preprojector)
//!   pairs it with a pull tokenizer);
//! * [`buffer::BufferTree`] — the buffer + role bookkeeping +
//!   garbage collector;
//! * the evaluator (`eval`, internal) — executes the rewritten query as
//!   an explicit continuation stack, suspending on the buffer manager
//!   for data, issuing signOffs.
//!
//! ## Quickstart
//!
//! ```
//! let out = gcx_core::run_query(
//!     "<books> { for $b in /bib/book return $b/title } </books>",
//!     "<bib><book><title>Stream Processing</title><price>10</price></book></bib>",
//! ).unwrap();
//! assert_eq!(out, "<books><title>Stream Processing</title></books>");
//! ```
//!
//! ## Configurations
//!
//! [`EngineOptions`] selects between the full GCX strategy
//! (projection + active GC), projection-only, and full buffering — the
//! comparison axis of the paper's evaluation.

pub mod buffer;
pub mod cursor;
mod engine;
mod error;
mod eval;
pub mod obs;
pub mod session;
pub mod stream;

pub use buffer::{AttrBuf, BufferStats, BufferTree, NodeId};
pub use engine::{
    run, run_query, run_with_feed, CompiledQuery, EngineOptions, RunReport, SchemaReport,
};
pub use error::EngineError;
pub use obs::{FeedSpan, ObsReport, RoleObs, TaskObs};
pub use session::{Emitted, EvalSession};
pub use stream::{BufferFeed, ChildCounters, Projector, Timeline};
