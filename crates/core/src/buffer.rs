//! The GCX buffer: an arena-backed XML fragment tree with role bookkeeping,
//! evaluator pins, and **active garbage collection**.
//!
//! Every buffered node carries a multiset of role instances (the paper's
//! `book{r3, r5, r6}` annotations). Two aggregated counters per node make
//! garbage collection cheap:
//!
//! * `subtree_roles` — total role instances in the node's subtree;
//! * `subtree_pins` — evaluator references (loop bindings, cursor stacks)
//!   in the subtree.
//!
//! **Purge rule** (paper §2): a node is reclaimed as soon as it is closed
//! (its end tag has been read), its subtree holds zero role instances, and
//! the evaluator holds no pin inside it. Purges cascade upward so the
//! highest fully-dead ancestor is freed in one pass. Purge attempts are
//! triggered by exactly three events: a role decrement (signOff), a node
//! closing (reclaims speculatively buffered prefixes), and an unpin.
//!
//! Reclaimed slots go on a free list and are reused; `NodeId`s carry a
//! generation so stale ids are caught in debug builds.

use crate::error::EngineError;
use crate::obs::RoleObs;
use gcx_obs::Hist;
use gcx_query::ast::RoleId;
use gcx_xml::{Symbol, SymbolTable, XmlResult, XmlWriter};

/// Handle to a buffered node. Carries a generation to detect stale use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    idx: u32,
    gen: u32,
}

impl NodeId {
    /// The virtual document root (always live).
    pub const ROOT: NodeId = NodeId { idx: 0, gen: 0 };
}

const NIL: u32 = u32::MAX;

/// Document-order ordinals of a node among its siblings, stamped by the
/// preprojector from the *original* document — projection may drop earlier
/// siblings from the buffer, so buffer positions cannot be used to evaluate
/// positional predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ordinals {
    /// 1-based position among siblings with the same name (elements) or
    /// among text siblings (text nodes).
    pub same_kind: u32,
    /// 1-based position among element siblings.
    pub elem: u32,
    /// 1-based position among all siblings.
    pub any: u32,
}

impl Ordinals {
    /// Ordinals for a first/only child (used by tests and the DOM shim).
    pub const FIRST: Ordinals = Ordinals {
        same_kind: 1,
        elem: 1,
        any: 1,
    };
}

/// Attribute storage for one element: interned names plus one value arena.
///
/// All of an element's attribute values share a single string, so a node
/// costs at most three heap blocks for attributes however many it has — and
/// those blocks are **recycled** through the buffer's pools when the node is
/// purged, making the steady-state append/purge cycle allocation-free.
#[derive(Debug, Default)]
pub struct AttrBuf {
    /// Interned attribute names, in document order.
    syms: Vec<Symbol>,
    /// End offset of the i-th value in `text` (start = previous end).
    ends: Vec<u32>,
    /// All values, concatenated.
    text: String,
}

/// The shared empty attribute list returned for text nodes.
static EMPTY_ATTRS: AttrBuf = AttrBuf {
    syms: Vec::new(),
    ends: Vec::new(),
    text: String::new(),
};

impl AttrBuf {
    /// Fresh, empty storage.
    pub fn new() -> AttrBuf {
        AttrBuf::default()
    }

    /// Remove all attributes, keeping capacity.
    pub fn clear(&mut self) {
        self.syms.clear();
        self.ends.clear();
        self.text.clear();
    }

    /// Append an attribute (document order).
    pub fn push(&mut self, name: Symbol, value: &str) {
        self.syms.push(name);
        self.text.push_str(value);
        self.ends.push(self.text.len() as u32);
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True when there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// The `i`-th attribute as `(name, value)`.
    pub fn get(&self, i: usize) -> Option<(Symbol, &str)> {
        let sym = *self.syms.get(i)?;
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        Some((sym, &self.text[start..self.ends[i] as usize]))
    }

    /// Iterate `(name, value)` pairs in document order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        (0..self.len()).map(|i| self.get(i).expect("index in range"))
    }

    /// Value of the attribute named `name`, if present.
    pub fn value_of(&self, name: Symbol) -> Option<&str> {
        let i = self.syms.iter().position(|&s| s == name)?;
        Some(self.get(i).expect("index in range").1)
    }
}

/// Element payload or text payload.
#[derive(Debug)]
pub enum NodeKind {
    /// An element: interned tag plus attributes.
    Element {
        /// Interned tag name.
        name: Symbol,
        /// Attributes in document order (pooled storage).
        attrs: AttrBuf,
    },
    /// A text node.
    Text {
        /// Character data (entities already resolved; pooled storage).
        content: String,
    },
}

#[derive(Debug)]
struct Node {
    parent: u32,
    first_child: u32,
    last_child: u32,
    prev_sibling: u32,
    next_sibling: u32,
    kind: NodeKind,
    ordinals: Ordinals,
    /// End tag seen (text nodes are born closed).
    closed: bool,
    /// Role instances: (role, count), kept sorted by role.
    roles: Vec<(RoleId, u32)>,
    /// Total role instances in this subtree (including self).
    subtree_roles: u64,
    /// Evaluator pins on this node.
    pins: u32,
    /// Total pins in this subtree (including self).
    subtree_pins: u64,
    gen: u32,
    in_use: bool,
}

impl Node {
    fn own_roles(&self) -> u64 {
        self.roles.iter().map(|&(_, c)| c as u64).sum()
    }
}

/// Buffer statistics maintained incrementally.
#[derive(Debug, Clone, Copy, Default)]
pub struct BufferStats {
    /// Nodes currently buffered (excluding the virtual root).
    pub live: u64,
    /// High watermark of `live`.
    pub peak_live: u64,
    /// Total nodes ever buffered.
    pub allocated: u64,
    /// Total nodes reclaimed by active garbage collection.
    pub purged: u64,
    /// Estimated bytes currently buffered (see the internal `node_bytes` accounting).
    pub live_bytes: u64,
    /// High watermark of `live_bytes`.
    pub peak_live_bytes: u64,
}

impl BufferStats {
    /// Machine-readable form (hand-rolled JSON; the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"live\":{},\"peak_live\":{},\"allocated\":{},\"purged\":{},\
             \"live_bytes\":{},\"peak_live_bytes\":{}}}",
            self.live,
            self.peak_live,
            self.allocated,
            self.purged,
            self.live_bytes,
            self.peak_live_bytes
        )
    }
}

/// Estimated resident cost of one buffered node: the node record itself
/// plus its variable-size payload (text content, or attribute names and
/// values). The estimate is *deterministic* — it counts lengths, not
/// allocator capacities — so the amount charged at append time is exactly
/// the amount credited back at purge time, and byte budgets behave
/// identically across runs. Role multisets are deliberately excluded:
/// `decrement_role` shrinks them mid-life, which would make append-time
/// and purge-time costs disagree.
fn node_bytes(kind: &NodeKind) -> u64 {
    /// Per-attribute bookkeeping cost (interned name + value end offset).
    const ATTR_OVERHEAD: u64 = 8;
    let payload = match kind {
        NodeKind::Element { attrs, .. } => {
            attrs.syms.len() as u64 * ATTR_OVERHEAD + attrs.text.len() as u64
        }
        NodeKind::Text { content } => content.len() as u64,
    };
    std::mem::size_of::<Node>() as u64 + payload
}

/// Per-role lifecycle counters (telemetry only).
#[derive(Debug, Default, Clone)]
struct RoleCell {
    appends: u64,
    signoffs: u64,
    purge_triggers: u64,
    live: u64,
    max_live: u64,
}

/// Buffer-lifecycle telemetry, kept **beside** the node arena rather
/// than inside [`Node`]: a birth-token stamp per slot plus fixed-bucket
/// histograms. Keeping `Node`'s layout untouched matters — `node_bytes`
/// includes `size_of::<Node>()`, so a stamp inside the node would shift
/// every byte measurement the equivalence suites pin down.
#[derive(Debug)]
pub(crate) struct BufTelemetry {
    /// Structural-token clock, advanced by [`BufferTree::tick`].
    clock: u64,
    /// Birth token per node slot (parallel to the node arena).
    birth: Vec<u64>,
    pub(crate) residency_tokens: Hist,
    pub(crate) purged_node_bytes: Hist,
    pub(crate) purge_batch: Hist,
    pub(crate) purges_on_signoff: u64,
    pub(crate) purges_on_close: u64,
    pub(crate) purges_on_unpin: u64,
    roles: Vec<RoleCell>,
    pub(crate) timeline: Vec<(u64, u64)>,
    pub(crate) every: u64,
    next_sample: u64,
}

impl BufTelemetry {
    fn role_cell(&mut self, role: RoleId) -> &mut RoleCell {
        let i = role.index();
        if self.roles.len() <= i {
            self.roles.resize(i + 1, RoleCell::default());
        }
        &mut self.roles[i]
    }

    /// Convert into the public per-run report, joining the VM- and
    /// session-side measurements in.
    pub(crate) fn into_report(
        self: Box<BufTelemetry>,
        tasks: Vec<crate::obs::TaskObs>,
        feed_spans: Vec<crate::obs::FeedSpan>,
        tokenizer_window_peak: u64,
    ) -> crate::obs::ObsReport {
        let roles = self.role_obs();
        let t = *self;
        crate::obs::ObsReport {
            residency_tokens: t.residency_tokens,
            purged_node_bytes: t.purged_node_bytes,
            purge_batch: t.purge_batch,
            purges_on_signoff: t.purges_on_signoff,
            purges_on_close: t.purges_on_close,
            purges_on_unpin: t.purges_on_unpin,
            roles,
            live_bytes_timeline: t.timeline,
            timeline_every: t.every,
            tasks,
            feed_spans,
            tokenizer_window_peak,
        }
    }

    /// Per-role counters in role-id order (roles never seen are
    /// omitted).
    pub(crate) fn role_obs(&self) -> Vec<RoleObs> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, c)| c.appends > 0 || c.signoffs > 0)
            .map(|(i, c)| RoleObs {
                role: RoleId(i as u32).to_string(),
                appends: c.appends,
                signoffs: c.signoffs,
                purge_triggers: c.purge_triggers,
                max_live: c.max_live,
            })
            .collect()
    }
}

/// Runtime state of the schema's sibling-order analysis, kept **beside**
/// the node arena like [`BufTelemetry`] so [`Node`]'s layout (and thereby
/// every `node_bytes` measurement) is untouched. Per open element the
/// buffer tracks a *cutoff*: one past the highest content-model ordinal
/// seen among its children so far (0 = none). Where the DTD fixes the
/// sibling order, a child name whose ordinal is below `cutoff - 1` can
/// never arrive again — the engine uses that to end child scans and
/// release signOff waits before the parent's end tag.
#[derive(Debug)]
struct SchemaRt {
    ord: gcx_schema::OrdTable,
    /// Cutoff per node slot (parallel to the arena; reset on slot reuse).
    cutoffs: Vec<u32>,
    /// Cursor scans ended early by a cutoff.
    early_scan_ends: u64,
    /// signOff waits released early by a cutoff.
    early_signoffs: u64,
    /// The table was adopted from an in-stream DOCTYPE.
    doctype_adopted: bool,
}

/// The buffer tree. See the module docs for the GC model.
#[derive(Debug)]
pub struct BufferTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    stats: BufferStats,
    /// When false, purging is disabled entirely (full-buffering baseline).
    purge_enabled: bool,
    /// Hard cap on `stats.live_bytes` (None = unlimited). The buffer only
    /// *tracks* bytes; enforcement is a [`BufferTree::check_limit`] call
    /// made by whoever drives the feed, so appends themselves stay
    /// infallible.
    max_bytes: Option<u64>,
    /// Recycled per-node containers. Node *slots* are reused through
    /// `free`; these pools do the same for the heap blocks hanging off a
    /// node (role multiset, attribute storage, text content), so the
    /// steady-state append/purge cycle performs no allocation.
    role_pool: Vec<Vec<(RoleId, u32)>>,
    attr_pool: Vec<AttrBuf>,
    text_pool: Vec<String>,
    /// Reused DFS stack for [`BufferTree::free_subtree`].
    free_scratch: Vec<u32>,
    /// Buffer-lifecycle telemetry, off by default. `Option<Box<_>>` is
    /// null-pointer-optimized, so every disabled-path check is a single
    /// null test — the hot loop's cost when observability is off.
    telemetry: Option<Box<BufTelemetry>>,
    /// Sibling-order cutoffs, installed only when a schema is in effect;
    /// same one-null-test discipline as `telemetry`.
    schema: Option<Box<SchemaRt>>,
}

impl BufferTree {
    /// Create a buffer containing only the (open) virtual document root.
    pub fn new(purge_enabled: bool) -> BufferTree {
        let root = Node {
            parent: NIL,
            first_child: NIL,
            last_child: NIL,
            prev_sibling: NIL,
            next_sibling: NIL,
            kind: NodeKind::Element {
                name: Symbol(u32::MAX),
                attrs: AttrBuf::new(),
            },
            ordinals: Ordinals::FIRST,
            closed: false,
            roles: Vec::new(),
            subtree_roles: 0,
            pins: 0,
            subtree_pins: 0,
            gen: 0,
            in_use: true,
        };
        BufferTree {
            nodes: vec![root],
            free: Vec::new(),
            stats: BufferStats::default(),
            purge_enabled,
            max_bytes: None,
            role_pool: Vec::new(),
            attr_pool: Vec::new(),
            text_pool: Vec::new(),
            free_scratch: Vec::new(),
            telemetry: None,
            schema: None,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Turn on buffer-lifecycle telemetry, sampling the live-bytes
    /// timeline every `sample_every` structural tokens. All storage is
    /// allocated here, before the hot loop starts.
    pub fn enable_telemetry(&mut self, sample_every: u64) {
        self.telemetry = Some(Box::new(BufTelemetry {
            clock: 0,
            birth: Vec::with_capacity(64),
            residency_tokens: Hist::new(gcx_obs::TOKEN_BUCKETS),
            purged_node_bytes: Hist::new(gcx_obs::BYTE_BUCKETS),
            purge_batch: Hist::new(gcx_obs::COUNT_BUCKETS),
            purges_on_signoff: 0,
            purges_on_close: 0,
            purges_on_unpin: 0,
            roles: Vec::new(),
            timeline: Vec::new(),
            every: sample_every.max(1),
            next_sample: 0,
        }));
    }

    /// Advance the telemetry clock to `tokens` (structural tokens fed so
    /// far) and sample the live-bytes timeline on cadence. Disabled cost:
    /// one null check.
    #[inline]
    pub fn tick(&mut self, tokens: u64) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.clock = tokens;
            if tokens >= t.next_sample {
                t.timeline.push((tokens, self.stats.live_bytes));
                t.next_sample = tokens.saturating_add(t.every);
            }
        }
    }

    /// Detach the accumulated telemetry (None when never enabled).
    pub(crate) fn take_telemetry(&mut self) -> Option<Box<BufTelemetry>> {
        self.telemetry.take()
    }

    /// Install the schema's sibling-order table. `doctype_adopted` marks
    /// a table picked up from an in-stream DOCTYPE (vs an explicit
    /// engine-option schema); it only affects reporting. Empty tables are
    /// not installed — the hot-path null checks stay null.
    pub fn set_schema(&mut self, ord: gcx_schema::OrdTable, doctype_adopted: bool) {
        if ord.is_empty() {
            return;
        }
        self.schema = Some(Box::new(SchemaRt {
            ord,
            cutoffs: Vec::new(),
            early_scan_ends: 0,
            early_signoffs: 0,
            doctype_adopted,
        }));
    }

    /// Is a sibling-order table installed?
    pub fn schema_active(&self) -> bool {
        self.schema.is_some()
    }

    /// `(early_scan_ends, early_signoffs, doctype_adopted)` so far.
    pub fn schema_counters(&self) -> (u64, u64, bool) {
        match self.schema.as_deref() {
            Some(s) => (s.early_scan_ends, s.early_signoffs, s.doctype_adopted),
            None => (0, 0, false),
        }
    }

    /// Note a child element name observed (buffered *or* projected away)
    /// under open element `parent`, advancing the parent's cutoff when the
    /// DTD fixes its child order. Called by the projector on every start
    /// tag at projection depth; one null check when no schema is active.
    #[inline]
    pub fn schema_note_child(&mut self, parent: NodeId, child: Symbol) {
        let Some(s) = self.schema.as_deref_mut() else {
            return;
        };
        if parent == NodeId::ROOT {
            return;
        }
        let pname = match &self.nodes[parent.idx as usize].kind {
            NodeKind::Element { name, .. } => *name,
            NodeKind::Text { .. } => return,
        };
        if let Some(ord) = s.ord.ord(pname, child) {
            let slot = parent.idx as usize;
            if s.cutoffs.len() <= slot {
                s.cutoffs.resize(slot + 1, 0);
            }
            s.cutoffs[slot] = s.cutoffs[slot].max(ord + 1);
        }
    }

    /// Has the stream passed the last possible `want` child of the open
    /// element `parent`? True only when the DTD sequences both names under
    /// `parent` and a later-ordinal sibling has already been observed —
    /// then no further `want` child can arrive, even though `parent` is
    /// still open. Conservative for repeatable particles: a cutoff equal
    /// to `ord(want) + 1` (the particle itself was last seen) is *not*
    /// exhaustion, since `want*`/`want+` can repeat.
    #[inline]
    pub fn schema_sibling_exhausted(&self, parent: NodeId, want: Symbol) -> bool {
        let Some(s) = self.schema.as_deref() else {
            return false;
        };
        let cutoff = match s.cutoffs.get(parent.idx as usize) {
            Some(&c) if c > 0 => c,
            _ => return false,
        };
        let pname = match &self.nodes[parent.idx as usize].kind {
            NodeKind::Element { name, .. } => *name,
            NodeKind::Text { .. } => return false,
        };
        match s.ord.ord(pname, want) {
            Some(ord) => ord + 1 < cutoff,
            None => false,
        }
    }

    /// Count a cursor scan ended early by a cutoff.
    pub fn schema_count_scan_end(&mut self) {
        if let Some(s) = self.schema.as_deref_mut() {
            s.early_scan_ends += 1;
        }
    }

    /// Count a signOff wait released early by a cutoff.
    pub fn schema_count_early_signoff(&mut self) {
        if let Some(s) = self.schema.as_deref_mut() {
            s.early_signoffs += 1;
        }
    }

    /// Set the hard byte budget ([`BufferTree::check_limit`] enforces it).
    pub fn set_max_bytes(&mut self, limit: Option<u64>) {
        self.max_bytes = limit;
    }

    /// The configured byte budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Enforce the byte budget: a typed, recoverable error — never an
    /// abort — once the estimated live buffer exceeds `max_bytes`. The
    /// engine calls this after every feed advance, so a runaway query is
    /// stopped within one token of crossing its budget.
    pub fn check_limit(&self) -> Result<(), EngineError> {
        match self.max_bytes {
            Some(limit) if self.stats.live_bytes > limit => Err(EngineError::BufferLimitExceeded {
                limit,
                used: self.stats.live_bytes,
            }),
            _ => Ok(()),
        }
    }

    /// True if `id` still names a live node: its slot is in use and the
    /// generation matches (slot reuse bumps the generation, so an id
    /// held across a purge of its node comes back false rather than
    /// aliasing the slot's new occupant). The join executor checks this
    /// before dereferencing index entries recorded on an earlier
    /// execution.
    #[inline]
    pub fn is_live(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.idx as usize)
            .is_some_and(|n| n.in_use && n.gen == id.gen)
    }

    #[inline]
    fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id.idx as usize];
        debug_assert!(n.in_use && n.gen == id.gen, "stale NodeId {id:?}");
        n
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let n = &mut self.nodes[id.idx as usize];
        debug_assert!(n.in_use && n.gen == id.gen, "stale NodeId {id:?}");
        n
    }

    fn id_at(&self, idx: u32) -> Option<NodeId> {
        if idx == NIL {
            None
        } else {
            Some(NodeId {
                idx,
                gen: self.nodes[idx as usize].gen,
            })
        }
    }

    // ---- navigation ---------------------------------------------------------

    /// Parent of a node (None for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.id_at(self.node(id).parent)
    }

    /// First child, in document order.
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.id_at(self.node(id).first_child)
    }

    /// Next sibling, in document order.
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.id_at(self.node(id).next_sibling)
    }

    /// Node payload.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.node(id).kind
    }

    /// Element tag, if `id` is an element.
    pub fn name(&self, id: NodeId) -> Option<Symbol> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(*name),
            NodeKind::Text { .. } => None,
        }
    }

    /// True for text nodes.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Text { .. })
    }

    /// Text content of a text node.
    pub fn text_content(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Text { content } => Some(content),
            NodeKind::Element { .. } => None,
        }
    }

    /// Attribute value by interned name.
    pub fn attr(&self, id: NodeId, name: Symbol) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs.value_of(name),
            NodeKind::Text { .. } => None,
        }
    }

    /// All attributes of an element (empty for text nodes).
    pub fn attrs(&self, id: NodeId) -> &AttrBuf {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs,
            NodeKind::Text { .. } => &EMPTY_ATTRS,
        }
    }

    /// Whether the node's end tag has been read.
    pub fn is_closed(&self, id: NodeId) -> bool {
        self.node(id).closed
    }

    /// Document-order sibling ordinals (see [`Ordinals`]).
    pub fn ordinals(&self, id: NodeId) -> Ordinals {
        self.node(id).ordinals
    }

    /// Instances of `role` on this node.
    pub fn role_count(&self, id: NodeId, role: RoleId) -> u32 {
        self.node(id)
            .roles
            .iter()
            .find(|(r, _)| *r == role)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// The node's role multiset (sorted by role id), for diagnostics.
    pub fn roles(&self, id: NodeId) -> &[(RoleId, u32)] {
        &self.node(id).roles
    }

    // ---- construction -------------------------------------------------------

    /// Append an attribute-less element under `parent` with its role
    /// instances. `roles` must be sorted by role id (the matcher emits
    /// them sorted; the internal `append` debug-asserts it).
    pub fn append_element(
        &mut self,
        parent: NodeId,
        name: Symbol,
        roles: &[(RoleId, u32)],
        ordinals: Ordinals,
    ) -> NodeId {
        let attrs = self.pooled_attrs();
        self.append(
            parent,
            NodeKind::Element { name, attrs },
            roles,
            false,
            ordinals,
        )
    }

    /// Append an element under `parent`, **taking** the contents of the
    /// caller's attribute scratch (which is left empty, holding a recycled
    /// pooled buffer — the zero-allocation handshake of the preprojector's
    /// hot loop). `roles` must be sorted by role id.
    pub fn append_element_with_attrs(
        &mut self,
        parent: NodeId,
        name: Symbol,
        attrs: &mut AttrBuf,
        roles: &[(RoleId, u32)],
        ordinals: Ordinals,
    ) -> NodeId {
        let mut taken = self.pooled_attrs();
        std::mem::swap(&mut taken, attrs);
        self.append(
            parent,
            NodeKind::Element { name, attrs: taken },
            roles,
            false,
            ordinals,
        )
    }

    /// Append a text node under `parent`. Text nodes are born closed.
    /// `roles` must be sorted by role id.
    pub fn append_text(
        &mut self,
        parent: NodeId,
        content: &str,
        roles: &[(RoleId, u32)],
        ordinals: Ordinals,
    ) -> NodeId {
        let mut text = self.text_pool.pop().unwrap_or_default();
        text.push_str(content);
        self.append(
            parent,
            NodeKind::Text { content: text },
            roles,
            true,
            ordinals,
        )
    }

    /// A recycled (or fresh) empty attribute buffer.
    fn pooled_attrs(&mut self) -> AttrBuf {
        self.attr_pool.pop().unwrap_or_default()
    }

    fn append(
        &mut self,
        parent: NodeId,
        kind: NodeKind,
        roles: &[(RoleId, u32)],
        closed: bool,
        ordinals: Ordinals,
    ) -> NodeId {
        debug_assert!(!self.node(parent).closed, "appending under a closed node");
        // The role multiset arrives sorted (the matcher dedupes and sorts
        // by role id); sorting per append would be wasted hot-loop work.
        debug_assert!(
            roles.windows(2).all(|w| w[0].0 <= w[1].0),
            "append requires roles sorted by role id: {roles:?}"
        );
        let mut role_vec = self.role_pool.pop().unwrap_or_default();
        role_vec.extend_from_slice(roles);
        let own: u64 = role_vec.iter().map(|&(_, c)| c as u64).sum();
        let bytes = node_bytes(&kind);
        let prev = self.node(parent).last_child;
        let node = Node {
            parent: parent.idx,
            first_child: NIL,
            last_child: NIL,
            prev_sibling: prev,
            next_sibling: NIL,
            kind,
            ordinals,
            closed,
            roles: role_vec,
            subtree_roles: own,
            pins: 0,
            subtree_pins: 0,
            gen: 0,
            in_use: true,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                let gen = self.nodes[i as usize].gen;
                self.nodes[i as usize] = node;
                self.nodes[i as usize].gen = gen;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        // Link into the parent's child list.
        {
            let p = self.node_mut(parent);
            if p.first_child == NIL {
                p.first_child = idx;
            }
            p.last_child = idx;
        }
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = idx;
        }
        // Propagate the subtree role count upward.
        if own > 0 {
            let mut cur = parent.idx;
            while cur != NIL {
                self.nodes[cur as usize].subtree_roles += own;
                cur = self.nodes[cur as usize].parent;
            }
        }
        self.stats.live += 1;
        self.stats.allocated += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        self.stats.live_bytes += bytes;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        if let Some(s) = self.schema.as_deref_mut() {
            // A recycled slot may carry the previous occupant's cutoff.
            if let Some(c) = s.cutoffs.get_mut(idx as usize) {
                *c = 0;
            }
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            let slot = idx as usize;
            if t.birth.len() <= slot {
                t.birth.resize(slot + 1, 0);
            }
            t.birth[slot] = t.clock;
            for &(role, count) in roles {
                let cell = t.role_cell(role);
                cell.appends += count as u64;
                cell.live += count as u64;
                cell.max_live = cell.max_live.max(cell.live);
            }
        }
        NodeId {
            idx,
            gen: self.nodes[idx as usize].gen,
        }
    }

    /// Mark a node closed (its end tag was read) and attempt a purge: this
    /// reclaims speculatively buffered subtrees that never produced a role.
    pub fn close(&mut self, id: NodeId) {
        self.node_mut(id).closed = true;
        if self.telemetry.is_some() {
            let before = self.stats.purged;
            self.try_purge(id);
            if self.stats.purged > before {
                self.telemetry.as_deref_mut().unwrap().purges_on_close += 1;
            }
        } else {
            self.try_purge(id);
        }
    }

    // ---- roles & garbage collection ------------------------------------------

    /// Remove up to `amount` instances of `role` from `id` (saturating),
    /// then attempt a purge. Returns the number actually removed.
    pub fn decrement_role(&mut self, id: NodeId, role: RoleId, amount: u32) -> u32 {
        let node = self.node_mut(id);
        let mut removed = 0;
        if let Some(pos) = node.roles.iter().position(|(r, _)| *r == role) {
            let have = node.roles[pos].1;
            removed = have.min(amount);
            if removed == have {
                node.roles.remove(pos);
            } else {
                node.roles[pos].1 -= removed;
            }
        }
        if removed > 0 {
            let mut cur = id.idx;
            while cur != NIL {
                self.nodes[cur as usize].subtree_roles -= removed as u64;
                cur = self.nodes[cur as usize].parent;
            }
            if self.telemetry.is_some() {
                let before = self.stats.purged;
                self.try_purge(id);
                let purged = self.stats.purged > before;
                let t = self.telemetry.as_deref_mut().unwrap();
                let cell = t.role_cell(role);
                cell.signoffs += removed as u64;
                cell.live = cell.live.saturating_sub(removed as u64);
                if purged {
                    cell.purge_triggers += 1;
                    t.purges_on_signoff += 1;
                }
            } else {
                self.try_purge(id);
            }
        }
        removed
    }

    /// Pin a node against purging (evaluator references).
    pub fn pin(&mut self, id: NodeId) {
        self.node_mut(id).pins += 1;
        let mut cur = id.idx;
        while cur != NIL {
            self.nodes[cur as usize].subtree_pins += 1;
            cur = self.nodes[cur as usize].parent;
        }
    }

    /// Release a pin; attempts the purge that may have been deferred.
    pub fn unpin(&mut self, id: NodeId) {
        {
            let n = self.node_mut(id);
            debug_assert!(n.pins > 0, "unbalanced unpin");
            n.pins -= 1;
        }
        let mut cur = id.idx;
        while cur != NIL {
            self.nodes[cur as usize].subtree_pins -= 1;
            cur = self.nodes[cur as usize].parent;
        }
        if self.telemetry.is_some() {
            let before = self.stats.purged;
            self.try_purge(id);
            if self.stats.purged > before {
                self.telemetry.as_deref_mut().unwrap().purges_on_unpin += 1;
            }
        } else {
            self.try_purge(id);
        }
    }

    /// Garbage collection: free the highest ancestor-or-self of `id` whose
    /// whole subtree is closed, role-free and pin-free.
    fn try_purge(&mut self, id: NodeId) {
        if !self.purge_enabled {
            return;
        }
        let mut candidate: Option<u32> = None;
        let mut cur = id.idx;
        while cur != NIL && cur != NodeId::ROOT.idx {
            let n = &self.nodes[cur as usize];
            if n.closed && n.subtree_roles == 0 && n.subtree_pins == 0 {
                candidate = Some(cur);
                cur = n.parent;
            } else {
                break;
            }
        }
        if let Some(top) = candidate {
            self.free_subtree(top);
        }
    }

    /// Detach `top` from its parent and free its whole subtree.
    fn free_subtree(&mut self, top: u32) {
        // Unlink from the sibling chain.
        let (parent, prev, next) = {
            let n = &self.nodes[top as usize];
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev_sibling = prev;
        }
        if parent != NIL {
            let p = &mut self.nodes[parent as usize];
            if p.first_child == top {
                p.first_child = next;
            }
            if p.last_child == top {
                p.last_child = prev;
            }
        }
        // Free the subtree iteratively with the reused DFS scratch (slot
        // order is irrelevant — every freed node just returns to the free
        // list).
        let mut stack = std::mem::take(&mut self.free_scratch);
        // The telemetry box is moved out for the duration of the walk so
        // its histograms can be updated while `self` is mutably borrowed.
        let mut tel = self.telemetry.take();
        let mut batch: u64 = 0;
        stack.push(top);
        while let Some(i) = stack.pop() {
            let mut child = self.nodes[i as usize].first_child;
            while child != NIL {
                stack.push(child);
                child = self.nodes[child as usize].next_sibling;
            }
            let (kind, roles) = {
                let n = &mut self.nodes[i as usize];
                debug_assert_eq!(n.pins, 0, "freeing a pinned node");
                n.in_use = false;
                n.gen = n.gen.wrapping_add(1);
                n.first_child = NIL;
                (
                    std::mem::replace(
                        &mut n.kind,
                        NodeKind::Text {
                            content: String::new(),
                        },
                    ),
                    std::mem::take(&mut n.roles),
                )
            };
            // Credit back exactly what the append charged, then recycle
            // the node's heap blocks through the pools.
            let bytes = node_bytes(&kind);
            self.stats.live_bytes -= bytes;
            if let Some(t) = tel.as_deref_mut() {
                let born = t.birth.get(i as usize).copied().unwrap_or(t.clock);
                t.residency_tokens.observe(t.clock.saturating_sub(born));
                t.purged_node_bytes.observe(bytes);
                batch += 1;
            }
            match kind {
                NodeKind::Element { mut attrs, .. } => {
                    attrs.clear();
                    self.attr_pool.push(attrs);
                }
                NodeKind::Text { mut content } => {
                    content.clear();
                    self.text_pool.push(content);
                }
            }
            let mut roles = roles;
            roles.clear();
            self.role_pool.push(roles);
            self.free.push(i);
            self.stats.live -= 1;
            self.stats.purged += 1;
        }
        if let Some(t) = tel.as_deref_mut() {
            t.purge_batch.observe(batch);
        }
        self.telemetry = tel;
        self.free_scratch = stack;
    }

    // ---- values & serialization ----------------------------------------------

    /// XPath string value: concatenated text content of the subtree.
    ///
    /// Iterative (link-following) walk: document depth must not translate
    /// into native stack depth — deeply nested documents would overflow it.
    pub fn string_value(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text { content } => {
                out.push_str(content);
                return;
            }
            NodeKind::Element { .. } => {}
        }
        let mut cur = self.first_child(id);
        while let Some(n) = cur {
            let descend = match &self.node(n).kind {
                NodeKind::Text { content } => {
                    out.push_str(content);
                    None
                }
                NodeKind::Element { .. } => self.first_child(n),
            };
            cur = match descend {
                Some(c) => Some(c),
                None => self.next_or_ascend(n, id),
            };
        }
    }

    /// Next node of a pre-order walk confined to `stop`'s subtree, after
    /// `n`'s own subtree is done: the next sibling, or the next sibling of
    /// the closest ancestor below `stop`.
    fn next_or_ascend(&self, n: NodeId, stop: NodeId) -> Option<NodeId> {
        let mut m = n;
        loop {
            if let Some(s) = self.next_sibling(m) {
                return Some(s);
            }
            let p = self.parent(m).expect("walk escaped the subtree");
            if p == stop {
                return None;
            }
            m = p;
        }
    }

    /// Emit a node's opening markup (or its text). Returns true when the
    /// walk must descend into element children.
    fn serialize_open<W: std::io::Write>(
        &self,
        n: NodeId,
        symbols: &SymbolTable,
        w: &mut XmlWriter<W>,
    ) -> XmlResult<bool> {
        match &self.node(n).kind {
            NodeKind::Text { content } => {
                w.text(content)?;
                Ok(false)
            }
            NodeKind::Element { name, attrs } => {
                w.start_element(symbols.resolve(*name))?;
                for (an, av) in attrs.iter() {
                    w.attribute(symbols.resolve(an), av)?;
                }
                Ok(true)
            }
        }
    }

    /// Serialize the subtree rooted at `id` (which must be closed) to a
    /// writer. The virtual root serializes its children only.
    ///
    /// Iterative, like [`BufferTree::string_value`]: the walk follows
    /// sibling/parent links, so arbitrarily deep documents serialize in
    /// constant native stack space.
    pub fn serialize<W: std::io::Write>(
        &self,
        id: NodeId,
        symbols: &SymbolTable,
        w: &mut XmlWriter<W>,
    ) -> XmlResult<()> {
        if id != NodeId::ROOT && !self.serialize_open(id, symbols, w)? {
            return Ok(()); // a lone text node
        }
        let mut cur = self.first_child(id);
        while let Some(n) = cur {
            let mut descend = None;
            if self.serialize_open(n, symbols, w)? {
                descend = self.first_child(n);
                if descend.is_none() {
                    w.end_element()?; // childless element
                }
            }
            cur = match descend {
                Some(c) => Some(c),
                None => {
                    // Ascend, closing every element left behind.
                    let mut m = n;
                    loop {
                        if let Some(s) = self.next_sibling(m) {
                            break Some(s);
                        }
                        let p = self.parent(m).expect("walk escaped the subtree");
                        if p == id {
                            break None;
                        }
                        w.end_element()?;
                        m = p;
                    }
                }
            };
        }
        if id != NodeId::ROOT {
            w.end_element()?;
        }
        Ok(())
    }

    // ---- integrity (used by tests and debug assertions) -----------------------

    /// Recompute aggregate counters and compare with the maintained ones.
    /// Panics on mismatch. O(n); tests only.
    pub fn check_integrity(&self) {
        self.check_node(0);
    }

    fn check_node(&self, idx: u32) -> (u64, u64) {
        let n = &self.nodes[idx as usize];
        assert!(n.in_use, "dead node linked into the tree");
        let mut roles = n.own_roles();
        let mut pins = n.pins as u64;
        let mut child = n.first_child;
        let mut prev = NIL;
        while child != NIL {
            assert_eq!(self.nodes[child as usize].parent, idx, "parent link broken");
            assert_eq!(
                self.nodes[child as usize].prev_sibling, prev,
                "sibling chain broken"
            );
            let (r, p) = self.check_node(child);
            roles += r;
            pins += p;
            prev = child;
            child = self.nodes[child as usize].next_sibling;
        }
        assert_eq!(n.last_child, prev, "last_child out of date");
        assert_eq!(n.subtree_roles, roles, "subtree_roles out of sync at {idx}");
        assert_eq!(n.subtree_pins, pins, "subtree_pins out of sync at {idx}");
        (roles, pins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: u32) -> Symbol {
        Symbol(n)
    }

    fn el(buf: &mut BufferTree, parent: NodeId, name: u32, roles: &[(RoleId, u32)]) -> NodeId {
        buf.append_element(parent, sym(name), roles, Ordinals::FIRST)
    }

    #[test]
    fn builds_a_tree() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[(RoleId(0), 1)]);
        let c1 = el(&mut b, a, 2, &[(RoleId(1), 1)]);
        let c2 = el(&mut b, a, 3, &[(RoleId(1), 1)]);
        assert_eq!(b.first_child(a), Some(c1));
        assert_eq!(b.next_sibling(c1), Some(c2));
        assert_eq!(b.parent(c2), Some(a));
        assert_eq!(b.stats().live, 3);
        b.check_integrity();
    }

    #[test]
    fn role_less_subtree_purged_on_close() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        let c = el(&mut b, a, 2, &[]);
        b.close(c);
        // c alone can be purged once closed (no roles anywhere beneath).
        assert_eq!(b.stats().live, 1);
        b.close(a);
        assert_eq!(b.stats().live, 0);
        assert_eq!(b.stats().purged, 2);
        b.check_integrity();
    }

    #[test]
    fn roles_prevent_purge_until_decremented() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        let c = el(&mut b, a, 2, &[(RoleId(0), 1)]);
        b.close(c);
        b.close(a);
        assert_eq!(b.stats().live, 2, "role on c keeps both alive");
        b.decrement_role(c, RoleId(0), 1);
        assert_eq!(
            b.stats().live,
            0,
            "decrement cascades the purge up through a"
        );
        b.check_integrity();
    }

    #[test]
    fn paper_figure1_purge_sequence() {
        // book{r3,r5,r6} title{r5,r7} author{r5}; after signing off r3, r4,
        // r5 the buffer holds book{r6} and title{r7} (author gone).
        let r3 = RoleId(2);
        let r5 = RoleId(4);
        let r6 = RoleId(5);
        let r7 = RoleId(6);
        let mut b = BufferTree::new(true);
        let bib = el(&mut b, NodeId::ROOT, 1, &[(RoleId(1), 1)]);
        let book = el(&mut b, bib, 2, &[(r3, 1), (r5, 1), (r6, 1)]);
        let title = el(&mut b, book, 3, &[(r5, 1), (r7, 1)]);
        let author = el(&mut b, book, 4, &[(r5, 1)]);
        b.close(title);
        b.close(author);
        b.close(book);
        assert_eq!(b.stats().live, 4);
        // signOff($x, r3); signOff($x/descendant-or-self::node(), r5).
        b.decrement_role(book, r3, 1);
        b.decrement_role(book, r5, 1);
        b.decrement_role(title, r5, 1);
        b.decrement_role(author, r5, 1);
        // Figure 1(c): author purged; book{r6}, title{r7} remain.
        assert_eq!(b.stats().live, 3);
        assert_eq!(b.role_count(book, r6), 1);
        assert_eq!(b.role_count(title, r7), 1);
        assert_eq!(b.roles(book).len(), 1);
        // Second loop signs off r6 and r7: everything drains.
        b.decrement_role(book, r6, 1);
        b.decrement_role(title, r7, 1);
        b.decrement_role(bib, RoleId(1), 1);
        b.close(bib);
        assert_eq!(b.stats().live, 0);
        b.check_integrity();
    }

    #[test]
    fn open_nodes_are_never_purged() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        // a is open: closing nothing, no purge even though no roles.
        assert_eq!(b.stats().live, 1);
        let c = el(&mut b, a, 2, &[(RoleId(0), 1)]);
        b.decrement_role(c, RoleId(0), 1);
        // c closed? No: element children born open.
        assert_eq!(b.stats().live, 2, "open c cannot be purged");
        b.close(c);
        assert_eq!(b.stats().live, 1, "closing triggers the deferred purge");
        b.check_integrity();
    }

    #[test]
    fn pins_defer_purge() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        let c = el(&mut b, a, 2, &[(RoleId(0), 1)]);
        b.pin(c);
        b.close(c);
        b.decrement_role(c, RoleId(0), 1);
        assert_eq!(b.stats().live, 2, "pin keeps c (and its parent chain)");
        b.unpin(c);
        assert_eq!(b.stats().live, 1, "unpin executes the deferred purge");
        b.check_integrity();
    }

    #[test]
    fn pin_on_descendant_protects_ancestors() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        let c = el(&mut b, a, 2, &[]);
        b.pin(c);
        b.close(c);
        b.close(a);
        assert_eq!(
            b.stats().live,
            2,
            "pinned descendant blocks the whole chain"
        );
        b.unpin(c);
        assert_eq!(b.stats().live, 0);
        b.check_integrity();
    }

    #[test]
    fn purge_frees_highest_dead_ancestor() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        let m = el(&mut b, a, 2, &[]);
        let c = el(&mut b, m, 3, &[(RoleId(0), 1)]);
        b.close(c);
        b.close(m);
        b.close(a);
        assert_eq!(b.stats().live, 3);
        b.decrement_role(c, RoleId(0), 1);
        // All three die in one cascade.
        assert_eq!(b.stats().live, 0);
        assert_eq!(b.stats().purged, 3);
        b.check_integrity();
    }

    #[test]
    fn siblings_survive_purge_of_neighbor() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[(RoleId(9), 1)]);
        let c1 = el(&mut b, a, 2, &[(RoleId(0), 1)]);
        let c2 = el(&mut b, a, 3, &[(RoleId(1), 1)]);
        let c3 = el(&mut b, a, 4, &[(RoleId(2), 1)]);
        for c in [c1, c2, c3] {
            b.close(c);
        }
        b.decrement_role(c2, RoleId(1), 1);
        assert_eq!(b.stats().live, 3);
        assert_eq!(
            b.next_sibling(c1),
            Some(c3),
            "sibling chain bridges the gap"
        );
        b.check_integrity();
    }

    #[test]
    fn slot_reuse_with_generations() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        let c = el(&mut b, a, 2, &[]);
        b.close(c); // purged
        let d = el(&mut b, a, 3, &[]);
        // d reuses c's slot with a different generation.
        assert_ne!(c, d);
        assert_eq!(b.name(d), Some(sym(3)));
        b.check_integrity();
    }

    #[test]
    fn multiset_roles_decrement_partially() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[(RoleId(0), 3)]);
        b.close(a);
        assert_eq!(b.decrement_role(a, RoleId(0), 1), 1);
        assert_eq!(b.role_count(a, RoleId(0)), 2);
        assert_eq!(b.stats().live, 1);
        assert_eq!(b.decrement_role(a, RoleId(0), 5), 2, "saturating");
        assert_eq!(b.stats().live, 0);
        b.check_integrity();
    }

    #[test]
    fn purge_disabled_mode_keeps_everything() {
        let mut b = BufferTree::new(false);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        let c = el(&mut b, a, 2, &[]);
        b.close(c);
        b.close(a);
        assert_eq!(b.stats().live, 2, "no purging in full-buffering mode");
        b.check_integrity();
    }

    #[test]
    fn string_value_concatenates_subtree_text() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[(RoleId(0), 1)]);
        b.append_text(a, "Hello ", &[(RoleId(0), 1)], Ordinals::FIRST);
        let inner = el(&mut b, a, 2, &[(RoleId(0), 1)]);
        b.append_text(inner, "wor", &[(RoleId(0), 1)], Ordinals::FIRST);
        b.close(inner);
        b.append_text(a, "ld", &[(RoleId(0), 1)], Ordinals::FIRST);
        let mut s = String::new();
        b.string_value(a, &mut s);
        assert_eq!(s, "Hello world");
    }

    #[test]
    fn attributes_are_accessible() {
        let mut b = BufferTree::new(true);
        let mut attrs = AttrBuf::new();
        attrs.push(sym(7), "person0");
        attrs.push(sym(9), "x");
        let a = b.append_element_with_attrs(
            NodeId::ROOT,
            sym(1),
            &mut attrs,
            &[(RoleId(0), 1)],
            Ordinals::FIRST,
        );
        assert!(attrs.is_empty(), "append takes the scratch's contents");
        assert_eq!(b.attr(a, sym(7)), Some("person0"));
        assert_eq!(b.attr(a, sym(9)), Some("x"));
        assert_eq!(b.attr(a, sym(8)), None);
        assert_eq!(b.attrs(a).len(), 2);
        let pairs: Vec<_> = b.attrs(a).iter().collect();
        assert_eq!(pairs, [(sym(7), "person0"), (sym(9), "x")]);
    }

    #[test]
    fn attr_pools_recycle_through_purge() {
        let mut b = BufferTree::new(true);
        let mut attrs = AttrBuf::new();
        for round in 0..3 {
            attrs.clear();
            attrs.push(sym(7), "v");
            let a =
                b.append_element_with_attrs(NodeId::ROOT, sym(1), &mut attrs, &[], Ordinals::FIRST);
            b.append_text(a, "t", &[], Ordinals::FIRST);
            b.close(a); // purged: containers return to the pools
            assert_eq!(b.stats().live, 0, "round {round}");
        }
        assert_eq!(b.stats().purged, 6);
        b.check_integrity();
    }

    #[test]
    fn serialize_round_trips() {
        let mut symbols = SymbolTable::new();
        let title = symbols.intern("title");
        let book = symbols.intern("book");
        let id_attr = symbols.intern("id");
        let mut b = BufferTree::new(true);
        let r = &[(RoleId(0), 1)][..];
        let mut attrs = AttrBuf::new();
        attrs.push(id_attr, "b&1");
        let bk = b.append_element_with_attrs(NodeId::ROOT, book, &mut attrs, r, Ordinals::FIRST);
        let t = b.append_element(bk, title, r, Ordinals::FIRST);
        b.append_text(t, "On <Streams>", r, Ordinals::FIRST);
        b.close(t);
        b.close(bk);
        let mut w = XmlWriter::new(Vec::new());
        b.serialize(bk, &symbols, &mut w).unwrap();
        let out = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(
            out,
            "<book id=\"b&amp;1\"><title>On &lt;Streams&gt;</title></book>"
        );
    }

    #[test]
    fn deep_chain_serializes_and_values_iteratively() {
        // 200k nested elements: recursive walks would overflow the stack.
        // (Shrunk under Miri — the iterative shape is what is under test,
        // and the interpreter would take minutes on the full depth.)
        const DEPTH: u32 = if cfg!(miri) { 2_000 } else { 200_000 };
        let mut symbols = SymbolTable::new();
        let d = symbols.intern("d");
        let mut b = BufferTree::new(false);
        let mut parent = NodeId::ROOT;
        for _ in 0..DEPTH {
            parent = b.append_element(parent, d, &[], Ordinals::FIRST);
        }
        b.append_text(parent, "bottom", &[], Ordinals::FIRST);
        let mut s = String::new();
        b.string_value(b.first_child(NodeId::ROOT).unwrap(), &mut s);
        assert_eq!(s, "bottom");
        let mut w = XmlWriter::new(Vec::new());
        b.serialize(NodeId::ROOT, &symbols, &mut w).unwrap();
        let out = w.finish().unwrap();
        assert_eq!(out.len() as u32, DEPTH * 3 + DEPTH * 4 + 6);
        assert!(out.starts_with(b"<d><d>"));
        assert!(out.ends_with(b"</d></d>"));
        let text_at = (DEPTH * 3) as usize;
        assert_eq!(&out[text_at..text_at + 6], b"bottom");
    }

    #[test]
    fn peak_statistics_track_watermark() {
        let mut b = BufferTree::new(true);
        let a = el(&mut b, NodeId::ROOT, 1, &[]);
        for i in 0..10 {
            let c = el(&mut b, a, 10 + i, &[]);
            b.close(c); // each purged right away
        }
        assert_eq!(b.stats().peak_live, 2);
        assert_eq!(b.stats().allocated, 11);
        assert_eq!(b.stats().purged, 10);
    }
}
