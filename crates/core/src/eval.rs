//! The pull-based query executor (paper Figure 2, right component).
//!
//! The executor runs the compiled program (`gcx-ir`) lowered from the
//! *rewritten* query (with signOff statements) sequentially. Whenever it
//! needs data that is not yet buffered — the next node of a for-loop, the
//! witness of an `exists`, the closing tag of a subtree about to be
//! emitted — it blocks, and the buffer manager pulls tokens from the
//! stream preprojector until the request can be answered. signOff
//! instructions decrement role instances (with derivation multiplicity)
//! and thereby trigger active garbage collection.
//!
//! All lowering happened at query-compile time: the program carries
//! pre-compiled [`EvalStep`] tables and a pre-interned symbol table that
//! seeds the run's table, so a run interns no query names and compiles no
//! steps — startup slices the program's step arena into shared per-path
//! step slices, and that is the only per-run setup.
//!
//! ## Multiplicity accounting
//!
//! The stream matcher assigns role instances per *derivation* of the
//! absolute projection path. A `signOff($v/rel, r)` at the end of `$v`'s
//! loop body removes, for every buffered node matching `rel` below the
//! current binding `b`, `derivations(rel from b) × mult(b)` instances,
//! where `mult(b)` is the derivation count of `b`'s own binding (captured
//! when the binding was established). Summed over all bindings this equals
//! exactly the assigned count — the buffer drains to the virtual root by
//! the end of every run (asserted by tests).

use crate::buffer::{BufferTree, NodeId};
use crate::cursor::{CursorPool, CursorState, EvalStep, PathCursor, StepTest};
use crate::error::EngineError;
use crate::stream::BufferFeed;
use gcx_ir::{
    fmt_number, AttrPlan, CondId, CondIr, EAxis, Instr, InstrId, OperandId, OperandIr, PathId,
    PlanRoot, Program,
};
use gcx_query::ast::{AggFunc, CmpOp, RoleId, VarId};
use gcx_xml::{FxBuildHasher, SymbolTable, XmlWriter};
use std::collections::HashMap;
use std::io::Write;
use std::rc::Rc;

/// A for-variable binding: the node plus its binding-role multiplicity
/// (derivation count), captured at iteration start.
#[derive(Debug, Clone, Copy)]
struct Binding {
    node: NodeId,
    mult: u32,
}

/// The running executor: buffer + input feed + output + environment.
pub(crate) struct Run<'q, F, W: Write> {
    pub buf: BufferTree,
    pub pre: F,
    pub symbols: SymbolTable,
    pub out: XmlWriter<W>,
    pub execute_signoffs: bool,
    /// The compiled program being executed.
    program: &'q Program,
    env: Vec<Option<Binding>>,
    /// Per-path shared step slices, sliced once at startup from the
    /// program's step arena (symbols are valid verbatim because the run's
    /// table was seeded from the program's pre-interned table).
    path_steps: Vec<Rc<[EvalStep]>>,
    /// Scratch reused by string-value extraction.
    value_scratch: String,
    /// Recycled cursor frame stacks (one cursor per path evaluation).
    cursor_pool: CursorPool,
    /// Reused signOff derivation map.
    signoff_scratch: HashMap<NodeId, u32, FxBuildHasher>,
    /// Recycled value vectors for comparisons/aggregates.
    value_pool: Vec<Vec<Value>>,
}

impl<'q, F: BufferFeed, W: Write> Run<'q, F, W> {
    pub(crate) fn new(
        buf: BufferTree,
        pre: F,
        symbols: SymbolTable,
        out: XmlWriter<W>,
        program: &'q Program,
        execute_signoffs: bool,
    ) -> Self {
        // The only per-run "lowering": share out the program's immutable
        // step arena as one Rc slice per distinct path.
        let path_steps = (0..program.path_count())
            .map(|i| {
                let plan = program.path(PathId(i as u32));
                Rc::from(program.path_steps(plan))
            })
            .collect();
        Run {
            buf,
            pre,
            symbols,
            out,
            execute_signoffs,
            program,
            env: vec![None; program.n_vars()],
            path_steps,
            value_scratch: String::new(),
            cursor_pool: CursorPool::default(),
            signoff_scratch: HashMap::default(),
            value_pool: Vec::new(),
        }
    }

    /// Pull one token from the input feed (a `nextNode()` request), then
    /// enforce the buffer byte budget. Every append funnels through here —
    /// the classic preprojector and the multi-query channel feed alike —
    /// so the budget check lives in exactly one place.
    fn pull(&mut self) -> Result<bool, EngineError> {
        let more = self.pre.advance(&mut self.buf, &mut self.symbols)?;
        self.buf.check_limit()?;
        Ok(more)
    }

    /// Pull one token (used by the engine's final input drain).
    pub(crate) fn pull_public(&mut self) -> Result<bool, EngineError> {
        self.pull()
    }

    /// Flush output and assemble the run report.
    pub(crate) fn finish_report(mut self) -> Result<crate::engine::RunReport, EngineError> {
        self.out.flush()?;
        Ok(crate::engine::RunReport {
            tokens: self.pre.tokens(),
            buffer: self.buf.stats(),
            timeline: self.pre.take_timeline(),
            output_bytes: self.out.bytes_written(),
            max_buffer_bytes: self.buf.max_bytes(),
        })
    }

    /// Block until `n` is closed (its end tag has been read).
    fn wait_closed(&mut self, n: NodeId) -> Result<(), EngineError> {
        while !self.buf.is_closed(n) {
            if !self.pull()? {
                return Err(EngineError::Internal(
                    "input exhausted with an open buffered node".into(),
                ));
            }
        }
        Ok(())
    }

    /// Resolve a path's context node and the binding multiplicity of the
    /// variable it is rooted at (1 for the document root).
    fn resolve_root(&self, root: PlanRoot) -> Result<(NodeId, u32), EngineError> {
        match root {
            PlanRoot::Root => Ok((NodeId::ROOT, 1)),
            PlanRoot::Var(v) => self.env[v.index()]
                .map(|b| (b.node, b.mult))
                .ok_or_else(|| {
                    EngineError::Internal(format!(
                        "variable ${} unbound at runtime",
                        self.program.var_name(v)
                    ))
                }),
        }
    }

    /// The shared step slice of a compiled path.
    #[inline]
    fn steps_of(&self, path: PathId) -> Rc<[EvalStep]> {
        Rc::clone(&self.path_steps[path.index()])
    }

    /// A recycled (or fresh) empty value vector.
    fn pooled_values(&mut self) -> Vec<Value> {
        self.value_pool.pop().unwrap_or_default()
    }

    /// Return a value vector to the pool.
    fn recycle_values(&mut self, mut v: Vec<Value>) {
        v.clear();
        self.value_pool.push(v);
    }

    // ---- instruction execution ----------------------------------------------

    /// Execute one instruction, streaming its result to the output writer.
    pub(crate) fn exec(&mut self, id: InstrId) -> Result<(), EngineError> {
        match self.program.instr(id) {
            Instr::Nop => Ok(()),
            Instr::Seq { first, len } => {
                for i in 0..len {
                    let item = self.program.seq_items(first, len)[i as usize];
                    self.exec(item)?;
                }
                Ok(())
            }
            Instr::Text(s) => {
                self.out.text(self.program.str_(s))?;
                Ok(())
            }
            Instr::Element {
                name,
                attrs_first,
                attrs_len,
                content,
            } => {
                self.out.start_element(self.program.str_(name))?;
                for i in 0..attrs_len {
                    let (k, v) = self.program.attr_pairs(attrs_first, attrs_len)[i as usize];
                    self.out
                        .attribute(self.program.str_(k), self.program.str_(v))?;
                }
                self.exec(content)?;
                self.out.end_element()?;
                Ok(())
            }
            Instr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.exec_cond(cond)? {
                    self.exec(then_branch)
                } else {
                    self.exec(else_branch)
                }
            }
            Instr::For {
                var,
                path,
                role,
                body,
            } => self.exec_for(var, path, role, body),
            Instr::OutputPath(p) => self.exec_output_path(p),
            Instr::Aggregate { func, path } => self.exec_aggregate(func, path),
            Instr::SignOff { path, role } => {
                if self.execute_signoffs {
                    self.exec_signoff(path, role)?;
                }
                Ok(())
            }
        }
    }

    fn exec_for(
        &mut self,
        var: VarId,
        path: PathId,
        binding_role: RoleId,
        body: InstrId,
    ) -> Result<(), EngineError> {
        let plan = self.program.path(path);
        let (ctx, _) = self.resolve_root(plan.root)?;
        let steps = self.steps_of(path);
        let mut cursor = PathCursor::new_pooled(&mut self.buf, ctx, steps, &mut self.cursor_pool);
        let result = loop {
            match cursor.advance(&mut self.buf) {
                CursorState::Match(n) => {
                    let mult = self.buf.role_count(n, binding_role).max(1);
                    self.env[var.index()] = Some(Binding { node: n, mult });
                    let r = self.exec(body);
                    self.env[var.index()] = None;
                    if let Err(e) = r {
                        break Err(e);
                    }
                }
                CursorState::NeedInput => {
                    if let Err(e) = self.pull() {
                        break Err(e);
                    }
                }
                CursorState::Done => break Ok(()),
            }
        };
        cursor.dispose(&mut self.buf, &mut self.cursor_pool);
        result
    }

    /// Emit the nodes selected by a path: deep copies of element subtrees,
    /// the content of text nodes, the values of selected attributes.
    fn exec_output_path(&mut self, path: PathId) -> Result<(), EngineError> {
        let plan = self.program.path(path);
        let (ctx, _) = self.resolve_root(plan.root)?;
        let elem_steps = self.steps_of(path);
        let mut cursor =
            PathCursor::new_pooled(&mut self.buf, ctx, elem_steps, &mut self.cursor_pool);
        let result = loop {
            match cursor.advance(&mut self.buf) {
                CursorState::Match(n) => {
                    let r = match plan.attr {
                        AttrPlan::None => self.emit_node(n),
                        sel => self.emit_attr(n, sel),
                    };
                    if let Err(e) = r {
                        break Err(e);
                    }
                }
                CursorState::NeedInput => {
                    if let Err(e) = self.pull() {
                        break Err(e);
                    }
                }
                CursorState::Done => break Ok(()),
            }
        };
        cursor.dispose(&mut self.buf, &mut self.cursor_pool);
        result
    }

    fn emit_attr(&mut self, n: NodeId, sel: AttrPlan) -> Result<(), EngineError> {
        // `buf` and `out` are distinct fields, so attribute values stream
        // straight from the buffer to the writer without copies.
        match sel {
            AttrPlan::Name(name) => {
                if let Some(v) = self.buf.attr(n, name) {
                    self.out.text(v)?;
                }
            }
            AttrPlan::Any => {
                for (_, v) in self.buf.attrs(n).iter() {
                    self.out.text(v)?;
                }
            }
            AttrPlan::None => unreachable!("emit_attr called without a selector"),
        }
        Ok(())
    }

    fn emit_node(&mut self, n: NodeId) -> Result<(), EngineError> {
        if let Some(content) = self.buf.text_content(n) {
            self.out.text(content)?;
            return Ok(());
        }
        // Elements are emitted whole: wait for the subtree to finish
        // streaming, then serialize it from the buffer.
        self.wait_closed(n)?;
        self.buf.serialize(n, &self.symbols, &mut self.out)?;
        Ok(())
    }

    // ---- conditions -----------------------------------------------------------

    fn exec_cond(&mut self, id: CondId) -> Result<bool, EngineError> {
        match self.program.cond(id) {
            CondIr::Const(b) => Ok(b),
            CondIr::Not(inner) => Ok(!self.exec_cond(inner)?),
            CondIr::And(a, b) => Ok(self.exec_cond(a)? && self.exec_cond(b)?),
            CondIr::Or(a, b) => Ok(self.exec_cond(a)? || self.exec_cond(b)?),
            CondIr::Exists(p) => self.exec_exists(p),
            CondIr::Compare { op, lhs, rhs } => {
                let l = self.collect_values(lhs)?;
                let r = self.collect_values(rhs)?;
                let result = compare_existential(op, &l, &r);
                self.recycle_values(l);
                self.recycle_values(r);
                Ok(result)
            }
            CondIr::StringFn {
                func,
                haystack,
                needle,
            } => {
                let h = self.collect_values(haystack)?;
                let n = self.collect_values(needle)?;
                let result = h
                    .iter()
                    .any(|hv| n.iter().any(|nv| func.apply(&hv.text, &nv.text)));
                self.recycle_values(h);
                self.recycle_values(n);
                Ok(result)
            }
        }
    }

    /// `exists($x/p)`: block until the first witness appears or the search
    /// region is exhausted — the paper's "until the data is available in
    /// the buffer or it has become evident that the data does not exist".
    fn exec_exists(&mut self, path: PathId) -> Result<bool, EngineError> {
        let plan = self.program.path(path);
        let (ctx, _) = self.resolve_root(plan.root)?;
        let elem_steps = self.steps_of(path);
        let mut cursor =
            PathCursor::new_pooled(&mut self.buf, ctx, elem_steps, &mut self.cursor_pool);
        let result = loop {
            match cursor.advance(&mut self.buf) {
                CursorState::Match(n) => match plan.attr {
                    AttrPlan::None => break Ok(true),
                    AttrPlan::Any => {
                        if !self.buf.attrs(n).is_empty() {
                            break Ok(true);
                        }
                    }
                    AttrPlan::Name(a) => {
                        if self.buf.attr(n, a).is_some() {
                            break Ok(true);
                        }
                    }
                },
                CursorState::NeedInput => {
                    if let Err(e) = self.pull() {
                        break Err(e);
                    }
                }
                CursorState::Done => break Ok(false),
            }
        };
        cursor.dispose(&mut self.buf, &mut self.cursor_pool);
        result
    }

    /// Collect the atomized values of an operand (blocking until the
    /// selected subtrees are complete).
    fn collect_values(&mut self, op: OperandId) -> Result<Vec<Value>, EngineError> {
        let mut values = self.pooled_values();
        match self.program.operand(op) {
            OperandIr::Lit { text, num } => {
                values.push(Value {
                    text: self.program.str_(text).to_string(),
                    num,
                });
                Ok(values)
            }
            OperandIr::Path(p) => {
                self.collect_path_values(p, &mut values)?;
                Ok(values)
            }
        }
    }

    /// Collect the atomized values selected by a path into `values`.
    fn collect_path_values(
        &mut self,
        path: PathId,
        values: &mut Vec<Value>,
    ) -> Result<(), EngineError> {
        let plan = self.program.path(path);
        let (ctx, _) = self.resolve_root(plan.root)?;
        let elem_steps = self.steps_of(path);
        let mut cursor =
            PathCursor::new_pooled(&mut self.buf, ctx, elem_steps, &mut self.cursor_pool);
        let result = loop {
            match cursor.advance(&mut self.buf) {
                CursorState::Match(n) => {
                    let r = self.value_of(n, plan.attr, values);
                    if let Err(e) = r {
                        break Err(e);
                    }
                }
                CursorState::NeedInput => {
                    if let Err(e) = self.pull() {
                        break Err(e);
                    }
                }
                CursorState::Done => break Ok(()),
            }
        };
        cursor.dispose(&mut self.buf, &mut self.cursor_pool);
        result
    }

    fn value_of(
        &mut self,
        n: NodeId,
        attr_sel: AttrPlan,
        values: &mut Vec<Value>,
    ) -> Result<(), EngineError> {
        match attr_sel {
            AttrPlan::Name(a) => {
                if let Some(v) = self.buf.attr(n, a) {
                    values.push(Value::from_string(v.to_string()));
                }
            }
            AttrPlan::Any => {
                for (_, v) in self.buf.attrs(n).iter() {
                    values.push(Value::from_string(v.to_string()));
                }
            }
            AttrPlan::None => {
                if !self.buf.is_text(n) {
                    self.wait_closed(n)?;
                }
                self.value_scratch.clear();
                self.buf.string_value(n, &mut self.value_scratch);
                values.push(Value::from_string(self.value_scratch.clone()));
            }
        }
        Ok(())
    }

    // ---- aggregates (extension) ------------------------------------------------

    fn exec_aggregate(&mut self, func: AggFunc, path: PathId) -> Result<(), EngineError> {
        let mut values = self.pooled_values();
        self.collect_path_values(path, &mut values)?;
        let text = match func {
            AggFunc::Count => Some(fmt_number(values.len() as f64)),
            AggFunc::Sum => {
                let sum: f64 = values.iter().filter_map(|v| v.num).sum();
                Some(fmt_number(sum))
            }
            AggFunc::Min => values
                .iter()
                .filter_map(|v| v.num)
                .fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.min(v)))
                })
                .map(fmt_number),
            AggFunc::Max => values
                .iter()
                .filter_map(|v| v.num)
                .fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                })
                .map(fmt_number),
            AggFunc::Avg => {
                let nums: Vec<f64> = values.iter().filter_map(|v| v.num).collect();
                if nums.is_empty() {
                    None
                } else {
                    Some(fmt_number(nums.iter().sum::<f64>() / nums.len() as f64))
                }
            }
        };
        self.recycle_values(values);
        if let Some(t) = text {
            self.out.text(&t)?;
        }
        Ok(())
    }

    // ---- signOff execution -------------------------------------------------------

    /// Execute `signOff(target, role)`: decrement role instances on every
    /// buffered node matching the target path, with derivation
    /// multiplicities, triggering garbage collection.
    fn exec_signoff(&mut self, path: PathId, role: RoleId) -> Result<(), EngineError> {
        // "These commands must not be issued too early" (paper §3): a
        // signOff over a non-empty path decrements role instances on a
        // whole region, so that region must have finished streaming —
        // otherwise nodes arriving later keep instances nobody will ever
        // remove. For a variable anchor the region is the binding's
        // subtree (block until its end tag); loop bodies that never block
        // (e.g. attribute-only conditions) finish while the binding is
        // still open, so this wait is load-bearing. For a query-end anchor
        // the region is the whole document (evaluation may have
        // short-circuited). A signOff of the anchor node itself (empty
        // path) is always safe: roles are assigned at node creation.
        let plan = self.program.path(path);
        let (ctx, mult) = self.resolve_root(plan.root)?;
        if plan.has_steps() {
            match plan.root {
                PlanRoot::Root => while self.pull()? {},
                PlanRoot::Var(_) => self.wait_closed(ctx)?,
            }
        }
        // Attribute steps never appear in signOff targets (analysis strips
        // them when deriving role paths), so the plan's element steps are
        // the whole target.
        let steps = self.steps_of(path);
        // Collect first (merging duplicate derivations), then decrement:
        // decrements purge eagerly and would invalidate a live walk. The
        // map is reused across signOffs (one per preemption point per
        // binding — allocation at binding rate otherwise).
        let mut matches = std::mem::take(&mut self.signoff_scratch);
        matches.clear();
        collect_derivations(&self.buf, ctx, &steps, 0, mult, &mut matches);
        for (&node, &times) in matches.iter() {
            self.buf.decrement_role(node, role, times);
        }
        self.signoff_scratch = matches;
        Ok(())
    }
}

/// Walk the buffered subtree counting derivations of `steps[i..]` from
/// `node`; accumulate `mult × derivations` per matched node.
fn collect_derivations(
    buf: &BufferTree,
    node: NodeId,
    steps: &[EvalStep],
    i: usize,
    mult: u32,
    out: &mut HashMap<NodeId, u32, FxBuildHasher>,
) {
    if i == steps.len() {
        *out.entry(node).or_insert(0) += mult;
        return;
    }
    let step = steps[i];
    match step.axis {
        EAxis::Child => {
            let mut child = buf.first_child(node);
            while let Some(c) = child {
                if step.test.matches(buf, c) {
                    match step.pos {
                        Some(k) if step.test.pred_ordinal(buf, c) != k => {}
                        _ => collect_derivations(buf, c, steps, i + 1, mult, out),
                    }
                }
                child = buf.next_sibling(c);
            }
        }
        EAxis::Descendant => {
            let mut child = buf.first_child(node);
            while let Some(c) = child {
                collect_dos(buf, c, steps, i, mult, out);
                child = buf.next_sibling(c);
            }
        }
        EAxis::DescendantOrSelf => collect_dos(buf, node, steps, i, mult, out),
        EAxis::SelfAxis => {
            if step.test.matches(buf, node) {
                collect_derivations(buf, node, steps, i + 1, mult, out);
            }
        }
    }
}

/// Descendant-or-self helper: self match, then every descendant at the
/// same step. Iterative over the subtree — signOff targets routinely carry
/// a trailing `descendant-or-self::node()`, so this walk sees the full
/// document depth and must not recurse per level.
fn collect_dos(
    buf: &BufferTree,
    node: NodeId,
    steps: &[EvalStep],
    i: usize,
    mult: u32,
    out: &mut HashMap<NodeId, u32, FxBuildHasher>,
) {
    let step = steps[i];
    let mut cur = Some(node);
    while let Some(n) = cur {
        if step.test.matches(buf, n) {
            // Remaining steps are bounded by the (small) path length, so
            // this recursion is safe; only the subtree walk is iterative.
            collect_derivations(buf, n, steps, i + 1, mult, out);
        }
        cur = match buf.first_child(n) {
            Some(c) => Some(c),
            None => {
                // Ascend to the next sibling, stopping at the walk root.
                let mut m = n;
                loop {
                    if m == node {
                        break None;
                    }
                    if let Some(s) = buf.next_sibling(m) {
                        break Some(s);
                    }
                    m = buf.parent(m).expect("walk escaped the subtree");
                }
            }
        };
    }
}

/// An atomized value: string plus pre-parsed numeric form.
#[derive(Debug, Clone)]
struct Value {
    text: String,
    num: Option<f64>,
}

impl Value {
    fn from_string(text: String) -> Value {
        let num = text.trim().parse::<f64>().ok();
        Value { text, num }
    }
}

/// General comparison with existential semantics: true iff some pair of
/// values satisfies the operator. Numeric comparison when both sides are
/// numeric, string comparison otherwise.
fn compare_existential(op: CmpOp, lhs: &[Value], rhs: &[Value]) -> bool {
    lhs.iter().any(|l| {
        rhs.iter().any(|r| match (l.num, r.num) {
            (Some(a), Some(b)) => cmp_ord(op, a.partial_cmp(&b)),
            _ => cmp_ord(op, Some(l.text.cmp(&r.text))),
        })
    })
}

fn cmp_ord(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    let Some(ord) = ord else { return false };
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::from_string(s.to_string())
    }

    #[test]
    fn numeric_comparison_when_both_numeric() {
        assert!(compare_existential(CmpOp::Lt, &[v("9")], &[v("10")]));
        // String comparison would say "9" > "10".
        assert!(!compare_existential(CmpOp::Gt, &[v("9")], &[v("10")]));
    }

    #[test]
    fn string_comparison_otherwise() {
        assert!(compare_existential(CmpOp::Eq, &[v("abc")], &[v("abc")]));
        assert!(compare_existential(CmpOp::Lt, &[v("abc")], &[v("abd")]));
        assert!(!compare_existential(CmpOp::Eq, &[v("abc")], &[v("ABC")]));
    }

    #[test]
    fn existential_over_sequences() {
        let lhs = [v("1"), v("5"), v("9")];
        let rhs = [v("5")];
        assert!(compare_existential(CmpOp::Eq, &lhs, &rhs));
        assert!(compare_existential(CmpOp::Gt, &lhs, &rhs));
        assert!(compare_existential(CmpOp::Lt, &lhs, &rhs));
        assert!(
            !compare_existential(CmpOp::Eq, &[], &rhs),
            "empty sequence matches nothing"
        );
    }

    #[test]
    fn value_parses_numbers_with_whitespace() {
        assert_eq!(v(" 42 ").num, Some(42.0));
        assert_eq!(v("x42").num, None);
    }
}
