//! The resumable query executor (paper Figure 2, right component).
//!
//! The executor runs the compiled program (`gcx-ir`) lowered from the
//! *rewritten* query (with signOff statements) sequentially — but as a
//! **sans-IO state machine**, not a blocking recursion. The control state
//! lives in an explicit continuation stack of [`Task`]s; whenever the
//! machine needs data that is not yet buffered — the next node of a
//! for-loop, the witness of an `exists`, the closing tag of a subtree
//! about to be emitted — [`Vm::resume`] returns [`VmStatus::NeedInput`]
//! with every suspended loop frozen in place. The driver (the blocking
//! [`run_with_feed`](crate::run_with_feed) loop, or the push-based
//! [`EvalSession`](crate::EvalSession) as chunks arrive) applies exactly
//! one stream event to the buffer and resumes. This is the paper's
//! blocking protocol — "query evaluation remains blocked until the buffer
//! manager has responded" — with the block turned inside out so the engine
//! can be suspended at any byte boundary. signOff instructions decrement
//! role instances (with derivation multiplicity) and thereby trigger
//! active garbage collection.
//!
//! All lowering happened at query-compile time: the program carries
//! pre-compiled [`EvalStep`] tables and a pre-interned symbol table that
//! seeds the run's table, so a run interns no query names and compiles no
//! steps — startup slices the program's step arena into shared per-path
//! step slices, and that is the only per-run setup.
//!
//! ## Multiplicity accounting
//!
//! The stream matcher assigns role instances per *derivation* of the
//! absolute projection path. A `signOff($v/rel, r)` at the end of `$v`'s
//! loop body removes, for every buffered node matching `rel` below the
//! current binding `b`, `derivations(rel from b) × mult(b)` instances,
//! where `mult(b)` is the derivation count of `b`'s own binding (captured
//! when the binding was established). Summed over all bindings this equals
//! exactly the assigned count — the buffer drains to the virtual root by
//! the end of every run (asserted by tests).

use crate::buffer::{BufferTree, NodeId};
use crate::cursor::{CursorPool, CursorState, EvalStep, PathCursor, StepTest};
use crate::error::EngineError;
use crate::obs::TaskObs;
use gcx_ir::{
    fmt_number, AttrPlan, CondId, CondIr, EAxis, Instr, InstrId, OperandId, OperandIr, PathId,
    PlanRoot, Program,
};
use gcx_query::ast::{AggFunc, CmpOp, RoleId, StrFunc, VarId};
use gcx_xml::{FxBuildHasher, Symbol, SymbolTable, XmlWriter};
use std::collections::HashMap;
use std::io::Write;
use std::rc::Rc;
use std::sync::Arc;

/// A for-variable binding: the node plus its binding-role multiplicity
/// (derivation count), captured at iteration start.
#[derive(Debug, Clone, Copy)]
struct Binding {
    node: NodeId,
    mult: u32,
}

/// What a [`Vm::resume`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VmStatus {
    /// The machine is blocked on stream data: apply one event to the
    /// buffer (or declare the input exhausted) and resume.
    NeedInput,
    /// The program ran to completion (output fully emitted).
    Done,
}

/// What executing one continuation frame produced ([`Vm::step`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    /// The frame completed (possibly scheduling more frames).
    Continue,
    /// The frame blocked on stream data and pushed itself back.
    NeedInput,
}

/// One suspended continuation frame. The stack is the executor's whole
/// control state: pushing schedules work (last pushed runs first), and a
/// frame that blocks pushes itself back before the machine suspends — so
/// `resume` is restartable at every suspension point.
///
/// Loop frames do **not** own their [`PathCursor`]: cursors live on the
/// [`Vm::cursors`] side stack, LIFO-parallel to the loop frames that
/// opened them (an inner loop always runs to completion before its outer
/// loop pops, so the top of the cursor stack is always the running
/// loop's cursor). That keeps every `Task` a couple of words, so the
/// per-iteration re-push of a loop frame moves no cursor state — the
/// hot-loop cost that made the sans-IO conversion ~10-15% slower than
/// the old recursion on scan-bound queries.
enum Task {
    /// Dispatch one instruction.
    Exec(InstrId),
    /// A sequence, `idx` children already scheduled.
    Seq { first: u32, len: u32, idx: u32 },
    /// Close the element opened by the matching `Instr::Element`.
    EndElement,
    /// Branch on the condition result on top of the bool stack.
    IfBranch {
        then_branch: InstrId,
        else_branch: InstrId,
    },
    /// A for-loop mid-iteration; its cursor (top of the cursor stack)
    /// pins its scan position.
    ForLoop {
        var: VarId,
        role: RoleId,
        body: InstrId,
    },
    /// An output path mid-iteration.
    OutputLoop { attr: AttrPlan },
    /// Wait for `node`'s end tag, then serialize its subtree.
    EmitClosed(NodeId),
    /// Evaluate a condition, pushing its result on the bool stack.
    Cond(CondId),
    /// Negate the bool on top of the stack.
    NotFinish,
    /// Short-circuit `and`: evaluate the rhs only if the lhs held.
    AndRhs(CondId),
    /// Short-circuit `or`: evaluate the rhs only if the lhs failed.
    OrRhs(CondId),
    /// An `exists` probe mid-iteration. `cache` carries the memo slot
    /// and resolved context of a [`CondIr::CachedExists`] so the answer
    /// is stored when the probe completes.
    ExistsLoop {
        attr: AttrPlan,
        cache: Option<(u32, NodeId)>,
    },
    /// Compare the two value vectors on top of the value stack.
    CompareFinish(CmpOp),
    /// Apply a string predicate to the two value vectors on top.
    StringFnFinish(StrFunc),
    /// Atomize an operand onto the value stack.
    Operand(OperandId),
    /// Collect a path's atomized values into the top value vector.
    CollectLoop { attr: AttrPlan },
    /// Wait for `node`'s end tag, then push its string value.
    CollectClosed(NodeId),
    /// Fold the top value vector through an aggregate and emit it.
    AggFinish(AggFunc),
    /// Wait for `node`'s end tag (signOff over a variable-rooted path:
    /// the binding's subtree must have finished streaming).
    WaitClosed(NodeId),
    /// [`Task::WaitClosed`] with a schema shortcut: the signOff target's
    /// first step is `child::want`, so once a DTD sibling-order cutoff
    /// proves `want` exhausted under `node`, every node the target can
    /// ever select is buffered and closed — the signOff may run before
    /// `node`'s end tag. This is the paper's "earliest possible" moment
    /// moved earlier by schema knowledge.
    WaitClosedOrExhausted { node: NodeId, want: Symbol },
    /// Consume the rest of the input (signOff over a root-anchored path:
    /// the whole document is the region).
    DrainInput,
    /// Decrement role instances over the (now complete) target region.
    SignoffExec {
        path: PathId,
        role: RoleId,
        ctx: NodeId,
        mult: u32,
    },
    /// A hash join's first execution mid-iteration: runs the original
    /// loop (same cursor, same operand order, same branching) while
    /// teeing key values into the join index.
    JoinBuildLoop { slot: u32 },
    /// Finish one build iteration: record the entry's keys, then branch
    /// exactly as the original `if (key = probe)` would.
    JoinBuildFinish { slot: u32, entry: u32 },
    /// Probe dispatch: the probe operand's values are on the value
    /// stack; compute the candidate entries (or divert to the fallback
    /// loop if any candidate went stale).
    JoinProbe { slot: u32 },
    /// Iterate the candidate entries in build (= document) order,
    /// binding the join variable with its recorded multiplicity.
    JoinProbeLoop { slot: u32, pos: u32 },
}

/// Display names of the task-frame kinds, parallel to [`task_kind`].
/// Frame timing attributes evaluation cost by kind — e.g. the Q8
/// allocation cliff shows up as `CollectLoop`/`CollectClosed` dominance.
const TASK_KIND_NAMES: [&str; 26] = [
    "Exec",
    "Seq",
    "EndElement",
    "IfBranch",
    "ForLoop",
    "OutputLoop",
    "EmitClosed",
    "Cond",
    "NotFinish",
    "AndRhs",
    "OrRhs",
    "ExistsLoop",
    "CompareFinish",
    "StringFnFinish",
    "Operand",
    "CollectLoop",
    "CollectClosed",
    "AggFinish",
    "WaitClosed",
    "DrainInput",
    "SignoffExec",
    "JoinBuildLoop",
    "JoinBuildFinish",
    "JoinProbe",
    "JoinProbeLoop",
    "WaitClosedOrExhausted",
];

/// Index of a frame's kind in [`TASK_KIND_NAMES`].
fn task_kind(t: &Task) -> usize {
    match t {
        Task::Exec(_) => 0,
        Task::Seq { .. } => 1,
        Task::EndElement => 2,
        Task::IfBranch { .. } => 3,
        Task::ForLoop { .. } => 4,
        Task::OutputLoop { .. } => 5,
        Task::EmitClosed(_) => 6,
        Task::Cond(_) => 7,
        Task::NotFinish => 8,
        Task::AndRhs(_) => 9,
        Task::OrRhs(_) => 10,
        Task::ExistsLoop { .. } => 11,
        Task::CompareFinish(_) => 12,
        Task::StringFnFinish(_) => 13,
        Task::Operand(_) => 14,
        Task::CollectLoop { .. } => 15,
        Task::CollectClosed(_) => 16,
        Task::AggFinish(_) => 17,
        Task::WaitClosed(_) => 18,
        Task::DrainInput => 19,
        Task::SignoffExec { .. } => 20,
        Task::JoinBuildLoop { .. } => 21,
        Task::JoinBuildFinish { .. } => 22,
        Task::JoinProbe { .. } => 23,
        Task::JoinProbeLoop { .. } => 24,
        Task::WaitClosedOrExhausted { .. } => 25,
    }
}

/// Frame-timing sample rate: the clock is read around one frame in
/// `TIMING_SAMPLE` per kind (always including each kind's first frame),
/// and reported nanos are scaled back up by the exact frame counts.
/// Counting stays exact; only the time attribution is sampled. At 139M
/// frames (unoptimized Q8) the old read-the-clock-every-frame scheme
/// cost ~2.4x with telemetry on; sampling bounds it to well under 10%.
const TIMING_SAMPLE: u64 = 64;

/// Per-kind frame timing (telemetry only; boxed off the hot path).
#[derive(Debug)]
struct TaskTiming {
    counts: [u64; TASK_KIND_NAMES.len()],
    sampled: [u64; TASK_KIND_NAMES.len()],
    nanos: [u64; TASK_KIND_NAMES.len()],
}

/// What the suspended machine is waiting for. Recorded at every
/// suspension site so the driver can apply buffered stream events in a
/// tight loop and only re-enter [`Vm::resume`] once the wait is
/// satisfiable — the conditions below are exactly the conditions under
/// which the blocked frame would do anything at all, so skipped resumes
/// are provable no-ops and outputs/peaks are bit-identical to resuming
/// per token.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Wait {
    /// No recorded wait: resume after every event (always correct).
    Any,
    /// A cursor scan is blocked at `parent`'s last buffered child:
    /// progress needs a following sibling (a first child when `after`
    /// is `None`) or `parent`'s end tag. Both nodes are pinned by the
    /// blocked cursor frame. `want` (a child-axis name scan's target) is
    /// a third unblock condition under a schema: a sibling-order cutoff
    /// proving `want` exhausted ends the scan — necessary because a
    /// *skipped* later sibling advances the cutoff without appending any
    /// buffered sibling the other two conditions could see.
    Sibling {
        parent: NodeId,
        after: Option<NodeId>,
        want: Option<Symbol>,
    },
    /// Blocked on `node`'s end tag (emit/collect/signOff waits). The
    /// node is referenced by the blocked frame and kept alive by its
    /// role instances or an enclosing cursor pin.
    Closed(NodeId),
    /// Blocked on `node`'s end tag *or* a cutoff proving its `want`
    /// children exhausted (schema-early signOff waits).
    ClosedOrExhausted { node: NodeId, want: Symbol },
    /// Draining to end of input (query-end signOff anchor).
    Eof,
}

/// Which lifecycle stage a [`JoinState`] is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum JoinPhase {
    /// Never executed: the first execution builds the index.
    #[default]
    Empty,
    /// The build pass is on the task stack (possibly suspended).
    Building,
    /// Index complete: the build cursor ran to `Done`, so the scanned
    /// region is closed and no further match can ever arrive — later
    /// executions probe instead of re-scanning.
    Built,
}

/// Runtime state of one [`gcx_ir::JoinPlan`]: the key index built by
/// mirroring the loop's first execution, consulted by every later one.
/// Entry indices are assigned in build = scan = document order, so a
/// sorted candidate list reproduces the original iteration order.
#[derive(Debug, Default)]
struct JoinState {
    phase: JoinPhase,
    /// Matched binding nodes of the build pass, in scan order.
    entries: Vec<NodeId>,
    /// Numeric key values (canonicalized f64 bits; NaN excluded — it
    /// compares equal to nothing) → entry indices.
    num_bucket: HashMap<u64, Vec<u32>, FxBuildHasher>,
    /// Full untrimmed key text → (entry, key-is-numeric). Consulted by
    /// every probe: a numeric probe string-compares against non-numeric
    /// keys, a non-numeric probe string-compares against all keys —
    /// exactly [`compare_existential`]'s pair rule.
    text_bucket: HashMap<String, Vec<(u32, bool)>, FxBuildHasher>,
    /// Candidate entries of the current probe (sorted, deduped).
    cands: Vec<u32>,
}

/// `f64` bits with `-0.0` folded onto `+0.0`, so numerically equal
/// non-NaN keys hash identically.
#[inline]
fn canon_bits(x: f64) -> u64 {
    if x == 0.0 {
        0f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// The resumable executor: continuation stack + environment + pools. Owns
/// no buffer, no symbols and no output sink — those are lent per `resume`
/// call, which is what lets one driver own the I/O while another suspends
/// mid-document and migrates nothing.
pub(crate) struct Vm {
    /// The compiled program being executed (shared, immutable).
    program: Arc<Program>,
    pub execute_signoffs: bool,
    /// The continuation stack; empty = program complete.
    tasks: Vec<Task>,
    /// Live path cursors, LIFO-parallel to the cursor-owning loop frames
    /// in `tasks` (see the [`Task`] docs).
    cursors: Vec<PathCursor>,
    /// Condition results in evaluation order.
    bools: Vec<bool>,
    /// Operand value vectors in evaluation order.
    vals: Vec<Vec<Value>>,
    env: Vec<Option<Binding>>,
    /// Per-[`gcx_ir::JoinPlan`] runtime state, indexed by join slot.
    joins: Vec<JoinState>,
    /// Memoized `exists` answers per [`CondIr::CachedExists`] slot,
    /// tagged with the resolved context node (generation-tagged, so a
    /// recycled buffer slot can never alias a cached answer).
    exists_cache: Vec<Option<(NodeId, bool)>>,
    /// What the machine was waiting for when `resume` last returned
    /// [`VmStatus::NeedInput`]; drivers batch event application against
    /// it via [`Vm::wait_satisfied`].
    wait: Wait,
    /// Per-path shared step slices, sliced once at startup from the
    /// program's step arena (symbols are valid verbatim because the run's
    /// table was seeded from the program's pre-interned table).
    path_steps: Vec<Rc<[EvalStep]>>,
    /// Scratch reused by string-value extraction.
    value_scratch: String,
    /// Recycled cursor frame stacks (one cursor per path evaluation).
    cursor_pool: CursorPool,
    /// Reused signOff derivation map.
    signoff_scratch: HashMap<NodeId, u32, FxBuildHasher>,
    /// Recycled value vectors for comparisons/aggregates.
    value_pool: Vec<Vec<Value>>,
    /// Set by the driver once the feed reports end of input; blocked
    /// waits then fail instead of suspending forever.
    input_exhausted: bool,
    /// Frame timing, off by default (one null check per frame).
    timing: Option<Box<TaskTiming>>,
}

impl Vm {
    pub(crate) fn new(program: Arc<Program>, execute_signoffs: bool) -> Vm {
        // The only per-run "lowering": share out the program's immutable
        // step arena as one Rc slice per distinct path.
        let path_steps = (0..program.path_count())
            .map(|i| {
                let plan = program.path(PathId(i as u32));
                Rc::from(program.path_steps(plan))
            })
            .collect();
        let env = vec![None; program.n_vars()];
        let root = program.root();
        let joins = (0..program.join_count())
            .map(|_| JoinState::default())
            .collect();
        let exists_cache = vec![None; program.exists_slots() as usize];
        Vm {
            program,
            execute_signoffs,
            tasks: vec![Task::Exec(root)],
            cursors: Vec::new(),
            bools: Vec::new(),
            vals: Vec::new(),
            env,
            joins,
            exists_cache,
            wait: Wait::Any,
            path_steps,
            value_scratch: String::new(),
            cursor_pool: CursorPool::default(),
            signoff_scratch: HashMap::default(),
            value_pool: Vec::new(),
            input_exhausted: false,
            timing: None,
        }
    }

    /// Turn on per-frame timing (exact counts; clock reads sampled at
    /// [`TIMING_SAMPLE`]).
    pub(crate) fn enable_timing(&mut self) {
        self.timing = Some(Box::new(TaskTiming {
            counts: [0; TASK_KIND_NAMES.len()],
            sampled: [0; TASK_KIND_NAMES.len()],
            nanos: [0; TASK_KIND_NAMES.len()],
        }));
    }

    /// Drain the recorded frame timing, hottest kind first. Sampled
    /// nanos are scaled back up by the exact frame counts, so the
    /// reported total estimates full attribution.
    pub(crate) fn take_task_obs(&mut self) -> Vec<TaskObs> {
        let Some(t) = self.timing.take() else {
            return Vec::new();
        };
        let mut v: Vec<TaskObs> = TASK_KIND_NAMES
            .iter()
            .enumerate()
            .filter(|&(i, _)| t.counts[i] > 0)
            .map(|(i, &name)| TaskObs {
                name,
                count: t.counts[i],
                nanos: if t.sampled[i] > 0 {
                    ((t.nanos[i] as u128) * (t.counts[i] as u128) / (t.sampled[i] as u128)) as u64
                } else {
                    0
                },
            })
            .collect();
        v.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.name.cmp(b.name)));
        v
    }

    /// Tell the machine no further stream events will arrive. Blocked
    /// subtree waits turn into errors; end-of-input drains complete.
    pub(crate) fn set_input_exhausted(&mut self) {
        self.input_exhausted = true;
    }

    /// Suspend on missing input, recording what would unblock us — unless
    /// the input is already exhausted, in which case the wait can never
    /// be satisfied (a feed that closed the virtual root unblocks every
    /// cursor, so this is unreachable for well-formed feeds; fail rather
    /// than spin).
    fn need_input(&mut self, wait: Wait) -> Result<StepOutcome, EngineError> {
        if self.input_exhausted {
            Err(EngineError::Internal(
                "input exhausted with an open buffered node".into(),
            ))
        } else {
            self.wait = wait;
            Ok(StepOutcome::NeedInput)
        }
    }

    /// Suspend on the top cursor's blocked scan position (the common
    /// loop-frame case); falls back to [`Wait::Any`] if the cursor has
    /// no hint.
    fn need_input_cursor(&mut self) -> Result<StepOutcome, EngineError> {
        let wait = match self.cursors.last().and_then(|c| c.wait_hint()) {
            Some((parent, after, want)) => Wait::Sibling {
                parent,
                after,
                want,
            },
            None => Wait::Any,
        };
        self.need_input(wait)
    }

    /// Would resuming now let the suspended frame make progress? Used by
    /// drivers to apply buffered stream events in a tight loop between
    /// `resume` calls: while the recorded wait is unsatisfied, the
    /// blocked frame would re-check its condition and suspend again
    /// without any other effect, so skipping those resumes is exact.
    pub(crate) fn wait_satisfied(&self, buf: &BufferTree) -> bool {
        match self.wait {
            Wait::Any => true,
            Wait::Eof => self.input_exhausted,
            Wait::Closed(n) => buf.is_closed(n),
            Wait::ClosedOrExhausted { node, want } => {
                buf.is_closed(node) || buf.schema_sibling_exhausted(node, want)
            }
            Wait::Sibling {
                parent,
                after,
                want,
            } => {
                buf.is_closed(parent)
                    || match after {
                        None => buf.first_child(parent).is_some(),
                        Some(c) => buf.next_sibling(c).is_some(),
                    }
                    || want.is_some_and(|w| buf.schema_sibling_exhausted(parent, w))
            }
        }
    }

    /// Resolve a path's context node and the binding multiplicity of the
    /// variable it is rooted at (1 for the document root).
    fn resolve_root(&self, root: PlanRoot) -> Result<(NodeId, u32), EngineError> {
        match root {
            PlanRoot::Root => Ok((NodeId::ROOT, 1)),
            PlanRoot::Var(v) => self.env[v.index()]
                .map(|b| (b.node, b.mult))
                .ok_or_else(|| {
                    EngineError::Internal(format!(
                        "variable ${} unbound at runtime",
                        self.program.var_name(v)
                    ))
                }),
        }
    }

    /// The shared step slice of a compiled path.
    #[inline]
    fn steps_of(&self, path: PathId) -> Rc<[EvalStep]> {
        Rc::clone(&self.path_steps[path.index()])
    }

    /// Open a cursor over `path` from its resolved context node and push
    /// it onto the cursor side stack; the caller pushes the matching
    /// loop frame on the task stack.
    fn open_cursor(&mut self, path: PathId, buf: &mut BufferTree) -> Result<(), EngineError> {
        let plan = self.program.path(path);
        let (ctx, _) = self.resolve_root(plan.root)?;
        let steps = self.steps_of(path);
        let cursor = PathCursor::new_pooled(buf, ctx, steps, &mut self.cursor_pool);
        self.cursors.push(cursor);
        Ok(())
    }

    /// Pop and dispose the top cursor (its owning loop frame finished).
    fn close_cursor(&mut self, buf: &mut BufferTree) {
        let cursor = self.cursors.pop().expect("loop frame owns the top cursor");
        cursor.dispose(buf, &mut self.cursor_pool);
    }

    /// A recycled (or fresh) empty value vector.
    fn pooled_values(&mut self) -> Vec<Value> {
        self.value_pool.pop().unwrap_or_default()
    }

    /// Return a value vector to the pool.
    fn recycle_values(&mut self, mut v: Vec<Value>) {
        v.clear();
        self.value_pool.push(v);
    }

    /// Push an atomized value onto the top value vector.
    fn push_value(&mut self, value: Value) {
        self.vals
            .last_mut()
            .expect("value vector scheduled by Operand/Aggregate")
            .push(value);
    }

    // ---- the machine loop ----------------------------------------------------

    /// Run until the program completes or blocks on stream data. Output
    /// streams to `out` as it is produced; `buf` may be garbage-collected
    /// between any two calls (every node a suspended frame references is
    /// pinned by its cursor).
    pub(crate) fn resume<W: Write>(
        &mut self,
        buf: &mut BufferTree,
        symbols: &SymbolTable,
        out: &mut XmlWriter<W>,
    ) -> Result<VmStatus, EngineError> {
        loop {
            let Some(task) = self.tasks.pop() else {
                return Ok(VmStatus::Done);
            };
            // Frame timing is telemetry-only: one null check per frame
            // when off; when on, counts are exact but the clock is only
            // read around one frame in `TIMING_SAMPLE` per kind.
            let timed = match self.timing.as_deref_mut() {
                Some(t) => {
                    let kind = task_kind(&task);
                    t.counts[kind] += 1;
                    if t.counts[kind] % TIMING_SAMPLE == 1 {
                        t.sampled[kind] += 1;
                        Some((kind, std::time::Instant::now()))
                    } else {
                        None
                    }
                }
                None => None,
            };
            let outcome = self.step(task, buf, symbols, out);
            if let Some((kind, start)) = timed {
                let t = self.timing.as_deref_mut().expect("timing stays enabled");
                t.nanos[kind] += start.elapsed().as_nanos() as u64;
            }
            if matches!(outcome?, StepOutcome::NeedInput) {
                return Ok(VmStatus::NeedInput);
            }
        }
    }

    /// Execute one continuation frame.
    fn step<W: Write>(
        &mut self,
        task: Task,
        buf: &mut BufferTree,
        symbols: &SymbolTable,
        out: &mut XmlWriter<W>,
    ) -> Result<StepOutcome, EngineError> {
        {
            match task {
                Task::Exec(id) => self.exec_instr(id, buf, out)?,
                Task::Seq { first, len, idx } => {
                    if idx < len {
                        self.tasks.push(Task::Seq {
                            first,
                            len,
                            idx: idx + 1,
                        });
                        let item = self.program.seq_items(first, len)[idx as usize];
                        self.tasks.push(Task::Exec(item));
                    }
                }
                Task::EndElement => out.end_element()?,
                Task::IfBranch {
                    then_branch,
                    else_branch,
                } => {
                    let cond = self.bools.pop().expect("condition result");
                    self.tasks
                        .push(Task::Exec(if cond { then_branch } else { else_branch }));
                }
                Task::ForLoop { var, role, body } => {
                    let cursor = self.cursors.last_mut().expect("for-loop cursor");
                    match cursor.advance(buf) {
                        CursorState::Match(n) => {
                            // The binding stays in `env` through the next
                            // re-entry of this frame (nothing reads it between
                            // the body's end and the next `Match`, which
                            // overwrites it); `Done` unbinds.
                            let mult = buf.role_count(n, role).max(1);
                            self.env[var.index()] = Some(Binding { node: n, mult });
                            self.tasks.push(Task::ForLoop { var, role, body });
                            self.tasks.push(Task::Exec(body));
                        }
                        CursorState::NeedInput => {
                            self.tasks.push(Task::ForLoop { var, role, body });
                            return self.need_input_cursor();
                        }
                        CursorState::Done => {
                            self.env[var.index()] = None;
                            self.close_cursor(buf);
                        }
                    }
                }
                // The match-heavy loops (output, exists, collect) iterate
                // internally and only touch the task stack when they block
                // or schedule sub-work: a match costs no frame moves.
                Task::OutputLoop { attr } => loop {
                    let cursor = self.cursors.last_mut().expect("output cursor");
                    match cursor.advance(buf) {
                        CursorState::Match(n) => match attr {
                            AttrPlan::None => {
                                if let Some(content) = buf.text_content(n) {
                                    out.text(content)?;
                                } else {
                                    // Elements are emitted whole: wait for
                                    // the subtree to finish streaming, then
                                    // serialize it from the buffer.
                                    self.tasks.push(Task::OutputLoop { attr });
                                    self.tasks.push(Task::EmitClosed(n));
                                    break;
                                }
                            }
                            // `buf` and `out` are distinct, so attribute
                            // values stream straight from the buffer to the
                            // writer without copies.
                            AttrPlan::Name(name) => {
                                if let Some(v) = buf.attr(n, name) {
                                    out.text(v)?;
                                }
                            }
                            AttrPlan::Any => {
                                for (_, v) in buf.attrs(n).iter() {
                                    out.text(v)?;
                                }
                            }
                        },
                        CursorState::NeedInput => {
                            self.tasks.push(Task::OutputLoop { attr });
                            return self.need_input_cursor();
                        }
                        CursorState::Done => {
                            self.close_cursor(buf);
                            break;
                        }
                    }
                },
                Task::EmitClosed(n) => {
                    if buf.is_closed(n) {
                        buf.serialize(n, symbols, out)?;
                    } else {
                        self.tasks.push(Task::EmitClosed(n));
                        return self.need_input(Wait::Closed(n));
                    }
                }
                Task::Cond(id) => self.exec_cond(id, buf)?,
                Task::NotFinish => {
                    let b = self.bools.pop().expect("not() operand");
                    self.bools.push(!b);
                }
                Task::AndRhs(rhs) => {
                    let lhs = self.bools.pop().expect("and lhs");
                    if lhs {
                        self.tasks.push(Task::Cond(rhs));
                    } else {
                        self.bools.push(false);
                    }
                }
                Task::OrRhs(rhs) => {
                    let lhs = self.bools.pop().expect("or lhs");
                    if lhs {
                        self.bools.push(true);
                    } else {
                        self.tasks.push(Task::Cond(rhs));
                    }
                }
                Task::ExistsLoop { attr, cache } => loop {
                    let cursor = self.cursors.last_mut().expect("exists cursor");
                    match cursor.advance(buf) {
                        CursorState::Match(n) => {
                            // `exists($x/p)`: block until the first witness
                            // appears or the search region is exhausted —
                            // the paper's "until the data is available in
                            // the buffer or it has become evident that the
                            // data does not exist". Either way the answer
                            // is definitive, so a cache slot (if the
                            // optimizer assigned one) memoizes it.
                            let witness = match attr {
                                AttrPlan::None => true,
                                AttrPlan::Any => !buf.attrs(n).is_empty(),
                                AttrPlan::Name(a) => buf.attr(n, a).is_some(),
                            };
                            if witness {
                                self.bools.push(true);
                                if let Some((slot, ctx)) = cache {
                                    self.exists_cache[slot as usize] = Some((ctx, true));
                                }
                                self.close_cursor(buf);
                                break;
                            }
                        }
                        CursorState::NeedInput => {
                            self.tasks.push(Task::ExistsLoop { attr, cache });
                            return self.need_input_cursor();
                        }
                        CursorState::Done => {
                            self.bools.push(false);
                            if let Some((slot, ctx)) = cache {
                                self.exists_cache[slot as usize] = Some((ctx, false));
                            }
                            self.close_cursor(buf);
                            break;
                        }
                    }
                },
                Task::CompareFinish(op) => {
                    let rhs = self.vals.pop().expect("compare rhs");
                    let lhs = self.vals.pop().expect("compare lhs");
                    self.bools.push(compare_existential(op, &lhs, &rhs));
                    self.recycle_values(lhs);
                    self.recycle_values(rhs);
                }
                Task::StringFnFinish(func) => {
                    let needle = self.vals.pop().expect("string-fn needle");
                    let hay = self.vals.pop().expect("string-fn haystack");
                    let result = hay
                        .iter()
                        .any(|hv| needle.iter().any(|nv| func.apply(&hv.text, &nv.text)));
                    self.bools.push(result);
                    self.recycle_values(hay);
                    self.recycle_values(needle);
                }
                Task::Operand(op) => match self.program.operand(op) {
                    OperandIr::Lit { text, num } => {
                        let mut v = self.pooled_values();
                        v.push(Value {
                            text: self.program.str_(text).to_string(),
                            num,
                        });
                        self.vals.push(v);
                    }
                    OperandIr::Path(p) => {
                        let attr = self.program.path(p).attr;
                        self.open_cursor(p, buf)?;
                        let v = self.pooled_values();
                        self.vals.push(v);
                        self.tasks.push(Task::CollectLoop { attr });
                    }
                },
                Task::CollectLoop { attr } => loop {
                    let cursor = self.cursors.last_mut().expect("collect cursor");
                    match cursor.advance(buf) {
                        CursorState::Match(n) => match attr {
                            AttrPlan::Name(a) => {
                                if let Some(v) = buf.attr(n, a) {
                                    let value = Value::from_string(v.to_string());
                                    self.push_value(value);
                                }
                            }
                            AttrPlan::Any => {
                                for (_, v) in buf.attrs(n).iter() {
                                    let value = Value::from_string(v.to_string());
                                    self.push_value(value);
                                }
                            }
                            AttrPlan::None => {
                                if buf.is_text(n) {
                                    self.collect_string_value(n, buf);
                                } else {
                                    // Blocking atomization: the subtree's
                                    // string value needs its end tag.
                                    self.tasks.push(Task::CollectLoop { attr });
                                    self.tasks.push(Task::CollectClosed(n));
                                    break;
                                }
                            }
                        },
                        CursorState::NeedInput => {
                            self.tasks.push(Task::CollectLoop { attr });
                            return self.need_input_cursor();
                        }
                        CursorState::Done => {
                            self.close_cursor(buf);
                            break;
                        }
                    }
                },
                Task::CollectClosed(n) => {
                    if buf.is_closed(n) {
                        self.collect_string_value(n, buf);
                    } else {
                        self.tasks.push(Task::CollectClosed(n));
                        return self.need_input(Wait::Closed(n));
                    }
                }
                Task::AggFinish(func) => {
                    let values = self.vals.pop().expect("aggregate operand");
                    let text = aggregate_text(func, &values);
                    self.recycle_values(values);
                    if let Some(t) = text {
                        out.text(&t)?;
                    }
                }
                Task::WaitClosed(n) => {
                    if !buf.is_closed(n) {
                        self.tasks.push(Task::WaitClosed(n));
                        return self.need_input(Wait::Closed(n));
                    }
                }
                Task::WaitClosedOrExhausted { node, want } => {
                    if !buf.is_closed(node) {
                        if buf.schema_sibling_exhausted(node, want) {
                            // Earliest purge: the cutoff proves the signOff
                            // region complete while `node` is still open.
                            buf.schema_count_early_signoff();
                        } else {
                            self.tasks.push(Task::WaitClosedOrExhausted { node, want });
                            return self.need_input(Wait::ClosedOrExhausted { node, want });
                        }
                    }
                }
                Task::DrainInput => {
                    if !self.input_exhausted {
                        self.tasks.push(Task::DrainInput);
                        self.wait = Wait::Eof;
                        return Ok(StepOutcome::NeedInput);
                    }
                }
                Task::SignoffExec {
                    path,
                    role,
                    ctx,
                    mult,
                } => {
                    // Attribute steps never appear in signOff targets
                    // (analysis strips them when deriving role paths), so
                    // the plan's element steps are the whole target.
                    let steps = self.steps_of(path);
                    // Collect first (merging duplicate derivations), then
                    // decrement: decrements purge eagerly and would
                    // invalidate a live walk. The map is reused across
                    // signOffs (one per preemption point per binding —
                    // allocation at binding rate otherwise).
                    let mut matches = std::mem::take(&mut self.signoff_scratch);
                    matches.clear();
                    collect_derivations(buf, ctx, &steps, 0, mult, &mut matches);
                    for (&node, &times) in matches.iter() {
                        buf.decrement_role(node, role, times);
                    }
                    self.signoff_scratch = matches;
                }
                // ---- hash-join frames --------------------------------
                // The build pass mirrors the original nested loop frame
                // for frame (same cursor, same lhs-then-rhs operand
                // order, same then/skip branching), so its blocking
                // order, output and signoff-free GC behavior are
                // bit-identical to the unoptimized program — it just
                // additionally tees key values into the index.
                Task::JoinBuildLoop { slot } => {
                    let plan = self.program.join(slot);
                    let cursor = self.cursors.last_mut().expect("join build cursor");
                    match cursor.advance(buf) {
                        CursorState::Match(n) => {
                            let mult = buf.role_count(n, plan.role).max(1);
                            self.env[plan.var.index()] = Some(Binding { node: n, mult });
                            let js = &mut self.joins[slot as usize];
                            let entry = js.entries.len() as u32;
                            js.entries.push(n);
                            self.tasks.push(Task::JoinBuildLoop { slot });
                            self.tasks.push(Task::JoinBuildFinish { slot, entry });
                            self.tasks.push(Task::Operand(plan.rhs));
                            self.tasks.push(Task::Operand(plan.lhs));
                        }
                        CursorState::NeedInput => {
                            self.tasks.push(Task::JoinBuildLoop { slot });
                            return self.need_input_cursor();
                        }
                        CursorState::Done => {
                            // The cursor is exhausted, so the scanned
                            // region is closed: the index is complete and
                            // final for the rest of the run.
                            self.env[plan.var.index()] = None;
                            self.close_cursor(buf);
                            self.joins[slot as usize].phase = JoinPhase::Built;
                        }
                    }
                }
                Task::JoinBuildFinish { slot, entry } => {
                    let plan = self.program.join(slot);
                    let rhs = self.vals.pop().expect("join build rhs");
                    let lhs = self.vals.pop().expect("join build lhs");
                    {
                        let js = &mut self.joins[slot as usize];
                        let keys = if plan.key_is_lhs { &lhs } else { &rhs };
                        for kv in keys.iter() {
                            if let Some(k) = kv.num {
                                if !k.is_nan() {
                                    js.num_bucket.entry(canon_bits(k)).or_default().push(entry);
                                }
                            }
                            js.text_bucket
                                .entry(kv.text.clone())
                                .or_default()
                                .push((entry, kv.num.is_some()));
                        }
                    }
                    // `= probe` with a `Nop` else-branch (an optimizer
                    // gate), so skipping the bool/IfBranch round-trip on
                    // a miss is behavior-identical.
                    if compare_existential(CmpOp::Eq, &lhs, &rhs) {
                        self.tasks.push(Task::Exec(plan.then_branch));
                    }
                    self.recycle_values(lhs);
                    self.recycle_values(rhs);
                }
                Task::JoinProbe { slot } => {
                    let probe = self.vals.pop().expect("join probe operand");
                    let plan = self.program.join(slot);
                    let (stale, any) = {
                        let js = &mut self.joins[slot as usize];
                        js.cands.clear();
                        for pv in probe.iter() {
                            if let Some(a) = pv.num {
                                // Numeric probe: numeric-equal keys, plus
                                // string-equal non-numeric keys (the
                                // existential compare's mixed-pair rule).
                                if let Some(es) = js.num_bucket.get(&canon_bits(a)) {
                                    js.cands.extend_from_slice(es);
                                }
                                if let Some(es) = js.text_bucket.get(&pv.text) {
                                    js.cands.extend(
                                        es.iter().filter(|&&(_, num)| !num).map(|&(e, _)| e),
                                    );
                                }
                            } else if let Some(es) = js.text_bucket.get(&pv.text) {
                                js.cands.extend(es.iter().map(|&(e, _)| e));
                            }
                        }
                        // Sorted entry indices = build order = document
                        // order, so the probe iterates candidates exactly
                        // as the original scan would have reached them.
                        js.cands.sort_unstable();
                        js.cands.dedup();
                        let stale = js
                            .cands
                            .iter()
                            .any(|&e| !buf.is_live(js.entries[e as usize]));
                        (stale, !js.cands.is_empty())
                    };
                    self.recycle_values(probe);
                    if stale {
                        // A candidate was garbage-collected since the
                        // build. Re-run the preserved original loop —
                        // its scan of the (closed) region is exact.
                        self.tasks.push(Task::Exec(plan.fallback));
                    } else if any {
                        self.tasks.push(Task::JoinProbeLoop { slot, pos: 0 });
                    } else {
                        self.env[plan.var.index()] = None;
                    }
                }
                Task::JoinProbeLoop { slot, pos } => {
                    let plan = self.program.join(slot);
                    let js = &self.joins[slot as usize];
                    if let Some(&e) = js.cands.get(pos as usize) {
                        let n = js.entries[e as usize];
                        // Re-read the role count at this program point —
                        // exactly what the original loop's binding would
                        // observe here.
                        let mult = buf.role_count(n, plan.role).max(1);
                        self.env[plan.var.index()] = Some(Binding { node: n, mult });
                        self.tasks.push(Task::JoinProbeLoop { slot, pos: pos + 1 });
                        self.tasks.push(Task::Exec(plan.then_branch));
                    } else {
                        self.env[plan.var.index()] = None;
                    }
                }
            }
        }
        Ok(StepOutcome::Continue)
    }

    /// Dispatch one instruction: emit immediately when possible, otherwise
    /// schedule continuation frames.
    fn exec_instr<W: Write>(
        &mut self,
        id: InstrId,
        buf: &mut BufferTree,
        out: &mut XmlWriter<W>,
    ) -> Result<(), EngineError> {
        match self.program.instr(id) {
            Instr::Nop => {}
            Instr::Seq { first, len } => self.tasks.push(Task::Seq { first, len, idx: 0 }),
            Instr::Text(s) => out.text(self.program.str_(s))?,
            Instr::Element {
                name,
                attrs_first,
                attrs_len,
                content,
            } => {
                out.start_element(self.program.str_(name))?;
                for i in 0..attrs_len {
                    let (k, v) = self.program.attr_pairs(attrs_first, attrs_len)[i as usize];
                    out.attribute(self.program.str_(k), self.program.str_(v))?;
                }
                self.tasks.push(Task::EndElement);
                self.tasks.push(Task::Exec(content));
            }
            Instr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.tasks.push(Task::IfBranch {
                    then_branch,
                    else_branch,
                });
                self.tasks.push(Task::Cond(cond));
            }
            Instr::For {
                var,
                path,
                role,
                body,
            } => {
                self.open_cursor(path, buf)?;
                self.tasks.push(Task::ForLoop { var, role, body });
            }
            Instr::OutputPath(p) => {
                let attr = self.program.path(p).attr;
                self.open_cursor(p, buf)?;
                self.tasks.push(Task::OutputLoop { attr });
            }
            Instr::Aggregate { func, path } => {
                let attr = self.program.path(path).attr;
                self.open_cursor(path, buf)?;
                let v = self.pooled_values();
                self.vals.push(v);
                self.tasks.push(Task::AggFinish(func));
                self.tasks.push(Task::CollectLoop { attr });
            }
            Instr::HashJoin(j) => {
                let plan = self.program.join(j);
                match self.joins[j as usize].phase {
                    // First execution: run the original loop, teeing key
                    // values into the index as it goes.
                    JoinPhase::Empty => {
                        self.joins[j as usize].phase = JoinPhase::Building;
                        self.open_cursor(plan.path, buf)?;
                        self.tasks.push(Task::JoinBuildLoop { slot: j });
                    }
                    JoinPhase::Built => {
                        if self.joins[j as usize].entries.is_empty() {
                            // The build scanned the (now closed) region and
                            // matched nothing; the original would iterate
                            // zero times and evaluate nothing at all.
                            self.env[plan.var.index()] = None;
                        } else {
                            self.tasks.push(Task::JoinProbe { slot: j });
                            self.tasks.push(Task::Operand(plan.probe()));
                        }
                    }
                    // Re-entered while its own build is suspended on the
                    // stack — impossible for sequentially nested loops,
                    // but divert to the preserved original rather than
                    // corrupt the index.
                    JoinPhase::Building => self.tasks.push(Task::Exec(plan.fallback)),
                }
            }
            Instr::SignOff { path, role } => {
                if self.execute_signoffs {
                    // "These commands must not be issued too early" (paper
                    // §3): a signOff over a non-empty path decrements role
                    // instances on a whole region, so that region must have
                    // finished streaming — otherwise nodes arriving later
                    // keep instances nobody will ever remove. For a
                    // variable anchor the region is the binding's subtree
                    // (wait for its end tag); loop bodies that never block
                    // (e.g. attribute-only conditions) finish while the
                    // binding is still open, so this wait is load-bearing.
                    // For a query-end anchor the region is the whole
                    // document (evaluation may have short-circuited). A
                    // signOff of the anchor node itself (empty path) is
                    // always safe: roles are assigned at node creation.
                    let plan = self.program.path(path);
                    let (ctx, mult) = self.resolve_root(plan.root)?;
                    self.tasks.push(Task::SignoffExec {
                        path,
                        role,
                        ctx,
                        mult,
                    });
                    if plan.has_steps() {
                        match plan.root {
                            PlanRoot::Root => self.tasks.push(Task::DrainInput),
                            PlanRoot::Var(_) => {
                                // Schema shortcut: a target whose first step
                                // is `child::name` selects only nodes inside
                                // `name`-children of the binding. Once a
                                // sibling-order cutoff proves that name
                                // exhausted, those subtrees are all closed
                                // (the cutoff's witness is a *later* sibling,
                                // which follows their end tags), so the
                                // region is complete before `ctx` closes.
                                // Descendant-first targets get no shortcut.
                                let early = if buf.schema_active() {
                                    match self.path_steps[path.index()].first() {
                                        Some(s) if matches!(s.axis, EAxis::Child) => match s.test {
                                            crate::cursor::ETest::Name(w) => Some(w),
                                            _ => None,
                                        },
                                        _ => None,
                                    }
                                } else {
                                    None
                                };
                                match early {
                                    Some(want) => self
                                        .tasks
                                        .push(Task::WaitClosedOrExhausted { node: ctx, want }),
                                    None => self.tasks.push(Task::WaitClosed(ctx)),
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Dispatch one condition node onto the stacks.
    fn exec_cond(&mut self, id: CondId, buf: &mut BufferTree) -> Result<(), EngineError> {
        match self.program.cond(id) {
            CondIr::Const(b) => self.bools.push(b),
            CondIr::Not(inner) => {
                self.tasks.push(Task::NotFinish);
                self.tasks.push(Task::Cond(inner));
            }
            CondIr::And(a, b) => {
                self.tasks.push(Task::AndRhs(b));
                self.tasks.push(Task::Cond(a));
            }
            CondIr::Or(a, b) => {
                self.tasks.push(Task::OrRhs(b));
                self.tasks.push(Task::Cond(a));
            }
            CondIr::Exists(p) => {
                let attr = self.program.path(p).attr;
                self.open_cursor(p, buf)?;
                self.tasks.push(Task::ExistsLoop { attr, cache: None });
            }
            CondIr::CachedExists { path, slot } => {
                let plan = self.program.path(path);
                let (ctx, _) = self.resolve_root(plan.root)?;
                match self.exists_cache[slot as usize] {
                    // Memo hit for the same (generation-tagged) context:
                    // the recorded answer is definitive — a `true` found a
                    // witness, a `false` exhausted a closed region — so
                    // the original re-probe could not answer differently.
                    Some((cached, ans)) if cached == ctx => self.bools.push(ans),
                    _ => {
                        let attr = plan.attr;
                        self.open_cursor(path, buf)?;
                        self.tasks.push(Task::ExistsLoop {
                            attr,
                            cache: Some((slot, ctx)),
                        });
                    }
                }
            }
            CondIr::Compare { op, lhs, rhs } => {
                // Operands are scheduled so `lhs` is fully collected before
                // `rhs` starts — the same left-to-right blocking order as
                // the paper's sequential evaluator.
                self.tasks.push(Task::CompareFinish(op));
                self.tasks.push(Task::Operand(rhs));
                self.tasks.push(Task::Operand(lhs));
            }
            CondIr::StringFn {
                func,
                haystack,
                needle,
            } => {
                self.tasks.push(Task::StringFnFinish(func));
                self.tasks.push(Task::Operand(needle));
                self.tasks.push(Task::Operand(haystack));
            }
        }
        Ok(())
    }

    /// Atomize `n`'s string value onto the top value vector.
    fn collect_string_value(&mut self, n: NodeId, buf: &BufferTree) {
        self.value_scratch.clear();
        buf.string_value(n, &mut self.value_scratch);
        let value = Value::from_string(self.value_scratch.clone());
        self.push_value(value);
    }
}

/// Fold atomized values through an aggregate function.
fn aggregate_text(func: AggFunc, values: &[Value]) -> Option<String> {
    match func {
        AggFunc::Count => Some(fmt_number(values.len() as f64)),
        AggFunc::Sum => {
            let sum: f64 = values.iter().filter_map(|v| v.num).sum();
            Some(fmt_number(sum))
        }
        AggFunc::Min => values
            .iter()
            .filter_map(|v| v.num)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .map(fmt_number),
        AggFunc::Max => values
            .iter()
            .filter_map(|v| v.num)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .map(fmt_number),
        AggFunc::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(|v| v.num).collect();
            if nums.is_empty() {
                None
            } else {
                Some(fmt_number(nums.iter().sum::<f64>() / nums.len() as f64))
            }
        }
    }
}

/// Walk the buffered subtree counting derivations of `steps[i..]` from
/// `node`; accumulate `mult × derivations` per matched node.
fn collect_derivations(
    buf: &BufferTree,
    node: NodeId,
    steps: &[EvalStep],
    i: usize,
    mult: u32,
    out: &mut HashMap<NodeId, u32, FxBuildHasher>,
) {
    if i == steps.len() {
        *out.entry(node).or_insert(0) += mult;
        return;
    }
    let step = steps[i];
    match step.axis {
        EAxis::Child => {
            let mut child = buf.first_child(node);
            while let Some(c) = child {
                if step.test.matches(buf, c) {
                    match step.pos {
                        Some(k) if step.test.pred_ordinal(buf, c) != k => {}
                        _ => collect_derivations(buf, c, steps, i + 1, mult, out),
                    }
                }
                child = buf.next_sibling(c);
            }
        }
        EAxis::Descendant => {
            let mut child = buf.first_child(node);
            while let Some(c) = child {
                collect_dos(buf, c, steps, i, mult, out);
                child = buf.next_sibling(c);
            }
        }
        EAxis::DescendantOrSelf => collect_dos(buf, node, steps, i, mult, out),
        EAxis::SelfAxis => {
            if step.test.matches(buf, node) {
                collect_derivations(buf, node, steps, i + 1, mult, out);
            }
        }
    }
}

/// Descendant-or-self helper: self match, then every descendant at the
/// same step. Iterative over the subtree — signOff targets routinely carry
/// a trailing `descendant-or-self::node()`, so this walk sees the full
/// document depth and must not recurse per level.
fn collect_dos(
    buf: &BufferTree,
    node: NodeId,
    steps: &[EvalStep],
    i: usize,
    mult: u32,
    out: &mut HashMap<NodeId, u32, FxBuildHasher>,
) {
    let step = steps[i];
    let mut cur = Some(node);
    while let Some(n) = cur {
        if step.test.matches(buf, n) {
            // Remaining steps are bounded by the (small) path length, so
            // this recursion is safe; only the subtree walk is iterative.
            collect_derivations(buf, n, steps, i + 1, mult, out);
        }
        cur = match buf.first_child(n) {
            Some(c) => Some(c),
            None => {
                // Ascend to the next sibling, stopping at the walk root.
                let mut m = n;
                loop {
                    if m == node {
                        break None;
                    }
                    if let Some(s) = buf.next_sibling(m) {
                        break Some(s);
                    }
                    m = buf.parent(m).expect("walk escaped the subtree");
                }
            }
        };
    }
}

/// An atomized value: string plus pre-parsed numeric form.
#[derive(Debug, Clone)]
struct Value {
    text: String,
    num: Option<f64>,
}

impl Value {
    fn from_string(text: String) -> Value {
        let num = text.trim().parse::<f64>().ok();
        Value { text, num }
    }
}

/// General comparison with existential semantics: true iff some pair of
/// values satisfies the operator. Numeric comparison when both sides are
/// numeric, string comparison otherwise.
fn compare_existential(op: CmpOp, lhs: &[Value], rhs: &[Value]) -> bool {
    lhs.iter().any(|l| {
        rhs.iter().any(|r| match (l.num, r.num) {
            (Some(a), Some(b)) => cmp_ord(op, a.partial_cmp(&b)),
            _ => cmp_ord(op, Some(l.text.cmp(&r.text))),
        })
    })
}

fn cmp_ord(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    let Some(ord) = ord else { return false };
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::from_string(s.to_string())
    }

    #[test]
    fn numeric_comparison_when_both_numeric() {
        assert!(compare_existential(CmpOp::Lt, &[v("9")], &[v("10")]));
        // String comparison would say "9" > "10".
        assert!(!compare_existential(CmpOp::Gt, &[v("9")], &[v("10")]));
    }

    #[test]
    fn string_comparison_otherwise() {
        assert!(compare_existential(CmpOp::Eq, &[v("abc")], &[v("abc")]));
        assert!(compare_existential(CmpOp::Lt, &[v("abc")], &[v("abd")]));
        assert!(!compare_existential(CmpOp::Eq, &[v("abc")], &[v("ABC")]));
    }

    #[test]
    fn existential_over_sequences() {
        let lhs = [v("1"), v("5"), v("9")];
        let rhs = [v("5")];
        assert!(compare_existential(CmpOp::Eq, &lhs, &rhs));
        assert!(compare_existential(CmpOp::Gt, &lhs, &rhs));
        assert!(compare_existential(CmpOp::Lt, &lhs, &rhs));
        assert!(
            !compare_existential(CmpOp::Eq, &[], &rhs),
            "empty sequence matches nothing"
        );
    }

    #[test]
    fn value_parses_numbers_with_whitespace() {
        assert_eq!(v(" 42 ").num, Some(42.0));
        assert_eq!(v("x42").num, None);
    }
}
