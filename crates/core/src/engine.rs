//! Public engine API: compile once, run many times, in any of the three
//! buffer-management configurations the experiments compare.

use crate::buffer::{BufferStats, BufferTree};
use crate::error::EngineError;
use crate::eval::{Vm, VmStatus};
use crate::obs::ObsReport;
use crate::session::EvalSession;
use crate::stream::{BufferFeed, Timeline};
use gcx_ir::{OptReport, Program};
use gcx_projection::{analyze, Analysis};
use gcx_query::Query;
use gcx_xml::{WriterOptions, XmlWriter};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// A compiled query: normalized AST, static analysis (roles, rewriting)
/// and the lowered, executable program (`gcx-ir`).
///
/// Everything here is immutable after [`CompiledQuery::compile`] and the
/// whole artifact is `Send + Sync`: the HTTP service's registry shares one
/// instance across request threads, and the multi-query driver hands it to
/// every batch worker. A run performs no lowering and no query-symbol
/// interning — the program carries pre-compiled step tables and a
/// pre-interned symbol table that seeds each run's table.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The normalized user query.
    pub query: Query,
    /// Roles, projection paths and the rewritten query with signOffs.
    pub analysis: Analysis,
    /// The program the evaluator executes (shared, immutable). This is
    /// the optimized program unless compilation disabled the optimizer.
    pub program: Arc<Program>,
    /// The direct lowering, before any optimizer pass (kept for
    /// explain's before/after listing; identical to `program` when the
    /// optimizer was disabled).
    pub unoptimized: Arc<Program>,
    /// What the optimizer did (None when it was disabled).
    pub opt: Option<OptReport>,
    /// Wall-clock cost of the whole compilation pipeline
    /// (parse → normalize → analyze/rewrite → lower → optimize), in
    /// microseconds.
    pub compile_micros: u64,
}

// The registry/driver sharing contract, enforced at compile time.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<CompiledQuery>();
    _assert_send_sync::<Program>();
};

impl CompiledQuery {
    /// Run the full compilation pipeline on query text:
    /// parse → normalize → analyze/rewrite → lower → **optimize**.
    pub fn compile(text: &str) -> Result<CompiledQuery, EngineError> {
        CompiledQuery::compile_opts(text, true)
    }

    /// [`CompiledQuery::compile`] with the plan optimizer switchable
    /// (`gcx ... --no-opt`); with `optimize` off the executed program is
    /// the direct lowering.
    pub fn compile_opts(text: &str, optimize: bool) -> Result<CompiledQuery, EngineError> {
        let started = Instant::now();
        let query = gcx_query::compile(text)?;
        let analysis = analyze(&query);
        let unoptimized = Arc::new(Program::compile(&query, &analysis));
        let (program, opt) = if optimize {
            let (optimized, report) = gcx_ir::optimize(&unoptimized);
            (Arc::new(optimized), Some(report))
        } else {
            (Arc::clone(&unoptimized), None)
        };
        let compile_micros = started.elapsed().as_micros() as u64;
        Ok(CompiledQuery {
            query,
            analysis,
            program,
            unoptimized,
            opt,
            compile_micros,
        })
    }

    /// Open a sans-IO evaluation session: the push-driven form of the
    /// engine. Feed document bytes as they arrive with
    /// [`EvalSession::feed`]; the session never touches `Read`/`Write`
    /// internally. See [`EvalSession`] for the full protocol.
    ///
    /// ```
    /// use gcx_core::{CompiledQuery, EngineOptions};
    ///
    /// let q = CompiledQuery::compile("for $b in /bib/book return $b/title").unwrap();
    /// let mut session = q.session(&EngineOptions::gcx());
    /// session.feed(b"<bib><book><title>S").unwrap();
    /// session.feed(b"treams</title></book></bib>").unwrap();
    /// let report = session.finish().unwrap();
    /// assert_eq!(session.output(), b"<title>Streams</title>");
    /// assert_eq!(report.feed_calls, 2);
    /// ```
    pub fn session(&self, opts: &EngineOptions) -> EvalSession {
        EvalSession::new(self, opts)
    }

    /// Human-readable compilation report: the mapping between query,
    /// paths, roles and preemption points that the demo visualizes in its
    /// Figure 3(a), followed by the compiled program listing.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("== Projection paths and roles ==\n");
        out.push_str(&self.analysis.roles_listing());
        out.push_str("\n== Rewritten query with signOff statements ==\n");
        out.push_str(&self.analysis.rewritten.to_string());
        out.push('\n');
        out.push_str("\n== Compiled program (gcx-ir, unoptimized) ==\n");
        out.push_str(&self.unoptimized.listing());
        if let Some(opt) = &self.opt {
            out.push_str("\n== Optimizer passes ==\n");
            for p in &opt.passes {
                out.push_str(&format!(
                    "{:<18} {:>3} change(s)  {}\n",
                    p.name, p.changes, p.detail
                ));
            }
            out.push_str(&format!(
                "instructions: {} -> {}, cost estimate: {} -> {}\n",
                opt.before.instructions, opt.after.instructions, opt.cost_before, opt.cost_after
            ));
            out.push_str("\n== Optimized program ==\n");
            out.push_str(&self.program.listing());
        }
        out
    }
}

/// Buffer-management configuration. The three presets span the comparison
/// axis of the paper's evaluation (Figure 5):
///
/// * [`EngineOptions::gcx`] — static projection **and** dynamic buffer
///   minimization via active garbage collection (the paper's system);
/// * [`EngineOptions::projection_only`] — static projection, no dynamic
///   purging (the FluXQuery / projection-based-systems class);
/// * [`EngineOptions::full_buffering`] — everything buffered (the naive
///   in-memory engine class).
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Run the stream preprojector's skip logic (static projection).
    pub project: bool,
    /// Execute signOff statements (dynamic buffer minimization).
    pub execute_signoffs: bool,
    /// Allow the buffer to reclaim dead subtrees at all.
    pub purge: bool,
    /// Read the rest of the input after evaluation completes (the paper's
    /// engines scan the full document; also validates well-formedness).
    pub drain_input: bool,
    /// Sample the buffer-occupancy timeline every N tokens (None = off).
    pub timeline_every: Option<u64>,
    /// Pretty-print output with this indent.
    pub indent: Option<String>,
    /// Hard per-run buffer byte budget (None = unlimited). Crossing it
    /// fails the run with [`EngineError::BufferLimitExceeded`] instead of
    /// letting the buffer grow without bound — the primitive the service
    /// layer's admission control (HTTP 413) is built on.
    pub max_buffer_bytes: Option<u64>,
    /// Record buffer-lifecycle and VM-frame telemetry into
    /// [`RunReport::obs`]. Off by default; when off the hot loops pay one
    /// null check per hook (measured ≤1% on the throughput sweep).
    pub telemetry: bool,
    /// A DTD the input is promised to be valid against. Enables all three
    /// schema analyses: projection-path pruning, descendant-reachability
    /// skipping, and sibling-order cutoffs (earliest emission/purge). On
    /// documents that violate the DTD, output may differ from the
    /// schema-blind run — the promise is the caller's.
    pub schema: Option<Arc<gcx_schema::Dtd>>,
    /// Adopt sibling-order cutoffs from an in-stream `<!DOCTYPE ...>`
    /// internal subset when no explicit schema was given. Only the
    /// order/cutoff analysis is enabled this way (the matcher is already
    /// built when the token arrives); unparsable subsets are ignored.
    pub schema_from_doctype: bool,
}

impl EngineOptions {
    /// The full GCX configuration: projection + active garbage collection.
    pub fn gcx() -> EngineOptions {
        EngineOptions {
            project: true,
            execute_signoffs: true,
            purge: true,
            drain_input: true,
            timeline_every: None,
            indent: None,
            max_buffer_bytes: None,
            telemetry: false,
            schema: None,
            schema_from_doctype: true,
        }
    }

    /// Static projection only: signOffs are ignored, the buffer grows to
    /// the size of the projected document.
    pub fn projection_only() -> EngineOptions {
        EngineOptions {
            execute_signoffs: false,
            ..EngineOptions::gcx()
        }
    }

    /// No projection, no GC: the whole document is buffered.
    pub fn full_buffering() -> EngineOptions {
        EngineOptions {
            project: false,
            execute_signoffs: false,
            purge: false,
            ..EngineOptions::gcx()
        }
    }

    /// Enable timeline sampling (builder style).
    pub fn with_timeline(mut self, every: u64) -> EngineOptions {
        self.timeline_every = Some(every);
        self
    }

    /// Disable the final input drain (builder style).
    pub fn without_drain(mut self) -> EngineOptions {
        self.drain_input = false;
        self
    }

    /// Set a hard buffer byte budget (builder style).
    pub fn with_max_buffer_bytes(mut self, bytes: u64) -> EngineOptions {
        self.max_buffer_bytes = Some(bytes);
        self
    }

    /// Enable buffer-lifecycle and VM-frame telemetry (builder style).
    pub fn with_telemetry(mut self) -> EngineOptions {
        self.telemetry = true;
        self
    }

    /// Attach a DTD the input is promised to be valid against (builder
    /// style). See [`EngineOptions::schema`].
    pub fn with_schema(mut self, dtd: Arc<gcx_schema::Dtd>) -> EngineOptions {
        self.schema = Some(dtd);
        self
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions::gcx()
    }
}

/// What the schema analyses did during one run. Present in
/// [`RunReport::schema`] exactly when a schema was in effect — explicitly
/// via [`EngineOptions::schema`] or adopted from an in-stream DOCTYPE.
#[derive(Debug, Clone, Default)]
pub struct SchemaReport {
    /// Projection paths dropped as unsatisfiable against the DTD.
    pub pruned_paths: u32,
    /// Projection paths examined (pruned + kept).
    pub total_paths: u32,
    /// Subtrees the matcher skipped because the DTD proved no projected
    /// name is reachable below them.
    pub reach_cuts: u64,
    /// Cursor scans ended early by a sibling-order cutoff (the DTD proved
    /// no further match can arrive, before the parent's end tag).
    pub early_scan_ends: u64,
    /// signOff waits released early by a sibling-order cutoff — the
    /// earliest-purge wins: roles drop before the binding's end tag.
    pub early_signoffs: u64,
    /// The sibling-order table came from an in-stream DOCTYPE rather than
    /// an explicit [`EngineOptions::schema`].
    pub doctype_adopted: bool,
}

impl SchemaReport {
    /// Machine-readable form, embedded in [`RunReport::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"pruned_paths\":{},\"total_paths\":{},\"reach_cuts\":{},\
             \"early_scan_ends\":{},\"early_signoffs\":{},\"doctype_adopted\":{}}}",
            self.pruned_paths,
            self.total_paths,
            self.reach_cuts,
            self.early_scan_ends,
            self.early_signoffs,
            self.doctype_adopted,
        )
    }
}

/// What a run observed — the measurements the paper's figures are made of.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Structural tokens processed.
    pub tokens: u64,
    /// Buffer statistics: peak/live node counts, allocation/purge totals.
    pub buffer: BufferStats,
    /// Buffer-occupancy samples (when enabled).
    pub timeline: Option<Timeline>,
    /// Bytes of serialized output.
    pub output_bytes: u64,
    /// The buffer byte budget the run was held to (None = unlimited).
    pub max_buffer_bytes: Option<u64>,
    /// Number of `feed` calls the run's input arrived in (0 when the run
    /// was not byte-fed, e.g. the multi-query channel feed).
    pub feed_calls: u64,
    /// Largest partial-token spillover (bytes) the tokenizer held across
    /// a `feed` boundary — the chunk-boundary overhead of the sans-IO
    /// core, observable per run.
    pub max_pending_bytes: u64,
    /// Buffer-lifecycle and VM-frame telemetry (present exactly when
    /// [`EngineOptions::telemetry`] was on).
    pub obs: Option<ObsReport>,
    /// Schema-analysis facts (present exactly when a schema was in
    /// effect, explicit or DOCTYPE-adopted).
    pub schema: Option<SchemaReport>,
}

impl RunReport {
    /// Machine-readable form (hand-rolled JSON; the workspace has no
    /// serde). Timeline points are emitted as `[token, live]` pairs when
    /// sampling was enabled.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"tokens\":{},\"output_bytes\":{},\"max_buffer_bytes\":{},\
             \"feed_calls\":{},\"max_pending_bytes\":{},\"buffer\":{}",
            self.tokens,
            self.output_bytes,
            self.max_buffer_bytes
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
            self.feed_calls,
            self.max_pending_bytes,
            self.buffer.to_json()
        );
        if let Some(tl) = &self.timeline {
            s.push_str(&format!(
                ",\"timeline\":{{\"every\":{},\"peak\":{},\"points\":[",
                tl.every,
                tl.peak()
            ));
            for (i, (t, live)) in tl.points.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{t},{live}]"));
            }
            s.push_str("]}");
        }
        if let Some(obs) = &self.obs {
            s.push_str(",\"obs\":");
            s.push_str(&obs.to_json());
        }
        if let Some(schema) = &self.schema {
            s.push_str(",\"schema\":");
            s.push_str(&schema.to_json());
        }
        s.push('}');
        s
    }
}

/// Run a compiled query over an XML input stream, writing the result to
/// `output`. The configuration selects the buffer-management strategy.
///
/// This is a convenience wrapper over the sans-IO [`EvalSession`]: it
/// reads `input` in chunks, feeds them to the session, and drains the
/// session's output into `output` as it becomes available — the blocking
/// shape of the push-driven engine.
pub fn run<R: Read, W: Write>(
    q: &CompiledQuery,
    opts: &EngineOptions,
    mut input: R,
    mut output: W,
) -> Result<RunReport, EngineError> {
    let mut session = q.session(opts);
    loop {
        // Once the session stops wanting input (program complete, drain
        // off) the remaining bytes stay unread in `input`, exactly like
        // the pull engine stopped pulling.
        if !session.wants_input() {
            break;
        }
        // Read straight into the tokenizer window (no intermediate copy).
        let n = {
            let gap = session.space(64 * 1024);
            input.read(gap)
        };
        let n = n.map_err(|e| session.input_io_error(e))?;
        if n == 0 {
            break;
        }
        session.commit(n)?;
        session.take_output(&mut output)?;
    }
    let report = session.finish()?;
    session.take_output(&mut output)?;
    output.flush().map_err(|e| session.input_io_error(e))?;
    Ok(report)
}

/// Run a compiled query over an arbitrary [`BufferFeed`].
///
/// This is the blocking driver over the resumable evaluator with the
/// input side factored out: `feed` supplies buffered nodes on demand
/// instead of the built-in tokenizer+projection pipeline — whenever the
/// machine suspends on missing input, one feed event is applied and the
/// machine resumes. The run's symbol table is seeded from the program's
/// pre-interned table, so feed-side names must either be interned on
/// arrival (the multi-query channel feed does) or have been interned
/// against that same table (the preprojector's matcher is compiled with
/// the program). The multi-query shared-stream driver uses this entry
/// point to evaluate each query of a batch over a channel-fed projection
/// of a single input pass.
pub fn run_with_feed<F: BufferFeed, W: Write>(
    q: &CompiledQuery,
    opts: &EngineOptions,
    mut feed: F,
    output: W,
) -> Result<RunReport, EngineError> {
    let mut buf = BufferTree::new(opts.purge);
    buf.set_max_bytes(opts.max_buffer_bytes);
    let mut out = XmlWriter::with_options(
        output,
        WriterOptions {
            indent: opts.indent.clone(),
        },
    );
    // The once-at-startup symbol handshake: cloning the program's
    // pre-interned table maps every query symbol into the run's (and
    // thereby the stream tokenizer's) table. No query name is interned
    // after this point.
    let mut symbols = q.program.symbols().clone();
    let mut vm = Vm::new(Arc::clone(&q.program), opts.execute_signoffs);
    if opts.telemetry {
        buf.enable_telemetry(crate::obs::DEFAULT_TIMELINE_EVERY);
        vm.enable_timing();
    }
    loop {
        match vm.resume(&mut buf, &symbols, &mut out)? {
            VmStatus::Done => break,
            VmStatus::NeedInput => {
                // A `nextNode()` request: apply feed events until the
                // machine's recorded wait is satisfiable (resuming any
                // earlier is a provable no-op — see [`Vm::wait_satisfied`]).
                // The buffer byte budget is enforced per event: every
                // append funnels through here, so the budget check lives
                // in exactly one place and batching cannot defer it.
                loop {
                    let more = feed.advance(&mut buf, &mut symbols)?;
                    buf.check_limit()?;
                    if !more {
                        vm.set_input_exhausted();
                        break;
                    }
                    if vm.wait_satisfied(&buf) {
                        break;
                    }
                }
            }
        }
    }
    if opts.drain_input {
        // Read the rest of the input after evaluation completes (the
        // paper's engines scan the full document; also validates
        // well-formedness).
        loop {
            let more = feed.advance(&mut buf, &mut symbols)?;
            buf.check_limit()?;
            if !more {
                break;
            }
        }
    }
    out.flush()?;
    // Feed-agnostic runs have no byte-level feed spans and no push
    // tokenizer; those report fields stay empty/zero.
    let obs = buf
        .take_telemetry()
        .map(|tel| tel.into_report(vm.take_task_obs(), Vec::new(), 0));
    Ok(RunReport {
        tokens: feed.tokens(),
        buffer: buf.stats(),
        timeline: feed.take_timeline(),
        output_bytes: out.bytes_written(),
        max_buffer_bytes: buf.max_bytes(),
        feed_calls: 0,
        max_pending_bytes: 0,
        obs,
        // Feed-driven runs bypass the matcher/projector, so the schema
        // analyses have nothing to hook into.
        schema: None,
    })
}

/// Convenience: compile and run with the GCX configuration.
pub fn run_query(query_text: &str, input: &str) -> Result<String, EngineError> {
    let q = CompiledQuery::compile(query_text)?;
    let mut out = Vec::new();
    run(&q, &EngineOptions::gcx(), input.as_bytes(), &mut out)?;
    String::from_utf8(out).map_err(|_| EngineError::Internal("non-UTF8 output".into()))
}
