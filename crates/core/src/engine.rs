//! Public engine API: compile once, run many times, in any of the three
//! buffer-management configurations the experiments compare.

use crate::buffer::{BufferStats, BufferTree};
use crate::error::EngineError;
use crate::eval::Run;
use crate::stream::{BufferFeed, Preprojector, Timeline};
use gcx_projection::{analyze, Analysis, CompiledPaths, StreamMatcher};
use gcx_query::Query;
use gcx_xml::{SymbolTable, Tokenizer, WriterOptions, XmlWriter};
use std::io::{Read, Write};

/// A compiled query: normalized AST + static analysis (roles, rewriting).
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The normalized user query.
    pub query: Query,
    /// Roles, projection paths and the rewritten query with signOffs.
    pub analysis: Analysis,
}

impl CompiledQuery {
    /// Parse, normalize and statically analyze query text.
    pub fn compile(text: &str) -> Result<CompiledQuery, EngineError> {
        let query = gcx_query::compile(text)?;
        let analysis = analyze(&query);
        Ok(CompiledQuery { query, analysis })
    }

    /// Human-readable static-analysis report: the mapping between query,
    /// paths, roles and preemption points that the demo visualizes in its
    /// Figure 3(a).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("== Projection paths and roles ==\n");
        out.push_str(&self.analysis.roles_listing());
        out.push_str("\n== Rewritten query with signOff statements ==\n");
        out.push_str(&self.analysis.rewritten.to_string());
        out.push('\n');
        out
    }
}

/// Buffer-management configuration. The three presets span the comparison
/// axis of the paper's evaluation (Figure 5):
///
/// * [`EngineOptions::gcx`] — static projection **and** dynamic buffer
///   minimization via active garbage collection (the paper's system);
/// * [`EngineOptions::projection_only`] — static projection, no dynamic
///   purging (the FluXQuery / projection-based-systems class);
/// * [`EngineOptions::full_buffering`] — everything buffered (the naive
///   in-memory engine class).
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Run the stream preprojector's skip logic (static projection).
    pub project: bool,
    /// Execute signOff statements (dynamic buffer minimization).
    pub execute_signoffs: bool,
    /// Allow the buffer to reclaim dead subtrees at all.
    pub purge: bool,
    /// Read the rest of the input after evaluation completes (the paper's
    /// engines scan the full document; also validates well-formedness).
    pub drain_input: bool,
    /// Sample the buffer-occupancy timeline every N tokens (None = off).
    pub timeline_every: Option<u64>,
    /// Pretty-print output with this indent.
    pub indent: Option<String>,
    /// Hard per-run buffer byte budget (None = unlimited). Crossing it
    /// fails the run with [`EngineError::BufferLimitExceeded`] instead of
    /// letting the buffer grow without bound — the primitive the service
    /// layer's admission control (HTTP 413) is built on.
    pub max_buffer_bytes: Option<u64>,
}

impl EngineOptions {
    /// The full GCX configuration: projection + active garbage collection.
    pub fn gcx() -> EngineOptions {
        EngineOptions {
            project: true,
            execute_signoffs: true,
            purge: true,
            drain_input: true,
            timeline_every: None,
            indent: None,
            max_buffer_bytes: None,
        }
    }

    /// Static projection only: signOffs are ignored, the buffer grows to
    /// the size of the projected document.
    pub fn projection_only() -> EngineOptions {
        EngineOptions {
            execute_signoffs: false,
            ..EngineOptions::gcx()
        }
    }

    /// No projection, no GC: the whole document is buffered.
    pub fn full_buffering() -> EngineOptions {
        EngineOptions {
            project: false,
            execute_signoffs: false,
            purge: false,
            ..EngineOptions::gcx()
        }
    }

    /// Enable timeline sampling (builder style).
    pub fn with_timeline(mut self, every: u64) -> EngineOptions {
        self.timeline_every = Some(every);
        self
    }

    /// Disable the final input drain (builder style).
    pub fn without_drain(mut self) -> EngineOptions {
        self.drain_input = false;
        self
    }

    /// Set a hard buffer byte budget (builder style).
    pub fn with_max_buffer_bytes(mut self, bytes: u64) -> EngineOptions {
        self.max_buffer_bytes = Some(bytes);
        self
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions::gcx()
    }
}

/// What a run observed — the measurements the paper's figures are made of.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Structural tokens processed.
    pub tokens: u64,
    /// Buffer statistics: peak/live node counts, allocation/purge totals.
    pub buffer: BufferStats,
    /// Buffer-occupancy samples (when enabled).
    pub timeline: Option<Timeline>,
    /// Bytes of serialized output.
    pub output_bytes: u64,
    /// The buffer byte budget the run was held to (None = unlimited).
    pub max_buffer_bytes: Option<u64>,
}

impl RunReport {
    /// Machine-readable form (hand-rolled JSON; the workspace has no
    /// serde). Timeline points are emitted as `[token, live]` pairs when
    /// sampling was enabled.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"tokens\":{},\"output_bytes\":{},\"max_buffer_bytes\":{},\"buffer\":{}",
            self.tokens,
            self.output_bytes,
            self.max_buffer_bytes
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
            self.buffer.to_json()
        );
        if let Some(tl) = &self.timeline {
            s.push_str(&format!(
                ",\"timeline\":{{\"every\":{},\"peak\":{},\"points\":[",
                tl.every,
                tl.peak()
            ));
            for (i, (t, live)) in tl.points.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{t},{live}]"));
            }
            s.push_str("]}");
        }
        s.push('}');
        s
    }
}

/// Run a compiled query over an XML input stream, writing the result to
/// `output`. The configuration selects the buffer-management strategy.
pub fn run<R: Read, W: Write>(
    q: &CompiledQuery,
    opts: &EngineOptions,
    input: R,
    output: W,
) -> Result<RunReport, EngineError> {
    let mut symbols = SymbolTable::new();
    let compiled = CompiledPaths::compile(&q.analysis.roles, &mut symbols);
    let (matcher, _root_roles) = StreamMatcher::new(compiled);
    // Root roles (the paper's r1) are not materialized: the virtual root is
    // never purged, so its bookkeeping would be inert.
    let tokenizer = Tokenizer::new(input);
    let pre = Preprojector::new(tokenizer, matcher, opts.project, opts.timeline_every);
    run_with_feed(q, opts, symbols, pre, output)
}

/// Run a compiled query over an arbitrary [`BufferFeed`].
///
/// This is [`run`] with the input side factored out: `feed` supplies
/// buffered nodes on demand instead of the built-in tokenizer+projection
/// pipeline. `symbols` must be the table any feed-side names were interned
/// against (a fresh table is fine for feeds that intern on arrival). The
/// multi-query shared-stream driver uses this entry point to evaluate each
/// query of a batch over a channel-fed projection of a single input pass.
pub fn run_with_feed<F: BufferFeed, W: Write>(
    q: &CompiledQuery,
    opts: &EngineOptions,
    symbols: SymbolTable,
    feed: F,
    output: W,
) -> Result<RunReport, EngineError> {
    let mut buf = BufferTree::new(opts.purge);
    buf.set_max_bytes(opts.max_buffer_bytes);
    let out = XmlWriter::with_options(
        output,
        WriterOptions {
            indent: opts.indent.clone(),
        },
    );
    let mut run = Run::new(
        buf,
        feed,
        symbols,
        out,
        &q.analysis,
        opts.execute_signoffs,
        q.query.var_names.len(),
    );
    run.eval(&q.analysis.rewritten.root)?;
    if opts.drain_input {
        while run.pull_public()? {}
    }
    run.finish_report()
}

/// Convenience: compile and run with the GCX configuration.
pub fn run_query(query_text: &str, input: &str) -> Result<String, EngineError> {
    let q = CompiledQuery::compile(query_text)?;
    let mut out = Vec::new();
    run(&q, &EngineOptions::gcx(), input.as_bytes(), &mut out)?;
    String::from_utf8(out).map_err(|_| EngineError::Internal("non-UTF8 output".into()))
}
