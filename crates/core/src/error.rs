//! Engine error type.

use gcx_query::QueryError;
use gcx_xml::XmlError;
use std::fmt;

/// Anything that can go wrong while compiling or running a query.
#[derive(Debug)]
pub enum EngineError {
    /// XML input (or output serialization) failure.
    Xml(XmlError),
    /// Query compilation failure.
    Query(QueryError),
    /// The run crossed its buffer byte budget
    /// ([`crate::EngineOptions::max_buffer_bytes`]). A typed, recoverable
    /// rejection — the primitive behind the server's 413 path — never a
    /// panic or abort.
    BufferLimitExceeded {
        /// The configured budget in bytes.
        limit: u64,
        /// Estimated live buffer bytes at the moment the budget tripped.
        used: u64,
    },
    /// An internal invariant was violated — a bug in the engine, reported
    /// instead of panicking so callers can recover.
    Internal(String),
}

impl EngineError {
    /// True for [`EngineError::BufferLimitExceeded`] — the rejection
    /// servers map to "request too expensive" instead of "request broken".
    pub fn is_buffer_limit(&self) -> bool {
        matches!(self, EngineError::BufferLimitExceeded { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xml(e) => write!(f, "XML error: {e}"),
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::BufferLimitExceeded { limit, used } => write!(
                f,
                "buffer limit exceeded: {used} bytes live, budget {limit}"
            ),
            EngineError::Internal(m) => write!(f, "internal engine error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Xml(e) => Some(e),
            EngineError::Query(e) => Some(e),
            EngineError::BufferLimitExceeded { .. } => None,
            EngineError::Internal(_) => None,
        }
    }
}

impl From<XmlError> for EngineError {
    fn from(e: XmlError) -> Self {
        EngineError::Xml(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_sources() {
        let q = gcx_query::compile("$unbound").unwrap_err();
        let e: EngineError = q.into();
        assert!(e.to_string().contains("unbound"));
        let e = EngineError::Internal("oops".into());
        assert_eq!(e.to_string(), "internal engine error: oops");
        let e = EngineError::BufferLimitExceeded {
            limit: 10,
            used: 42,
        };
        assert!(e.is_buffer_limit());
        assert_eq!(
            e.to_string(),
            "buffer limit exceeded: 42 bytes live, budget 10"
        );
    }
}
