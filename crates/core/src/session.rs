//! The sans-IO evaluation session: the push-driven public form of the
//! engine.
//!
//! GCX's defining property is that evaluation is driven by the *arrival*
//! of stream events, with buffers purged the instant active-rule signoffs
//! allow. [`EvalSession`] is that property as an API: the caller owns all
//! I/O and pushes document bytes in with [`EvalSession::feed`] whenever
//! they happen to arrive — from a socket, a file, a test vector — and the
//! session advances tokenization, projection and evaluation exactly as far
//! as the bytes allow, suspending at any byte boundary (mid-tag, mid-UTF-8
//! sequence, mid-CDATA). Query output accumulates in a caller-drainable
//! buffer ([`EvalSession::output`] / [`EvalSession::take_output`]); the
//! engine never touches `Read` or `Write` internally.
//!
//! One `feed` call interleaves the three stages at the same granularity as
//! the blocking engine — evaluator runs until it blocks, one token is
//! applied, evaluator resumes — so outputs *and buffer peaks* are
//! bit-identical to [`run`](crate::run) regardless of how the input is
//! chunked (pinned by the `chunk_splits` differential suite).
//!
//! ```
//! use gcx_core::{CompiledQuery, EngineOptions};
//!
//! let q = CompiledQuery::compile(
//!     "<books>{ for $b in /bib/book return $b/title }</books>",
//! ).unwrap();
//! let mut session = q.session(&EngineOptions::gcx());
//!
//! // Bytes arrive in arbitrary chunks — here, split mid-tag.
//! let doc = b"<bib><book><title>Streams</title><price>10</price></book></bib>";
//! let (a, b) = doc.split_at(17);
//! let emitted = session.feed(a).unwrap();
//! assert!(!emitted.done, "mid-document: evaluation is suspended");
//! session.feed(b).unwrap();
//!
//! let report = session.finish().unwrap();
//! let mut out = Vec::new();
//! session.take_output(&mut out).unwrap();
//! assert_eq!(out, b"<books><title>Streams</title></books>");
//! assert_eq!(report.buffer.live, 0); // the buffer drained completely
//! assert_eq!(report.feed_calls, 2);
//! ```

use crate::buffer::BufferTree;
use crate::engine::{CompiledQuery, EngineOptions, RunReport};
use crate::error::EngineError;
use crate::eval::{Vm, VmStatus};
use crate::obs::FeedSpan;
use crate::stream::Projector;
use gcx_projection::StreamMatcher;
use gcx_xml::{
    PushTokenizer, SymbolTable, TextPos, TokenStep, WriterOptions, XmlError, XmlErrorKind,
    XmlWriter,
};
use std::io::Write;
use std::sync::Arc;

/// What one [`EvalSession::feed`] (or [`EvalSession::finish`]) call
/// produced.
#[derive(Debug, Clone, Copy)]
pub struct Emitted {
    /// Output bytes currently pending in the session's buffer (including
    /// bytes emitted by earlier calls and not yet drained).
    pub output_bytes: usize,
    /// The program ran to completion: no further output will be produced;
    /// remaining input only gets scanned/validated (when draining is on).
    pub done: bool,
}

/// Outcome of applying stream events from the tokenizer window.
enum Pumped {
    /// One token was applied to the buffer.
    Applied,
    /// The window ends mid-token: feed more bytes.
    Starved,
    /// End of input reached (virtual root closed).
    Eof,
}

/// A resumable, push-driven evaluation of one compiled query over one
/// document. Create with [`CompiledQuery::session`]; see the
/// [module docs](self) for the protocol.
///
/// The session is the engine core with the I/O inverted: internally it
/// owns the incremental tokenizer, the projection state machine, the
/// buffer (with active garbage collection) and the resumable evaluator —
/// all suspended together between `feed` calls, holding exactly the GCX
/// buffer plus the current partial token.
pub struct EvalSession {
    vm: Vm,
    buf: BufferTree,
    symbols: SymbolTable,
    out: XmlWriter<Vec<u8>>,
    tok: PushTokenizer,
    proj: Projector,
    drain_input: bool,
    vm_done: bool,
    finished: bool,
    feed_calls: u64,
    max_pending_bytes: u64,
    /// Telemetry enabled: record a [`FeedSpan`] per feed/commit call.
    telemetry: bool,
    feed_spans: Vec<FeedSpan>,
    /// `(pruned, total)` projection-path counts when an explicit schema
    /// pruned the matcher (None without one).
    pruned_paths: Option<(u32, u32)>,
}

impl EvalSession {
    pub(crate) fn new(q: &CompiledQuery, opts: &EngineOptions) -> EvalSession {
        // The once-at-startup symbol handshake: cloning the program's
        // pre-interned table maps every query symbol into the session's
        // (and thereby the tokenizer's) table. The schema analyses intern
        // their DTD names here too — before any document bytes arrive, so
        // stream and analyses agree on symbols.
        let mut symbols = q.program.symbols().clone();
        let mut buf = BufferTree::new(opts.purge);
        buf.set_max_bytes(opts.max_buffer_bytes);
        // The projection NFA was compiled with the query; the per-run
        // matcher only instantiates mutable frame state over the shared
        // paths. Root roles (the paper's r1) are not materialized: the
        // virtual root is never purged, so its bookkeeping would be inert.
        // With a schema: drop DTD-unsatisfiable paths, arm the matcher's
        // descendant-reachability filter, and install sibling-order
        // cutoffs in the buffer.
        let (matcher, _root_roles, pruned_paths) = match &opts.schema {
            Some(dtd) => {
                let prune = dtd.prune(q.program.matcher_paths(), &symbols);
                let reach = Arc::new(dtd.reach_filter(&mut symbols));
                let (m, r) = StreamMatcher::with_reach(&prune.paths, Some(reach));
                buf.set_schema(dtd.ord_table(&mut symbols), false);
                (m, r, Some((prune.pruned.len() as u32, prune.total as u32)))
            }
            None => {
                let (m, r) = StreamMatcher::new(q.program.matcher_paths());
                (m, r, None)
            }
        };
        let mut proj = Projector::new(matcher, opts.project, opts.timeline_every);
        proj.set_doctype_adoption(opts.schema.is_none() && opts.schema_from_doctype);
        let out = XmlWriter::with_options(
            Vec::new(),
            WriterOptions {
                indent: opts.indent.clone(),
            },
        );
        let mut vm = Vm::new(Arc::clone(&q.program), opts.execute_signoffs);
        if opts.telemetry {
            buf.enable_telemetry(crate::obs::DEFAULT_TIMELINE_EVERY);
            vm.enable_timing();
        }
        EvalSession {
            vm,
            buf,
            symbols,
            out,
            tok: PushTokenizer::new(),
            proj,
            drain_input: opts.drain_input,
            vm_done: false,
            finished: false,
            feed_calls: 0,
            max_pending_bytes: 0,
            telemetry: opts.telemetry,
            feed_spans: Vec::new(),
            pruned_paths,
        }
    }

    /// Push one chunk of document bytes and advance evaluation as far as
    /// they allow. Any amount is fine, including empty; the session
    /// carries partial-token spillover across calls internally.
    ///
    /// Output produced by this call is buffered — read it with
    /// [`EvalSession::output`] or drain it with
    /// [`EvalSession::take_output`].
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Emitted, EngineError> {
        if self.finished {
            return Err(EngineError::Internal(
                "EvalSession::feed after finish".into(),
            ));
        }
        if !self.wants_input() {
            // The program completed and draining is off: the rest of the
            // document is irrelevant. Accepting (and buffering) it would
            // grow memory without bound, so it is dropped (and not
            // counted — the bytes never entered the run). The blocking
            // engine likewise stops reading at this point.
            return Ok(self.emitted());
        }
        self.feed_calls += 1;
        self.tok.feed(chunk);
        self.pump_spanned(chunk.len())
    }

    /// Zero-copy variant of [`EvalSession::feed`]: borrow at least `min`
    /// writable bytes of the tokenizer window to read input into directly
    /// (e.g. straight from a socket), then [`EvalSession::commit`] however
    /// many arrived. Invalidates pending borrowed state like `feed` does.
    pub fn space(&mut self, min: usize) -> &mut [u8] {
        self.tok.space(min)
    }

    /// Declare `n` bytes of [`EvalSession::space`] filled and advance
    /// evaluation, exactly like [`EvalSession::feed`] on that slice.
    /// Callers should stop filling once [`EvalSession::wants_input`] turns
    /// false — committed-but-irrelevant bytes stay buffered.
    pub fn commit(&mut self, n: usize) -> Result<Emitted, EngineError> {
        if self.finished {
            return Err(EngineError::Internal(
                "EvalSession::commit after finish".into(),
            ));
        }
        self.feed_calls += 1;
        self.tok.commit(n);
        self.pump_spanned(n)
    }

    /// False once further input can have no effect: the program completed
    /// and end-of-input draining/validation is disabled. [`EvalSession::feed`]
    /// drops chunks from then on; callers owning the byte source can stop
    /// reading it (the [`run`](crate::run) wrapper does).
    pub fn wants_input(&self) -> bool {
        !self.vm_done || self.drain_input
    }

    /// Declare the end of input and run evaluation to completion,
    /// returning the run's measurements. Fails with the same errors the
    /// blocking engine would (malformed XML, truncated document, buffer
    /// budget). Pending output remains drainable afterwards.
    pub fn finish(&mut self) -> Result<RunReport, EngineError> {
        if self.finished {
            return Err(EngineError::Internal(
                "EvalSession::finish called twice".into(),
            ));
        }
        self.tok.finish_input();
        let emitted = self.pump()?;
        debug_assert!(emitted.done, "EOF pump must complete the program");
        self.finished = true;
        self.out.flush()?;
        let obs = self.buf.take_telemetry().map(|tel| {
            tel.into_report(
                self.vm.take_task_obs(),
                std::mem::take(&mut self.feed_spans),
                self.tok.window_peak(),
            )
        });
        // A schema was in effect when the matcher was schema-built
        // (explicit) or the buffer adopted a DOCTYPE's order table.
        let schema = if self.pruned_paths.is_some() || self.buf.schema_active() {
            let (early_scan_ends, early_signoffs, doctype_adopted) = self.buf.schema_counters();
            let (pruned, total) = self.pruned_paths.unwrap_or((0, 0));
            Some(crate::engine::SchemaReport {
                pruned_paths: pruned,
                total_paths: total,
                reach_cuts: self.proj.reach_cuts(),
                early_scan_ends,
                early_signoffs,
                doctype_adopted,
            })
        } else {
            None
        };
        Ok(RunReport {
            tokens: self.proj.tokens(),
            buffer: self.buf.stats(),
            timeline: self.proj.take_timeline(),
            output_bytes: self.out.bytes_written(),
            max_buffer_bytes: self.buf.max_bytes(),
            feed_calls: self.feed_calls,
            max_pending_bytes: self.max_pending_bytes,
            obs,
            schema,
        })
    }

    /// Borrowed view of the output bytes pending in the session.
    pub fn output(&self) -> &[u8] {
        self.out.get_ref()
    }

    /// Drain pending output into `sink`; returns the bytes written.
    /// Callers stream results while the document is still arriving by
    /// interleaving this with [`EvalSession::feed`].
    ///
    /// On a sink error, the bytes that *were* written are removed from
    /// the pending buffer before the error returns, so retrying (on the
    /// same or a replacement sink) never emits a byte twice.
    pub fn take_output<W: Write>(&mut self, sink: &mut W) -> Result<usize, EngineError> {
        let pending = self.out.get_mut();
        let total = pending.len();
        let mut off = 0;
        while off < pending.len() {
            match sink.write(&pending[off..]) {
                Ok(0) => {
                    pending.drain(..off);
                    return Err(EngineError::Xml(XmlError {
                        kind: XmlErrorKind::Io(std::io::Error::new(
                            std::io::ErrorKind::WriteZero,
                            "output sink accepted no bytes",
                        )),
                        pos: TextPos::START,
                    }));
                }
                Ok(n) => off += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    pending.drain(..off);
                    return Err(EngineError::Xml(XmlError {
                        kind: XmlErrorKind::Io(e),
                        pos: TextPos::START,
                    }));
                }
            }
        }
        pending.clear();
        Ok(total)
    }

    /// `feed` calls so far.
    pub fn feed_calls(&self) -> u64 {
        self.feed_calls
    }

    /// Largest partial-token spillover held across a `feed` boundary so
    /// far (see [`RunReport::max_pending_bytes`]).
    pub fn max_pending_bytes(&self) -> u64 {
        self.max_pending_bytes
    }

    /// Input position of the next byte to be tokenized (line/column for
    /// error reporting).
    pub fn position(&self) -> TextPos {
        self.tok.position()
    }

    /// Wrap an input-side I/O failure the way the blocking engine's
    /// tokenizer would have reported it, carrying the current position.
    pub fn input_io_error(&self, e: std::io::Error) -> EngineError {
        EngineError::Xml(XmlError {
            kind: XmlErrorKind::Io(e),
            pos: self.tok.position(),
        })
    }

    /// [`EvalSession::pump`] wrapped in a [`FeedSpan`] when telemetry is
    /// on: when the chunk arrived, how long consuming it took, and its
    /// size — the raw material of the Chrome-trace feed track.
    fn pump_spanned(&mut self, bytes: usize) -> Result<Emitted, EngineError> {
        if !self.telemetry {
            return self.pump();
        }
        let start = gcx_obs::now_micros();
        let result = self.pump();
        self.feed_spans.push(FeedSpan {
            start_us: start,
            dur_us: gcx_obs::now_micros().saturating_sub(start),
            bytes: bytes as u64,
        });
        result
    }

    /// Drive the machine as far as the buffered bytes allow. Keeps the
    /// blocking engine's exact interleaving — evaluator to suspension,
    /// tokens until the machine's recorded wait is satisfiable, evaluator
    /// again — so buffer peaks are bit-identical however the input was
    /// chunked (resuming while the wait is unsatisfied would be a provable
    /// no-op; see [`Vm::wait_satisfied`]).
    fn pump(&mut self) -> Result<Emitted, EngineError> {
        loop {
            if !self.vm_done {
                match self
                    .vm
                    .resume(&mut self.buf, &self.symbols, &mut self.out)?
                {
                    VmStatus::Done => self.vm_done = true,
                    VmStatus::NeedInput => loop {
                        match self.apply_next()? {
                            Pumped::Applied => {
                                if self.vm.wait_satisfied(&self.buf) {
                                    break;
                                }
                            }
                            Pumped::Starved => return Ok(self.emitted()),
                            Pumped::Eof => {
                                self.vm.set_input_exhausted();
                                break;
                            }
                        }
                    },
                }
            } else {
                if !self.drain_input {
                    return Ok(self.emitted());
                }
                match self.apply_next()? {
                    Pumped::Applied => {}
                    Pumped::Starved | Pumped::Eof => return Ok(self.emitted()),
                }
            }
        }
    }

    /// Apply one stream event from the tokenizer window to the buffer.
    fn apply_next(&mut self) -> Result<Pumped, EngineError> {
        match self.tok.step()? {
            TokenStep::Token => {
                let token = self.tok.token();
                self.proj.apply(&token, &mut self.buf, &mut self.symbols);
                self.buf.check_limit()?;
                Ok(Pumped::Applied)
            }
            TokenStep::NeedMoreData => {
                self.max_pending_bytes =
                    self.max_pending_bytes.max(self.tok.pending_bytes() as u64);
                Ok(Pumped::Starved)
            }
            TokenStep::End => {
                if !self.proj.finished() {
                    self.proj.finish(&mut self.buf);
                }
                Ok(Pumped::Eof)
            }
        }
    }

    fn emitted(&self) -> Emitted {
        Emitted {
            output_bytes: self.out.get_ref().len(),
            done: self.vm_done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;

    const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";
    const DOC: &str = "<bib><book><title>T1</title><price>9</price></book>\
                       <article><title>skip</title></article>\
                       <book><title>T2</title></book></bib>";

    fn single_shot(query: &str, doc: &str) -> (Vec<u8>, RunReport) {
        let q = CompiledQuery::compile(query).unwrap();
        let mut out = Vec::new();
        let report = run(&q, &EngineOptions::gcx(), doc.as_bytes(), &mut out).unwrap();
        (out, report)
    }

    /// Feed `doc` in `chunk`-byte pieces; return (output, report).
    fn chunked(query: &str, doc: &str, chunk: usize) -> (Vec<u8>, RunReport) {
        let q = CompiledQuery::compile(query).unwrap();
        let mut session = q.session(&EngineOptions::gcx());
        for piece in doc.as_bytes().chunks(chunk.max(1)) {
            session.feed(piece).unwrap();
        }
        let report = session.finish().unwrap();
        let mut out = Vec::new();
        session.take_output(&mut out).unwrap();
        (out, report)
    }

    #[test]
    fn chunking_matches_single_shot_bit_for_bit() {
        let (want_out, want_report) = single_shot(QUERY, DOC);
        for chunk in [1, 2, 3, 7, 16, DOC.len()] {
            let (out, report) = chunked(QUERY, DOC, chunk);
            assert_eq!(out, want_out, "chunk size {chunk}");
            assert_eq!(report.tokens, want_report.tokens, "chunk size {chunk}");
            assert_eq!(
                report.buffer.peak_live, want_report.buffer.peak_live,
                "chunk size {chunk}"
            );
            assert_eq!(
                report.buffer.peak_live_bytes, want_report.buffer.peak_live_bytes,
                "chunk size {chunk}"
            );
            assert_eq!(report.buffer.live, 0, "chunk size {chunk}");
        }
    }

    #[test]
    fn telemetry_reports_buffer_lifecycle_without_changing_results() {
        let (want_out, want_report) = single_shot(QUERY, DOC);
        let q = CompiledQuery::compile(QUERY).unwrap();
        let mut session = q.session(&EngineOptions::gcx().with_telemetry());
        for piece in DOC.as_bytes().chunks(7) {
            session.feed(piece).unwrap();
        }
        let report = session.finish().unwrap();
        let mut out = Vec::new();
        session.take_output(&mut out).unwrap();
        // Telemetry must be pure observation: outputs and buffer peaks
        // stay bit-identical to the untraced run.
        assert_eq!(out, want_out);
        assert_eq!(
            report.buffer.peak_live_bytes,
            want_report.buffer.peak_live_bytes
        );
        assert_eq!(report.buffer.purged, want_report.buffer.purged);
        let obs = report.obs.as_ref().expect("telemetry enabled");
        assert_eq!(
            obs.residency_tokens.count(),
            report.buffer.purged,
            "one residency observation per purged node"
        );
        assert_eq!(obs.purged_node_bytes.count(), report.buffer.purged);
        assert!(obs.purged_node_bytes.sum() > 0);
        assert!(obs.purges_on_signoff + obs.purges_on_close + obs.purges_on_unpin > 0);
        assert!(!obs.roles.is_empty(), "role lifecycle recorded");
        assert!(obs.roles.iter().any(|r| r.signoffs > 0));
        assert!(!obs.tasks.is_empty(), "frame timing recorded");
        assert_eq!(obs.feed_spans.len() as u64, report.feed_calls);
        assert!(obs.tokenizer_window_peak > 0);
        assert!(!obs.live_bytes_timeline.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"obs\":{\"residency_tokens\""), "{json}");
        // Telemetry off: the report carries no obs section.
        assert!(want_report.obs.is_none());
        assert!(!want_report.to_json().contains("\"obs\""));
    }

    #[test]
    fn output_streams_while_document_arrives() {
        let q = CompiledQuery::compile("for $b in /bib/book return $b/title").unwrap();
        let mut session = q.session(&EngineOptions::gcx());
        session
            .feed(b"<bib><book><title>early</title></book>")
            .unwrap();
        // The first result is available before the document ends.
        let mut streamed = Vec::new();
        session.take_output(&mut streamed).unwrap();
        assert_eq!(streamed, b"<title>early</title>");
        session
            .feed(b"<book><title>late</title></book></bib>")
            .unwrap();
        session.finish().unwrap();
        session.take_output(&mut streamed).unwrap();
        assert_eq!(
            streamed,
            b"<title>early</title><title>late</title>".as_slice()
        );
    }

    #[test]
    fn emitted_reports_completion() {
        let q = CompiledQuery::compile("'x'").unwrap();
        let mut session = q.session(&EngineOptions::gcx());
        // A constant query completes as soon as the root closes.
        let emitted = session.feed(b"<doc/>").unwrap();
        assert!(emitted.done);
        assert_eq!(emitted.output_bytes, 1);
        let report = session.finish().unwrap();
        assert_eq!(report.output_bytes, 1);
    }

    #[test]
    fn spillover_is_observable() {
        let q = CompiledQuery::compile("for $b in /a/b return $b").unwrap();
        let mut session = q.session(&EngineOptions::gcx());
        session.feed(b"<a><b att").unwrap(); // suspended mid-tag
        assert_eq!(session.max_pending_bytes(), 6, "`<b att` spills");
        session.feed(b"r=\"1\"/></a>").unwrap();
        let report = session.finish().unwrap();
        assert_eq!(report.max_pending_bytes, 6);
        assert_eq!(report.feed_calls, 2);
    }

    #[test]
    fn malformed_input_fails_like_the_blocking_engine() {
        let q = CompiledQuery::compile("for $b in /a/b return $b").unwrap();
        let mut session = q.session(&EngineOptions::gcx());
        session.feed(b"<a><b></b>").unwrap();
        // Truncated document: the error surfaces at finish.
        let err = session.finish().unwrap_err();
        assert!(matches!(err, EngineError::Xml(_)), "{err}");
    }

    #[test]
    fn without_drain_ignores_input_after_completion() {
        let q = CompiledQuery::compile("'x'").unwrap();
        let mut session = q.session(&EngineOptions::gcx().without_drain());
        // A constant query completes without touching the input at all.
        let emitted = session.feed(b"<doc>").unwrap();
        assert!(emitted.done);
        assert!(!session.wants_input(), "drain off: input is now irrelevant");
        // Further chunks are dropped, not buffered: spillover stays zero
        // however much arrives.
        for _ in 0..64 {
            session.feed(&[b'z'; 1024]).unwrap();
        }
        assert_eq!(session.max_pending_bytes(), 0);
        let report = session.finish().unwrap();
        assert_eq!(report.output_bytes, 1);
    }

    #[test]
    fn run_without_drain_leaves_remaining_input_unread() {
        let q = CompiledQuery::compile("'x'").unwrap();
        let mut doc = b"<doc/>".to_vec();
        doc.extend(std::iter::repeat_n(b' ', 1 << 20)); // a long tail
        let mut reader = std::io::Cursor::new(doc);
        let mut out = Vec::new();
        run(
            &q,
            &EngineOptions::gcx().without_drain(),
            &mut reader,
            &mut out,
        )
        .unwrap();
        assert_eq!(out, b"x");
        assert!(
            (reader.position() as usize) < (1 << 20),
            "the tail must stay unread, like the pull engine ({} read)",
            reader.position()
        );
    }

    #[test]
    fn take_output_never_duplicates_bytes_across_a_failed_sink() {
        use std::io::Write;

        /// Accepts `budget` bytes, then fails every write.
        struct Flaky {
            got: Vec<u8>,
            budget: usize,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget == 0 {
                    return Err(std::io::Error::other("sink broke"));
                }
                let n = buf.len().min(self.budget);
                self.got.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let q = CompiledQuery::compile("for $t in /b/t return $t").unwrap();
        let mut session = q.session(&EngineOptions::gcx());
        session.feed(b"<b><t>hello world</t></b>").unwrap();
        session.finish().unwrap();
        let want = session.output().to_vec();
        assert!(!want.is_empty());

        let mut sink = Flaky {
            got: Vec::new(),
            budget: 5,
        };
        assert!(session.take_output(&mut sink).is_err());
        // Retry on a healthy sink: the already-delivered prefix must not
        // be re-sent.
        let mut rest = Vec::new();
        session.take_output(&mut rest).unwrap();
        let mut combined = sink.got;
        combined.extend_from_slice(&rest);
        assert_eq!(combined, want);
    }

    #[test]
    fn feed_after_finish_is_an_error() {
        let q = CompiledQuery::compile("'x'").unwrap();
        let mut session = q.session(&EngineOptions::gcx());
        session.feed(b"<doc/>").unwrap();
        session.finish().unwrap();
        assert!(session.feed(b"more").is_err());
    }

    #[test]
    fn buffer_budget_trips_mid_feed() {
        let q = CompiledQuery::compile("for $x in /a/b return $x").unwrap();
        // Full buffering accumulates every node, so the budget must trip.
        let opts = EngineOptions::full_buffering().with_max_buffer_bytes(64);
        let mut session = q.session(&opts);
        let mut doc = String::from("<a>");
        for i in 0..64 {
            doc.push_str(&format!("<b>payload payload {i}</b>"));
        }
        doc.push_str("</a>");
        let mut failed = false;
        for piece in doc.as_bytes().chunks(16) {
            if session.feed(piece).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "the byte budget must trip during feeding");
    }
}
