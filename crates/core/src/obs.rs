//! Per-run engine telemetry: the observable form of the paper's central
//! claim. GCX's whole point is *dynamic buffer minimization*, so the
//! run-level telemetry is keyed to the buffer's lifecycle — how long
//! nodes stay resident between append and purge, how purges batch, and
//! which role kept nodes alive — plus VM task-frame timing to attribute
//! where evaluation time goes.
//!
//! Everything here is **off by default** and costs one null-pointer
//! check per hook when disabled ([`crate::EngineOptions::telemetry`]
//! gates it); when enabled, all storage is allocated once at session
//! start and the hot hooks only update fixed-bucket histograms.

use gcx_obs::Hist;

/// Live-bytes timeline sampling cadence (structural tokens) used when
/// telemetry is enabled via [`crate::EngineOptions::telemetry`].
pub const DEFAULT_TIMELINE_EVERY: u64 = 1024;

/// Telemetry for one role: how many instances were attached, signed
/// off, and how often a signOff on this role was the purge trigger.
/// "Which role kept nodes live" reads off `max_live` — the high
/// watermark of outstanding (attached but not yet signed-off)
/// instances.
#[derive(Debug, Clone)]
pub struct RoleObs {
    /// Display name of the role (the paper's `r3`, `r5`, ...).
    pub role: String,
    /// Role instances attached at append time.
    pub appends: u64,
    /// Role instances removed by signOff execution.
    pub signoffs: u64,
    /// SignOffs of this role that directly triggered a purge.
    pub purge_triggers: u64,
    /// High watermark of outstanding instances.
    pub max_live: u64,
}

/// Cumulative time spent in one kind of VM task frame.
#[derive(Debug, Clone)]
pub struct TaskObs {
    /// Task-frame kind (`"ForLoop"`, `"Cond"`, ...).
    pub name: &'static str,
    /// Frames of this kind executed.
    pub count: u64,
    /// Total nanoseconds across those frames.
    pub nanos: u64,
}

/// One feed-call span (for Chrome-trace output): when the chunk arrived
/// on the process clock, how long the engine spent consuming it, and
/// how many bytes it carried.
#[derive(Debug, Clone, Copy)]
pub struct FeedSpan {
    /// Start, µs on the [`gcx_obs::now_micros`] clock.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Chunk size in bytes.
    pub bytes: u64,
}

/// The per-run observability report, carried by
/// [`crate::RunReport::obs`] when [`crate::EngineOptions::telemetry`]
/// is on, and serialized into `--stats-json`.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Append→purge residency of purged nodes, in structural tokens.
    pub residency_tokens: Hist,
    /// Sizes (deterministic `node_bytes`) of purged nodes.
    pub purged_node_bytes: Hist,
    /// Nodes reclaimed per purge cascade (`free_subtree` batch size).
    pub purge_batch: Hist,
    /// Purge cascades by trigger: a signOff role decrement.
    pub purges_on_signoff: u64,
    /// Purge cascades triggered by a node closing (speculative buffers).
    pub purges_on_close: u64,
    /// Purge cascades triggered by an evaluator unpin.
    pub purges_on_unpin: u64,
    /// Per-role lifecycle counters, in role-id order.
    pub roles: Vec<RoleObs>,
    /// `(token, live_bytes)` samples of the buffer's byte occupancy.
    pub live_bytes_timeline: Vec<(u64, u64)>,
    /// Sampling cadence of the timeline, in tokens.
    pub timeline_every: u64,
    /// VM task-frame timing by kind, hottest first.
    pub tasks: Vec<TaskObs>,
    /// Spans of the session's `feed` calls (empty for pull-mode runs).
    pub feed_spans: Vec<FeedSpan>,
    /// High watermark of the push tokenizer's window (spillover bytes
    /// held across chunk boundaries plus in-flight chunk bytes).
    pub tokenizer_window_peak: u64,
}

impl ObsReport {
    /// Machine-readable form (hand-rolled JSON, same conventions as the
    /// rest of `--stats-json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"residency_tokens\":");
        out.push_str(&self.residency_tokens.to_json());
        out.push_str(",\"purged_node_bytes\":");
        out.push_str(&self.purged_node_bytes.to_json());
        out.push_str(",\"purge_batch\":");
        out.push_str(&self.purge_batch.to_json());
        out.push_str(&format!(
            ",\"purges_on_signoff\":{},\"purges_on_close\":{},\"purges_on_unpin\":{}",
            self.purges_on_signoff, self.purges_on_close, self.purges_on_unpin
        ));
        out.push_str(",\"roles\":[");
        for (i, r) in self.roles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"role\":\"");
            gcx_obs::push_json_escaped(&mut out, &r.role);
            out.push_str(&format!(
                "\",\"appends\":{},\"signoffs\":{},\"purge_triggers\":{},\"max_live\":{}}}",
                r.appends, r.signoffs, r.purge_triggers, r.max_live
            ));
        }
        out.push_str("],\"live_bytes_timeline\":{\"every\":");
        out.push_str(&self.timeline_every.to_string());
        out.push_str(",\"points\":[");
        for (i, (t, b)) in self.live_bytes_timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{t},{b}]"));
        }
        out.push_str("]},\"tasks\":[");
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"task\":\"{}\",\"count\":{},\"nanos\":{}}}",
                t.name, t.count, t.nanos
            ));
        }
        out.push_str(&format!(
            "],\"feed_spans\":{},\"tokenizer_window_peak\":{}}}",
            self.feed_spans.len(),
            self.tokenizer_window_peak
        ));
        out
    }
}
