//! The stream preprojector (paper Figure 2, left component).
//!
//! The core is the sans-IO [`Projector`]: a push-driven state machine that
//! takes one token at a time ("a lookahead of just one token"), runs the
//! projection NFA, and copies matched tokens into the buffer with their
//! role instances. Irrelevant subtrees are skipped with a depth counter and
//! zero per-path work. Every structural token — kept or skipped — advances
//! the token counter and (optionally) samples the buffer-occupancy timeline
//! that the paper's Figures 3 and 4 plot. Tokens can come from anywhere:
//! the push-based `EvalSession` applies them as network chunks arrive,
//! while [`Preprojector`] pairs the projector with a pull [`Tokenizer`]
//! for in-process `Read` sources.
//!
//! For the full-buffering baseline (`project = false`) the projector
//! buffers *every* element and non-whitespace text node; roles are still
//! assigned so the evaluator and the signOff machinery behave identically.

use crate::buffer::{AttrBuf, BufferTree, NodeId, Ordinals};
use crate::error::EngineError;
use gcx_projection::StreamMatcher;
use gcx_query::ast::RoleId;
use gcx_xml::{Symbol, SymbolTable, Token, Tokenizer, XmlResult};
use std::io::Read;

/// Anything that can drive a [`BufferTree`] one step at a time.
///
/// The evaluator ([`crate::run_with_feed`]) is agnostic about where
/// buffered nodes come from: the classic single-query pipeline feeds it
/// from a [`Preprojector`] (tokenizer + projection NFA), while the
/// multi-query shared-stream driver (`gcx-multi`) feeds it pre-matched
/// node events from a channel. One call to [`BufferFeed::advance`]
/// corresponds to one `nextNode()` request of the paper's architecture.
pub trait BufferFeed {
    /// Advance the feed by one event, appending/closing buffer nodes as
    /// needed. Returns `false` once the input is exhausted (the virtual
    /// root must be closed before returning `false` the first time).
    fn advance(
        &mut self,
        buf: &mut BufferTree,
        symbols: &mut SymbolTable,
    ) -> Result<bool, EngineError>;

    /// Structural events processed so far (for reporting).
    fn tokens(&self) -> u64;

    /// Extract the buffer-occupancy timeline, if this feed records one.
    fn take_timeline(&mut self) -> Option<Timeline> {
        None
    }
}

impl<R: Read> BufferFeed for Preprojector<R> {
    fn advance(
        &mut self,
        buf: &mut BufferTree,
        symbols: &mut SymbolTable,
    ) -> Result<bool, EngineError> {
        Ok(Preprojector::advance(self, buf, symbols)?)
    }

    fn tokens(&self) -> u64 {
        Preprojector::tokens(self)
    }

    fn take_timeline(&mut self) -> Option<Timeline> {
        Preprojector::take_timeline(self)
    }
}

/// Buffer-occupancy timeline: `(token index, live buffered nodes)` samples.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Sampled points in token order.
    pub points: Vec<(u64, u64)>,
    /// Sampling stride (1 = every token).
    pub every: u64,
}

impl Timeline {
    fn record(&mut self, token: u64, live: u64) {
        if self.every > 0 && token.is_multiple_of(self.every) {
            self.points.push((token, live));
        }
    }

    /// Highest buffered-node count over the recorded samples.
    pub fn peak(&self) -> u64 {
        self.points.iter().map(|&(_, live)| live).max().unwrap_or(0)
    }
}

/// Document child counters for ordinal stamping: every child — kept,
/// skipped or text — bumps these, so positional predicates evaluate
/// against true document positions. One instance per open element; also
/// used by the shared-stream driver (`gcx-multi`), which stamps ordinals
/// per query on the driver side.
///
/// Same-name counts live in a small vector (elements have few distinct
/// child names; a hash map would pay hashing and allocation per child),
/// and instances are pooled by their owners so opening an element
/// allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct ChildCounters {
    elem_children: u32,
    text_children: u32,
    any_children: u32,
    by_name: Vec<(Symbol, u32)>,
}

impl ChildCounters {
    /// Fresh counters for a just-opened element.
    pub fn new() -> ChildCounters {
        ChildCounters::default()
    }

    /// Reset for reuse (pooling), keeping capacity.
    pub fn clear(&mut self) {
        self.elem_children = 0;
        self.text_children = 0;
        self.any_children = 0;
        self.by_name.clear();
    }

    /// Register an element child named `name`; returns its ordinals.
    pub fn next_elem(&mut self, name: Symbol) -> Ordinals {
        self.elem_children += 1;
        self.any_children += 1;
        let same = match self.by_name.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => {
                *c += 1;
                *c
            }
            None => {
                self.by_name.push((name, 1));
                1
            }
        };
        Ordinals {
            same_kind: same,
            elem: self.elem_children,
            any: self.any_children,
        }
    }

    /// Register a text child; returns its ordinals.
    pub fn next_text(&mut self) -> Ordinals {
        self.text_children += 1;
        self.any_children += 1;
        Ordinals {
            same_kind: self.text_children,
            elem: self.elem_children,
            any: self.any_children,
        }
    }
}

/// One open element as the preprojector sees it.
#[derive(Debug)]
struct OpenEntry {
    node: NodeId,
    /// Whether the matcher holds a frame for this element. False only in
    /// full-buffering mode for elements the matcher would have skipped.
    matched: bool,
    counters: ChildCounters,
}

impl OpenEntry {
    fn new(node: NodeId, matched: bool, counters: ChildCounters) -> OpenEntry {
        OpenEntry {
            node,
            matched,
            counters,
        }
    }

    /// Register an element child named `name`; returns its ordinals.
    fn next_elem(&mut self, name: Symbol) -> Ordinals {
        self.counters.next_elem(name)
    }

    /// Register a text child; returns its ordinals.
    fn next_text(&mut self) -> Ordinals {
        self.counters.next_text()
    }
}

/// The sans-IO projector: matcher + buffer writer over *pushed* tokens.
///
/// This is the resumable core of the preprojection stage: it owns no
/// input source and can be suspended between any two tokens. One call to
/// [`Projector::apply`] processes exactly one token (the `nextNode()`
/// granularity of the paper's architecture); [`Projector::finish`] closes
/// the virtual root at end of input so blocked cursors terminate.
pub struct Projector {
    matcher: StreamMatcher,
    /// Open *kept* elements; the top is the parent of incoming nodes.
    open: Vec<OpenEntry>,
    /// Depth inside a skipped subtree (0 = not skipping). Only used when
    /// projection is enabled.
    skip_depth: u32,
    /// Structural tokens processed so far (start/end/text).
    tokens: u64,
    finished: bool,
    /// Projection on (GCX / projection-only) or off (full buffering).
    project: bool,
    timeline: Option<Timeline>,
    /// Scratch reused across tokens (the zero-allocation handshake with
    /// [`BufferTree::append_element_with_attrs`]): attribute storage for
    /// the element being appended and the matcher's role output.
    attr_scratch: AttrBuf,
    role_scratch: Vec<(RoleId, u32)>,
    text_role_scratch: Vec<(RoleId, u32)>,
    /// Recycled child counters for closed elements.
    counter_pool: Vec<ChildCounters>,
    /// Adopt sibling-order cutoffs from an in-stream DOCTYPE internal
    /// subset (only when no schema is installed yet; parse failures are
    /// ignored — an unusable DOCTYPE means "no schema", not an error).
    adopt_doctype: bool,
}

impl Projector {
    /// Create a projector; tokens are supplied by the caller.
    pub fn new(matcher: StreamMatcher, project: bool, timeline_every: Option<u64>) -> Projector {
        Projector {
            matcher,
            open: vec![OpenEntry::new(NodeId::ROOT, true, ChildCounters::new())],
            skip_depth: 0,
            tokens: 0,
            finished: false,
            project,
            timeline: timeline_every.map(|every| Timeline {
                points: Vec::new(),
                every,
            }),
            attr_scratch: AttrBuf::new(),
            role_scratch: Vec::new(),
            text_role_scratch: Vec::new(),
            counter_pool: Vec::new(),
            adopt_doctype: false,
        }
    }

    /// Enable or disable DOCTYPE schema adoption (off by default; the
    /// session turns it on when no explicit schema is configured).
    pub fn set_doctype_adoption(&mut self, adopt: bool) {
        self.adopt_doctype = adopt;
    }

    /// Subtrees the matcher skipped on the DTD's descendant-reachability
    /// proof (0 without a schema-built matcher).
    pub fn reach_cuts(&self) -> u64 {
        self.matcher.reach_cuts()
    }

    /// Structural tokens processed so far.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// True once [`Projector::finish`] ran (virtual root closed).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Extract the recorded timeline (if enabled).
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take()
    }

    /// Declare the end of input: closes the virtual root so cursors
    /// waiting on "more children or closed" terminate. Idempotent.
    pub fn finish(&mut self, buf: &mut BufferTree) {
        if !self.finished {
            self.finished = true;
            buf.close(NodeId::ROOT);
        }
    }

    /// Apply one token to the buffer: the merged keep/skip decision, role
    /// assignment, ordinal stamping and token counting.
    pub fn apply(&mut self, token: &Token<'_>, buf: &mut BufferTree, symbols: &mut SymbolTable) {
        match token {
            Token::StartTag(start) => {
                let self_closing = start.self_closing;
                if self.skip_depth > 0 {
                    if !self_closing {
                        self.skip_depth += 1;
                    }
                } else {
                    let name = symbols.intern(start.name);
                    let top = self.open.last_mut().expect("open stack never empty");
                    let ordinals = top.next_elem(name);
                    let (top_node, top_matched) = (top.node, top.matched);
                    // Sibling-order cutoffs advance on *every* child name,
                    // kept or projected away: a skipped later sibling is
                    // just as much proof that earlier particles are done.
                    buf.schema_note_child(top_node, name);
                    // Inside an unmatched region the matcher has no frame;
                    // children are unmatched too. Roles land in the reused
                    // scratch — no per-element vector.
                    let (keep, matched, has_roles) = if top_matched {
                        if self
                            .matcher
                            .enter_element_into(name, &mut self.role_scratch)
                        {
                            (true, true, true)
                        } else {
                            (!self.project, false, false)
                        }
                    } else {
                        (true, false, false)
                    };
                    if keep {
                        self.attr_scratch.clear();
                        for a in start.attrs.iter() {
                            let attr_name = symbols.intern(a.name);
                            self.attr_scratch.push(attr_name, a.value);
                        }
                        let roles = if has_roles {
                            self.role_scratch.as_slice()
                        } else {
                            &[]
                        };
                        let id = buf.append_element_with_attrs(
                            top_node,
                            name,
                            &mut self.attr_scratch,
                            roles,
                            ordinals,
                        );
                        if self_closing {
                            if matched {
                                self.matcher.leave_element();
                            }
                            buf.close(id);
                        } else {
                            let counters = self.counter_pool.pop().unwrap_or_default();
                            self.open.push(OpenEntry::new(id, matched, counters));
                        }
                    } else if !self_closing {
                        self.skip_depth = 1;
                    }
                }
                self.bump(buf);
                if self_closing {
                    // A self-closing tag stands for open+close: count both.
                    self.bump(buf);
                }
            }
            Token::EndTag { .. } => {
                if self.skip_depth > 0 {
                    self.skip_depth -= 1;
                } else {
                    let mut entry = self.open.pop().expect("unbalanced end tag past tokenizer");
                    debug_assert!(entry.node != NodeId::ROOT, "root popped before EOF");
                    if entry.matched {
                        self.matcher.leave_element();
                    }
                    buf.close(entry.node);
                    entry.counters.clear();
                    self.counter_pool.push(entry.counters);
                }
                self.bump(buf);
            }
            Token::Text(content) => {
                if self.skip_depth == 0 {
                    let top_matched = self.open.last().unwrap().matched;
                    if top_matched {
                        self.matcher.text_into(&mut self.text_role_scratch);
                    } else {
                        self.text_role_scratch.clear();
                    }
                    let keep = !self.text_role_scratch.is_empty()
                        || (!self.project && !content.trim().is_empty());
                    let top = self.open.last_mut().unwrap();
                    let ordinals = top.next_text();
                    if keep {
                        buf.append_text(top.node, content, &self.text_role_scratch, ordinals);
                    }
                }
                self.bump(buf);
            }
            Token::Doctype(payload) => {
                // Not part of the data model, but a usable internal subset
                // can seed the sibling-order analysis mid-stream (names
                // interned here land before any document element's — the
                // prolog precedes the root). Explicit schemas win; parse
                // failures mean "no schema".
                if self.adopt_doctype && !buf.schema_active() {
                    if let Ok(view) = gcx_xml::DoctypeView::parse(payload) {
                        if let Ok(dtd) = gcx_schema::Dtd::from_doctype_parts(view.name, view.subset)
                        {
                            buf.set_schema(dtd.ord_table(symbols), true);
                        }
                    }
                }
            }
            // Comments and PIs are not part of the data model.
            Token::Comment(_) | Token::ProcessingInstruction { .. } => {}
        }
    }

    fn bump(&mut self, buf: &mut BufferTree) {
        self.tokens += 1;
        // Advance the buffer's telemetry clock (one null check when
        // observability is off): residency histograms are measured in
        // these structural tokens.
        buf.tick(self.tokens);
        if let Some(t) = self.timeline.as_mut() {
            t.record(self.tokens, buf.stats().live);
        }
    }
}

/// The pull preprojector: a [`Tokenizer`] paired with the sans-IO
/// [`Projector`]. Used by blocking callers that own a `Read` source; the
/// push-based `EvalSession` drives the projector directly instead.
pub struct Preprojector<R> {
    tokenizer: Tokenizer<R>,
    proj: Projector,
}

impl<R: Read> Preprojector<R> {
    /// Create a preprojector over a token stream.
    pub fn new(
        tokenizer: Tokenizer<R>,
        matcher: StreamMatcher,
        project: bool,
        timeline_every: Option<u64>,
    ) -> Preprojector<R> {
        Preprojector {
            tokenizer,
            proj: Projector::new(matcher, project, timeline_every),
        }
    }

    /// Structural tokens processed so far.
    pub fn tokens(&self) -> u64 {
        self.proj.tokens()
    }

    /// True once the input has been exhausted (root closed).
    pub fn finished(&self) -> bool {
        self.proj.finished()
    }

    /// Extract the recorded timeline (if enabled).
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.proj.take_timeline()
    }

    /// Process one token. Returns `false` when the input is exhausted
    /// (after closing the virtual root). This is the `nextNode()` edge of
    /// the paper's architecture: the buffer manager calls it until a
    /// blocked evaluator request can be answered.
    pub fn advance(&mut self, buf: &mut BufferTree, symbols: &mut SymbolTable) -> XmlResult<bool> {
        if self.proj.finished() {
            return Ok(false);
        }
        let Some(token) = self.tokenizer.next_token()? else {
            self.proj.finish(buf);
            return Ok(false);
        };
        self.proj.apply(&token, buf, symbols);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_projection::{analyze, CompiledPaths};
    use gcx_query::compile;

    /// Run the preprojector to completion; return (buffer, symbols, tokens).
    /// Purging is enabled exactly when projecting, mirroring the engine's
    /// presets (full buffering disables the garbage collector).
    fn project_all(query: &str, xml: &str, project: bool) -> (BufferTree, SymbolTable, u64) {
        let q = compile(query).unwrap();
        let a = analyze(&q);
        let mut symbols = SymbolTable::new();
        let compiled = CompiledPaths::compile(&a.roles, &mut symbols);
        let (matcher, _root_roles) = StreamMatcher::new(&compiled);
        let mut buf = BufferTree::new(project);
        let tokenizer = Tokenizer::from_str(xml);
        let mut pre = Preprojector::new(tokenizer, matcher, project, Some(1));
        while pre.advance(&mut buf, &mut symbols).unwrap() {}
        let tokens = pre.tokens();
        (buf, symbols, tokens)
    }

    const PAPER_QUERY: &str = r#"
        <r> {
          for $bib in /bib return
            (for $x in $bib/* return
               if (not(exists($x/price))) then $x else (),
             for $b in $bib/book return $b/title)
        } </r>
    "#;

    #[test]
    fn projects_paper_prefix() {
        // <bib><book><title/><author/></book></bib>: all five nodes carry
        // roles (figure 1a), so all are buffered.
        let (buf, _, tokens) = project_all(
            PAPER_QUERY,
            "<bib><book><title/><author/></book></bib>",
            true,
        );
        // bib + book + title + author are buffered; with no signOffs
        // executed they all remain.
        assert_eq!(buf.stats().allocated, 4);
        assert_eq!(tokens, 8);
        buf.check_integrity();
    }

    #[test]
    fn skips_irrelevant_subtrees() {
        let (buf, _, tokens) = project_all(
            "for $a in /x/y return $a",
            "<x><junk><deep><deeper/></deep></junk><y>keep</y></x>",
            true,
        );
        // junk subtree skipped entirely; x, y, "keep" buffered.
        assert_eq!(buf.stats().allocated, 3);
        assert_eq!(tokens, 11);
        buf.check_integrity();
    }

    #[test]
    fn speculative_prefixes_purged_on_close() {
        // /x/y: an x with no y-children is buffered speculatively (it
        // matched the path prefix) and reclaimed as soon as it closes
        // with a role-free subtree.
        let (buf, _, _) = project_all("for $a in /x/y return 'found'", "<x><z/></x>", true);
        assert_eq!(
            buf.stats().allocated,
            1,
            "only the speculative x was buffered"
        );
        assert_eq!(buf.stats().live, 0, "purged at its end tag");
        buf.check_integrity();
    }

    #[test]
    fn document_element_not_on_any_path_skips_whole_input() {
        let (buf, _, tokens) = project_all(
            "for $a in /x/y return 'found'",
            "<root><x><y/></x></root>",
            true,
        );
        // `/x` requires the document element to be named x; <root> fails
        // the very first transition, so nothing at all is buffered.
        assert_eq!(buf.stats().allocated, 0);
        // <root>, <x>, <y/> (counts twice), </x>, </root>
        assert_eq!(tokens, 6);
        buf.check_integrity();
    }

    #[test]
    fn full_buffering_keeps_everything() {
        let (buf, _, _) = project_all(
            "for $a in /x/y return $a",
            "<x><junk><deep/></junk><y>keep</y></x>",
            false,
        );
        // x, junk, deep, y, text all buffered.
        assert_eq!(buf.stats().allocated, 5);
        assert_eq!(buf.stats().live, 5);
        buf.check_integrity();
    }

    #[test]
    fn whitespace_between_elements_not_buffered() {
        let (buf, _, _) = project_all(
            "for $a in /x/y return 'z'",
            "<x>\n  <y/>\n  <y/>\n</x>",
            true,
        );
        // Only x and the two y elements; whitespace runs carry no roles.
        assert_eq!(buf.stats().allocated, 3);
    }

    #[test]
    fn token_counting_matches_paper_arithmetic() {
        // The paper's micro documents: 10 children of 3 subelements each =
        // 82 tags; all tags count, text would too (none here).
        let mut doc = String::from("<bib>");
        for i in 0..10 {
            let t = if i == 9 { "book" } else { "article" };
            doc.push_str(&format!(
                "<{t}><author></author><title></title><price></price></{t}>"
            ));
        }
        doc.push_str("</bib>");
        let (_, _, tokens) = project_all(PAPER_QUERY, &doc, true);
        assert_eq!(tokens, 82);
    }

    #[test]
    fn timeline_records_buffer_growth_and_purge() {
        let q = "for $a in /x/y return 'z'";
        let query = compile(q).unwrap();
        let a = analyze(&query);
        let mut symbols = SymbolTable::new();
        let compiled = CompiledPaths::compile(&a.roles, &mut symbols);
        let (matcher, _) = StreamMatcher::new(&compiled);
        let mut buf = BufferTree::new(true);
        let tokenizer = Tokenizer::from_str("<x><w/><w/><y/></x>");
        let mut pre = Preprojector::new(tokenizer, matcher, true, Some(1));
        while pre.advance(&mut buf, &mut symbols).unwrap() {}
        let tl = pre.take_timeline().unwrap();
        assert_eq!(tl.points.len(), 8);
        assert!(tl.peak() >= 2);
        // Growth then eventual stability: last sample has x + y buffered
        // (no signOffs executed here).
        assert_eq!(tl.points.last().unwrap().1, 2);
    }

    #[test]
    fn self_closing_counts_as_two_tokens() {
        let (_, _, tokens) = project_all("for $a in /x return $a", "<x/>", true);
        assert_eq!(tokens, 2);
    }
}
