//! Lazy document-order path iteration over the buffer, with blocking.
//!
//! A [`PathCursor`] enumerates the nodes matching a step sequence below a
//! context node, in document order, *while the document is still
//! streaming in*. When iteration reaches the end of a node's currently
//! buffered children and that node is still open, the cursor reports
//! [`CursorState::NeedInput`]; the engine pulls one token from the
//! preprojector and retries. This is exactly the paper's blocking protocol:
//! "query evaluation remains blocked until the buffer manager has
//! responded", with the buffer manager issuing `nextNode()` requests.
//!
//! Every node the cursor references (frame contexts and scan positions) is
//! **pinned** in the buffer, so active garbage collection — which may run
//! between two `advance` calls as signOffs from the loop body execute —
//! never frees a node the cursor will touch again. A match stays pinned as
//! the scan position of its parent frame until the cursor advances past it,
//! which is what keeps a for-loop's current binding alive through the body.

use crate::buffer::{BufferTree, NodeId};
use gcx_xml::{FxBuildHasher, Symbol};
use std::collections::HashSet;
use std::rc::Rc;

pub use gcx_ir::{EAxis, ETest, EvalStep};

/// Buffer-side behaviour of a compiled node test. The data type lives in
/// `gcx-ir` (steps are compiled once, at query-compile time); this trait
/// supplies the half that needs the run's [`BufferTree`].
pub trait StepTest {
    /// Does `node` satisfy the test?
    fn matches(self, buf: &BufferTree, node: NodeId) -> bool;

    /// The document ordinal of `node` relevant to a `[k]` predicate on a
    /// child step with this test: same-name position for name tests,
    /// element position for `*`, text position for `text()`, any-sibling
    /// position for `node()`.
    fn pred_ordinal(self, buf: &BufferTree, node: NodeId) -> u32;
}

impl StepTest for ETest {
    fn matches(self, buf: &BufferTree, node: NodeId) -> bool {
        match self {
            ETest::Name(s) => buf.name(node) == Some(s),
            ETest::Star => !buf.is_text(node),
            ETest::Text => buf.is_text(node),
            ETest::AnyNode => true,
        }
    }

    fn pred_ordinal(self, buf: &BufferTree, node: NodeId) -> u32 {
        let o = buf.ordinals(node);
        match self {
            ETest::Name(_) | ETest::Text => o.same_kind,
            ETest::Star => o.elem,
            ETest::AnyNode => o.any,
        }
    }
}

/// Result of one [`PathCursor::advance`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorState {
    /// The next match in document order.
    Match(NodeId),
    /// More input is needed: pull a token and call `advance` again.
    NeedInput,
    /// Iteration complete.
    Done,
}

#[derive(Debug, Clone, Copy)]
enum FrameKind {
    /// Dispatch `steps[step..]` against `node` (one-shot).
    Eval,
    /// Child-axis scan over `node`'s children.
    ChildScan {
        /// Last child examined (pinned); None = before the first.
        last: Option<NodeId>,
    },
    /// Descendant scan: each child is evaluated descendant-or-self.
    DescScan {
        /// Last child examined (pinned).
        last: Option<NodeId>,
    },
    /// Descendant-or-self entry at `node`: check self, then descend.
    DosEntry,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    node: NodeId,
    step: usize,
    kind: FrameKind,
}

/// Recycled cursor innards: the evaluator creates one cursor per path
/// evaluation (per loop binding for conditions), so the frame stack would
/// otherwise be allocated and dropped at binding rate. Owned by the
/// evaluator, threaded through [`PathCursor::new_pooled`] /
/// [`PathCursor::dispose`].
#[derive(Debug, Default)]
pub struct CursorPool {
    stacks: Vec<Vec<Frame>>,
}

/// A lazy, pinned, blocking path iterator. Create with [`PathCursor::new`]
/// (or [`PathCursor::new_pooled`]), drive with [`PathCursor::advance`], and
/// always dispose with [`PathCursor::finish`] / [`PathCursor::dispose`]
/// (or run it to `Done`) so pins are released.
#[derive(Debug)]
pub struct PathCursor {
    /// Shared, pre-compiled steps (sliced once at run startup from the
    /// compiled program's step arena).
    steps: Rc<[EvalStep]>,
    stack: Vec<Frame>,
    done: bool,
    /// XQuery paths select *distinct* nodes, but two or more descendant
    /// axes in one path can reach a node through several derivations.
    /// Only then is the (purge-safe: ids are generation-tagged) dedup set
    /// engaged. Boxed so the common cursor stays small: cursors live
    /// inside the resumable evaluator's continuation frames, which are
    /// moved on and off the task stack as loops suspend and resume.
    #[allow(clippy::box_collection)] // deliberate: shrinks every cursor for a rare feature
    emitted: Option<Box<HashSet<NodeId, FxBuildHasher>>>,
}

impl PathCursor {
    /// Start iterating matches of `steps` below `ctx`.
    pub fn new(buf: &mut BufferTree, ctx: NodeId, steps: impl Into<Rc<[EvalStep]>>) -> PathCursor {
        let mut pool = CursorPool::default();
        PathCursor::new_pooled(buf, ctx, steps.into(), &mut pool)
    }

    /// [`PathCursor::new`] with a recycled frame stack from `pool`.
    pub fn new_pooled(
        buf: &mut BufferTree,
        ctx: NodeId,
        steps: Rc<[EvalStep]>,
        pool: &mut CursorPool,
    ) -> PathCursor {
        buf.pin(ctx);
        let descendant_steps = steps
            .iter()
            .filter(|s| matches!(s.axis, EAxis::Descendant | EAxis::DescendantOrSelf))
            .count();
        let mut stack = pool.stacks.pop().unwrap_or_default();
        stack.push(Frame {
            node: ctx,
            step: 0,
            kind: FrameKind::Eval,
        });
        PathCursor {
            steps,
            stack,
            done: false,
            emitted: (descendant_steps >= 2).then(|| Box::new(HashSet::default())),
        }
    }

    /// Release pins and return the frame stack to `pool`.
    pub fn dispose(mut self, buf: &mut BufferTree, pool: &mut CursorPool) {
        self.finish(buf);
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        pool.stacks.push(stack);
    }

    /// Release every pin. Idempotent; must be called when abandoning the
    /// cursor before `Done`.
    pub fn finish(&mut self, buf: &mut BufferTree) {
        while let Some(f) = self.stack.pop() {
            if let FrameKind::ChildScan { last: Some(c) } | FrameKind::DescScan { last: Some(c) } =
                f.kind
            {
                buf.unpin(c);
            }
            buf.unpin(f.node);
        }
        self.done = true;
    }

    /// Produce the next match, request input, or finish.
    pub fn advance(&mut self, buf: &mut BufferTree) -> CursorState {
        if self.done {
            return CursorState::Done;
        }
        loop {
            let Some(top_idx) = self.stack.len().checked_sub(1) else {
                self.done = true;
                return CursorState::Done;
            };
            // Copy the frame out so the stack can be mutated freely below.
            let Frame { node, step, kind } = self.stack[top_idx];
            match kind {
                FrameKind::Eval => {
                    if step == self.steps.len() {
                        self.pop(buf);
                        if let Some(emitted) = self.emitted.as_mut() {
                            if !emitted.insert(node) {
                                continue; // duplicate derivation of a node
                            }
                        }
                        return CursorState::Match(node);
                    }
                    let s = self.steps[step];
                    match s.axis {
                        EAxis::Child => {
                            self.stack[top_idx].kind = FrameKind::ChildScan { last: None };
                        }
                        EAxis::Descendant => {
                            self.stack[top_idx].kind = FrameKind::DescScan { last: None };
                        }
                        EAxis::DescendantOrSelf => {
                            self.stack[top_idx].kind = FrameKind::DosEntry;
                        }
                        EAxis::SelfAxis => {
                            if s.test.matches(buf, node) {
                                self.stack[top_idx].step += 1;
                                // kind stays Eval: re-dispatch next round.
                            } else {
                                self.pop(buf);
                            }
                        }
                    }
                }
                FrameKind::DosEntry => {
                    // Become the descendant scan; but first, the self part
                    // (pushed on top so it is handled before descending —
                    // document order).
                    self.stack[top_idx].kind = FrameKind::DescScan { last: None };
                    let s = self.steps[step];
                    if s.test.matches(buf, node) {
                        self.push(buf, node, step + 1);
                    }
                }
                FrameKind::ChildScan { last } => {
                    let next = match last {
                        None => buf.first_child(node),
                        Some(c) => buf.next_sibling(c),
                    };
                    match next {
                        Some(c) => {
                            // Move the scan-position pin forward.
                            buf.pin(c);
                            if let Some(old) = last {
                                buf.unpin(old);
                            }
                            let s = self.steps[step];
                            let mut emit = false;
                            let mut exhausted = false;
                            if s.test.matches(buf, c) {
                                // Positional predicates compare against
                                // *document* ordinals: projection may have
                                // dropped earlier matching siblings.
                                match s.pos {
                                    Some(k) => {
                                        let ord = s.test.pred_ordinal(buf, c);
                                        emit = ord == k;
                                        exhausted = ord >= k;
                                    }
                                    None => emit = true,
                                }
                            }
                            self.stack[top_idx].kind = FrameKind::ChildScan { last: Some(c) };
                            if emit {
                                self.push(buf, c, step + 1);
                            }
                            if exhausted && !emit {
                                self.pop(buf);
                            }
                        }
                        None => {
                            if buf.is_closed(node) {
                                self.pop(buf);
                            } else if let ETest::Name(want) = self.steps[step].test {
                                // Earliest scan end: `node` is still open,
                                // but a DTD sibling-order cutoff can prove
                                // no further `want` child will arrive.
                                if buf.schema_sibling_exhausted(node, want) {
                                    buf.schema_count_scan_end();
                                    self.pop(buf);
                                } else {
                                    return CursorState::NeedInput;
                                }
                            } else {
                                return CursorState::NeedInput;
                            }
                        }
                    }
                }
                FrameKind::DescScan { last } => {
                    let next = match last {
                        None => buf.first_child(node),
                        Some(c) => buf.next_sibling(c),
                    };
                    match next {
                        Some(c) => {
                            buf.pin(c);
                            if let Some(old) = last {
                                buf.unpin(old);
                            }
                            self.stack[top_idx].kind = FrameKind::DescScan { last: Some(c) };
                            // The child is evaluated descendant-or-self at
                            // the same step (its own frame pin).
                            buf.pin(c);
                            self.stack.push(Frame {
                                node: c,
                                step,
                                kind: FrameKind::DosEntry,
                            });
                        }
                        None => {
                            if buf.is_closed(node) {
                                self.pop(buf);
                            } else {
                                return CursorState::NeedInput;
                            }
                        }
                    }
                }
            }
        }
    }

    /// After [`CursorState::NeedInput`]: the scan the cursor is blocked
    /// on, as `(parent, last-examined-child, wanted-child-name)`. The
    /// cursor can only make progress once `parent` gains a child after
    /// `last` or closes — the engine uses this to batch token application
    /// between suspension checks instead of re-entering the evaluator per
    /// token. The wanted name is `Some` only for a child-axis name scan:
    /// there, a schema sibling-order cutoff proving `want` exhausted also
    /// unblocks the scan (it will end early on resume). Both nodes are
    /// pinned by the blocked frame, so the hint stays valid across
    /// garbage collection.
    pub fn wait_hint(&self) -> Option<(NodeId, Option<NodeId>, Option<Symbol>)> {
        let f = self.stack.last()?;
        match f.kind {
            FrameKind::ChildScan { last } => {
                let want = match self.steps[f.step].test {
                    ETest::Name(s) => Some(s),
                    _ => None,
                };
                Some((f.node, last, want))
            }
            FrameKind::DescScan { last } => Some((f.node, last, None)),
            _ => None,
        }
    }

    fn push(&mut self, buf: &mut BufferTree, node: NodeId, step: usize) {
        buf.pin(node);
        self.stack.push(Frame {
            node,
            step,
            kind: FrameKind::Eval,
        });
    }

    fn pop(&mut self, buf: &mut BufferTree) {
        let f = self.stack.pop().expect("pop on empty cursor stack");
        if let FrameKind::ChildScan { last: Some(c) } | FrameKind::DescScan { last: Some(c) } =
            f.kind
        {
            buf.unpin(c);
        }
        buf.unpin(f.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Ordinals;
    use gcx_query::ast::RoleId;
    use gcx_xml::SymbolTable;

    /// Ordinal helper: position k among same-name siblings, same among all.
    fn ord(k: u32) -> Ordinals {
        Ordinals {
            same_kind: k,
            elem: k,
            any: k,
        }
    }

    /// Build a small closed tree:
    /// <a><b/><c><b>text</b></c><b/></a>  (all nodes role-pinned alive)
    fn build() -> (BufferTree, SymbolTable, NodeId) {
        let mut sy = SymbolTable::new();
        let (a, b, c) = (sy.intern("a"), sy.intern("b"), sy.intern("c"));
        let mut buf = BufferTree::new(true);
        let r = &[(RoleId(0), 1)][..];
        let na = buf.append_element(NodeId::ROOT, a, r, ord(1));
        let nb1 = buf.append_element(na, b, r, ord(1));
        buf.close(nb1);
        let nc = buf.append_element(
            na,
            c,
            r,
            Ordinals {
                same_kind: 1,
                elem: 2,
                any: 2,
            },
        );
        let nb2 = buf.append_element(nc, b, r, ord(1));
        buf.append_text(nb2, "text", r, ord(1));
        buf.close(nb2);
        buf.close(nc);
        let nb3 = buf.append_element(
            na,
            b,
            r,
            Ordinals {
                same_kind: 2,
                elem: 3,
                any: 3,
            },
        );
        buf.close(nb3);
        buf.close(na);
        buf.close(NodeId::ROOT);
        (buf, sy, na)
    }

    fn drain(buf: &mut BufferTree, mut cur: PathCursor) -> Vec<NodeId> {
        let mut out = Vec::new();
        loop {
            match cur.advance(buf) {
                CursorState::Match(n) => out.push(n),
                CursorState::Done => break,
                CursorState::NeedInput => panic!("closed tree cannot need input"),
            }
        }
        out
    }

    #[test]
    fn child_axis_in_document_order() {
        let (mut buf, sy, na) = build();
        let b = sy.get("b").unwrap();
        let steps = vec![EvalStep {
            axis: EAxis::Child,
            test: ETest::Name(b),
            pos: None,
        }];
        let cur = PathCursor::new(&mut buf, na, steps);
        let matches = drain(&mut buf, cur);
        assert_eq!(matches.len(), 2, "b1 and b3 are children; nested b is not");
        buf.check_integrity();
    }

    #[test]
    fn descendant_axis_finds_nested() {
        let (mut buf, sy, na) = build();
        let b = sy.get("b").unwrap();
        let steps = vec![EvalStep {
            axis: EAxis::Descendant,
            test: ETest::Name(b),
            pos: None,
        }];
        let cur = PathCursor::new(&mut buf, na, steps);
        let matches = drain(&mut buf, cur);
        assert_eq!(matches.len(), 3);
        buf.check_integrity();
    }

    #[test]
    fn descendant_or_self_node_counts_everything() {
        let (mut buf, _, na) = build();
        let steps = vec![EvalStep {
            axis: EAxis::DescendantOrSelf,
            test: ETest::AnyNode,
            pos: None,
        }];
        let cur = PathCursor::new(&mut buf, na, steps);
        let matches = drain(&mut buf, cur);
        // a, b1, c, b2, text, b3
        assert_eq!(matches.len(), 6);
        buf.check_integrity();
    }

    #[test]
    fn positional_predicate_selects_kth() {
        let (mut buf, sy, na) = build();
        let b = sy.get("b").unwrap();
        for (k, expect) in [(1u32, 1usize), (2, 1), (3, 0)] {
            let steps = vec![EvalStep {
                axis: EAxis::Child,
                test: ETest::Name(b),
                pos: Some(k),
            }];
            let cur = PathCursor::new(&mut buf, na, steps);
            assert_eq!(drain(&mut buf, cur).len(), expect, "k={k}");
        }
        buf.check_integrity();
    }

    #[test]
    fn text_test_matches_text_nodes() {
        let (mut buf, _, na) = build();
        let steps = vec![EvalStep {
            axis: EAxis::Descendant,
            test: ETest::Text,
            pos: None,
        }];
        let cur = PathCursor::new(&mut buf, na, steps);
        let matches = drain(&mut buf, cur);
        assert_eq!(matches.len(), 1);
        assert!(buf.is_text(matches[0]));
    }

    #[test]
    fn self_axis_filters_context() {
        let (mut buf, sy, na) = build();
        let a = sy.get("a").unwrap();
        let b = sy.get("b").unwrap();
        let hit = vec![EvalStep {
            axis: EAxis::SelfAxis,
            test: ETest::Name(a),
            pos: None,
        }];
        let cur = PathCursor::new(&mut buf, na, hit);
        assert_eq!(drain(&mut buf, cur).len(), 1);
        let miss = vec![EvalStep {
            axis: EAxis::SelfAxis,
            test: ETest::Name(b),
            pos: None,
        }];
        let cur = PathCursor::new(&mut buf, na, miss);
        assert_eq!(drain(&mut buf, cur).len(), 0);
        buf.check_integrity();
    }

    #[test]
    fn empty_steps_match_context_itself() {
        let (mut buf, _, na) = build();
        let cur = PathCursor::new(&mut buf, na, Vec::new());
        let matches = drain(&mut buf, cur);
        assert_eq!(matches, vec![na]);
    }

    #[test]
    fn needs_input_on_open_node() {
        let mut sy = SymbolTable::new();
        let a = sy.intern("a");
        let b = sy.intern("b");
        let mut buf = BufferTree::new(true);
        let r = &[(RoleId(0), 1)][..];
        let na = buf.append_element(NodeId::ROOT, a, r, ord(1));
        let steps = vec![EvalStep {
            axis: EAxis::Child,
            test: ETest::Name(b),
            pos: None,
        }];
        let mut cur = PathCursor::new(&mut buf, na, steps);
        assert_eq!(
            cur.advance(&mut buf),
            CursorState::NeedInput,
            "a is still open"
        );
        // Stream delivers a matching child.
        let nb = buf.append_element(na, b, r, ord(1));
        buf.close(nb);
        assert_eq!(cur.advance(&mut buf), CursorState::Match(nb));
        assert_eq!(
            cur.advance(&mut buf),
            CursorState::NeedInput,
            "a still open"
        );
        buf.close(na);
        assert_eq!(cur.advance(&mut buf), CursorState::Done);
        buf.check_integrity();
    }

    #[test]
    fn match_stays_pinned_until_cursor_advances() {
        let mut sy = SymbolTable::new();
        let a = sy.intern("a");
        let b = sy.intern("b");
        let mut buf = BufferTree::new(true);
        let role = RoleId(0);
        let na = buf.append_element(NodeId::ROOT, a, &[(role, 1)], ord(1));
        let nb1 = buf.append_element(na, b, &[(role, 1)], ord(1));
        buf.close(nb1);
        let nb2 = buf.append_element(na, b, &[(role, 1)], ord(2));
        buf.close(nb2);
        buf.close(na);
        buf.close(NodeId::ROOT);
        let steps = vec![EvalStep {
            axis: EAxis::Child,
            test: ETest::Name(b),
            pos: None,
        }];
        let mut cur = PathCursor::new(&mut buf, na, steps);
        let CursorState::Match(m1) = cur.advance(&mut buf) else {
            panic!()
        };
        assert_eq!(m1, nb1);
        // Loop body signs off the binding: without the cursor pin this
        // would free nb1 and break iteration.
        buf.decrement_role(nb1, role, 1);
        assert_eq!(buf.stats().live, 3, "pin defers the purge");
        let CursorState::Match(m2) = cur.advance(&mut buf) else {
            panic!()
        };
        assert_eq!(m2, nb2, "iteration continues past the signed-off node");
        assert_eq!(
            buf.stats().live,
            2,
            "nb1 reclaimed once the cursor moved on"
        );
        buf.decrement_role(nb2, role, 1);
        assert_eq!(cur.advance(&mut buf), CursorState::Done);
        buf.check_integrity();
    }

    #[test]
    fn finish_releases_all_pins() {
        let (mut buf, sy, na) = build();
        let b = sy.get("b").unwrap();
        let steps = vec![EvalStep {
            axis: EAxis::Descendant,
            test: ETest::Name(b),
            pos: None,
        }];
        let mut cur = PathCursor::new(&mut buf, na, steps);
        let _ = cur.advance(&mut buf); // partial progress
        cur.finish(&mut buf);
        buf.check_integrity(); // asserts subtree_pins are consistent (zero)
                               // All pins released: decrementing all roles drains the buffer.
        assert_eq!(
            cur.advance(&mut buf),
            CursorState::Done,
            "finished cursor stays done"
        );
    }

    #[test]
    fn double_descendant_path_yields_distinct_nodes() {
        // /descendant::a/descendant::b with nested a's: b is reachable via
        // two derivations but must be bound once.
        let mut sy = SymbolTable::new();
        let a = sy.intern("a");
        let b = sy.intern("b");
        let mut buf = BufferTree::new(true);
        let r = &[(RoleId(0), 1)][..];
        let na1 = buf.append_element(NodeId::ROOT, a, r, ord(1));
        let na2 = buf.append_element(na1, a, r, ord(1));
        let nb = buf.append_element(na2, b, r, ord(1));
        buf.close(nb);
        buf.close(na2);
        buf.close(na1);
        buf.close(NodeId::ROOT);
        let steps = vec![
            EvalStep {
                axis: EAxis::Descendant,
                test: ETest::Name(a),
                pos: None,
            },
            EvalStep {
                axis: EAxis::Descendant,
                test: ETest::Name(b),
                pos: None,
            },
        ];
        let cur = PathCursor::new(&mut buf, NodeId::ROOT, steps);
        let matches = drain(&mut buf, cur);
        assert_eq!(matches, vec![nb], "one binding despite two derivations");
        buf.check_integrity();
    }

    #[test]
    fn multi_step_path() {
        let (mut buf, sy, na) = build();
        let c = sy.get("c").unwrap();
        let b = sy.get("b").unwrap();
        let steps = vec![
            EvalStep {
                axis: EAxis::Child,
                test: ETest::Name(c),
                pos: None,
            },
            EvalStep {
                axis: EAxis::Child,
                test: ETest::Name(b),
                pos: None,
            },
        ];
        let cur = PathCursor::new(&mut buf, na, steps);
        let matches = drain(&mut buf, cur);
        assert_eq!(matches.len(), 1, "only the b nested under c");
        buf.check_integrity();
    }
}
