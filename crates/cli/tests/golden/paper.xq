<r> {
  for $bib in /bib return
    (for $x in $bib/* return
       if (not(exists($x/price))) then $x else (),
     for $b in $bib/book return $b/title)
} </r>
